//! `moa bench` — machine-readable performance benchmark of the campaign
//! hot path.
//!
//! For each suite circuit the command runs the same campaign twice at a
//! fixed thread count:
//!
//! - **screened** — the optimized configuration: 64-way parallel-fault
//!   conventional screening, differential conventional simulation, and the
//!   cone-bounded implication/resimulation engines;
//! - **legacy** — the pre-optimization configuration: scalar conventional
//!   simulation per fault and whole-frame engines.
//!
//! The two runs must produce identical campaign results (verdict equality is
//! asserted, not assumed); only the work differs. A third, untimed run
//! repeats the screened configuration with certificate auditing enabled and
//! reports its `audit_failed` count — any nonzero value fails the command.
//!
//! `--out FILE` writes a JSON report; `--check FILE` compares the screened
//! faults/sec of this run against a previously committed report and fails on
//! a more-than-2x regression for any shared circuit.
//!
//! A separate *screening kernel* micro-benchmark isolates the packed
//! parallel-fault pre-pass: the full fault list is screened once with the
//! 64-lane single-threaded reference kernel and once at the configured
//! `--screen-lanes`/`--screen-threads`, the detections are asserted
//! bit-identical, and both throughputs (plus their ratio) are reported per
//! circuit and in aggregate.

use std::io::Write;
use std::time::Instant;

use moa_circuits::suite::suite;
use moa_core::{try_run_campaign, CampaignAudit, CampaignOptions, MoaOptions, ScreenLanes};
use moa_netlist::{collapse_faults, full_fault_list};
use moa_sim::{screen_faults_wide, simulate, ScreenOutcome};
use moa_tpg::random_sequence;

use crate::commands::{screen_lanes_from_args, screen_threads_from_args};
use crate::{ArgParser, CliError};

const USAGE: &str = "usage: moa bench [NAME...] [--quick] [--threads T] \
[--screen-lanes 64|128|256] [--screen-threads T] [--out FILE] [--check FILE] [--no-audit]";

/// The `--quick` subset: the two smallest entries plus the largest, so a CI
/// smoke run still exercises the hot path that dominates full-bench time.
const QUICK: &[&str] = &["s208", "s298", "s35932"];

/// One benchmarked circuit's numbers.
struct BenchRow {
    name: String,
    gates: usize,
    flip_flops: usize,
    faults: usize,
    seq_len: usize,
    screened_ms: f64,
    screened_gate_evals: u64,
    screened_fps: f64,
    legacy_ms: f64,
    legacy_gate_evals: u64,
    legacy_fps: f64,
    detected_total: usize,
    partial: usize,
    coverage_lower_bound: f64,
    audit_failed: Option<usize>,
    collapse_total: usize,
    collapse_classes: usize,
    collapse_inherited: Option<usize>,
    collapse_audited: Option<usize>,
    screen_lanes: usize,
    screen_threads: usize,
    screen_base_ms: f64,
    screen_wide_ms: f64,
}

impl BenchRow {
    fn speedup(&self) -> f64 {
        if self.screened_ms > 0.0 {
            self.legacy_ms / self.screened_ms
        } else {
            f64::INFINITY
        }
    }

    fn kernel_fps(&self, ms: f64) -> f64 {
        if ms > 0.0 {
            self.faults as f64 / (ms / 1e3)
        } else {
            f64::INFINITY
        }
    }

    fn kernel_speedup(&self) -> f64 {
        if self.screen_wide_ms > 0.0 {
            self.screen_base_ms / self.screen_wide_ms
        } else {
            f64::INFINITY
        }
    }

    fn collapse_ratio(&self) -> f64 {
        if self.collapse_total > 0 {
            (self.collapse_total - self.collapse_classes) as f64 / self.collapse_total as f64
        } else {
            0.0
        }
    }
}

/// Times one screening-kernel configuration. Sub-10ms runs are repeated and
/// averaged so small circuits report a stable per-run time instead of timer
/// noise.
fn time_kernel(mut run: impl FnMut() -> ScreenOutcome) -> (f64, ScreenOutcome) {
    let started = Instant::now();
    let outcome = run();
    let first_ms = started.elapsed().as_secs_f64() * 1e3;
    if first_ms >= 10.0 {
        return (first_ms, outcome);
    }
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let reps = ((50.0 / first_ms.max(1e-3)).ceil() as usize).min(1000);
    let started = Instant::now();
    for _ in 0..reps {
        let repeat = run();
        assert_eq!(repeat.detections, outcome.detections, "kernel must be deterministic");
    }
    let ms = started.elapsed().as_secs_f64() * 1e3 / reps as f64;
    (ms, outcome)
}

pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let parser = ArgParser::parse(
        args,
        USAGE,
        &["threads", "out", "check", "screen-lanes", "screen-threads"],
        &["quick", "no-audit"],
    )?;
    let filter = parser.positional();
    let quick = parser.switch("quick");
    let threads = parser.num("threads", 1usize)?.max(1);
    let audit = !parser.switch("no-audit");
    let screen_lanes = screen_lanes_from_args(&parser)?;
    let screen_threads = screen_threads_from_args(&parser)?;

    let entries: Vec<_> = suite()
        .into_iter()
        .filter(|e| {
            if !filter.is_empty() {
                filter.iter().any(|f| f == e.name)
            } else if quick {
                QUICK.contains(&e.name)
            } else {
                true
            }
        })
        .collect();
    if entries.is_empty() {
        return Err(CliError::Usage(format!(
            "no suite circuit matches {filter:?}\n\n{USAGE}"
        )));
    }

    writeln!(
        out,
        "{:<10} {:>7} {:>9} {:>9} {:>9} {:>9} {:>8}",
        "circuit", "faults", "scr ms", "fps", "legacy ms", "fps", "speedup"
    )?;

    let mut rows = Vec::with_capacity(entries.len());
    for e in entries {
        let circuit = e.build();
        let seq = random_sequence(&circuit, e.sequence_length, e.spec.seed);
        let full = full_fault_list(&circuit);
        let faults = collapse_faults(&circuit, &full).representatives().to_vec();
        // Static collapse statistics over the *full* list: what the timed
        // runs below get to skip by simulating representatives only.
        let analysis = moa_core::CollapseAnalysis::of(&circuit, &full);

        let screened_opts = CampaignOptions {
            threads,
            differential: true,
            screen: true,
            screen_lanes,
            screen_threads,
            ..CampaignOptions::new()
        };
        let legacy_opts = CampaignOptions {
            moa: MoaOptions {
                cone_bounded: false,
                ..MoaOptions::default()
            },
            threads,
            differential: false,
            screen: false,
            ..CampaignOptions::new()
        };

        let started = Instant::now();
        let screened = try_run_campaign(&circuit, &seq, &faults, &screened_opts)
            .map_err(|err| CliError::Failed(err.to_string()))?;
        let screened_ms = started.elapsed().as_secs_f64() * 1e3;

        let started = Instant::now();
        let legacy = try_run_campaign(&circuit, &seq, &faults, &legacy_opts)
            .map_err(|err| CliError::Failed(err.to_string()))?;
        let legacy_ms = started.elapsed().as_secs_f64() * 1e3;

        if screened != legacy {
            return Err(CliError::Failed(format!(
                "{}: screened and legacy configurations disagree — \
                 screened {}+{} vs legacy {}+{} detections",
                e.name, screened.conventional, screened.extra, legacy.conventional, legacy.extra
            )));
        }

        // The untimed verification run audits the *collapsed full-list*
        // campaign: every inherited detection's certificate is replayed
        // against the member fault, so a wrong equivalence class would fail
        // the bench, and its CollapseReport feeds the stats below.
        let (audit_failed, collapse_inherited, collapse_audited) = if audit {
            let audited_opts = CampaignOptions {
                audit: Some(CampaignAudit::default()),
                collapse: true,
                ..screened_opts
            };
            let audited = try_run_campaign(&circuit, &seq, &full, &audited_opts)
                .map_err(|err| CliError::Failed(err.to_string()))?;
            if audited.audit_failed > 0 {
                return Err(CliError::Failed(format!(
                    "{}: {} detection(s) failed their certificate audit",
                    e.name, audited.audit_failed
                )));
            }
            let report = audited
                .collapse
                .as_ref()
                .ok_or_else(|| CliError::Failed(format!("{}: no collapse report", e.name)))?;
            (
                Some(audited.audit_failed),
                Some(report.inherited),
                Some(report.audited),
            )
        } else {
            (None, None, None)
        };

        // Screening-kernel micro-benchmark: the same full fault list through
        // the packed pre-pass alone, at the 64-lane single-threaded
        // reference and at the configured width/threads. Identical
        // detections are a hard requirement, not a statistic.
        let good = simulate(&circuit, &seq, None);
        let (screen_base_ms, base_outcome) =
            time_kernel(|| screen_faults_wide(&circuit, &seq, &good, &faults, ScreenLanes::L64, 1));
        let (screen_wide_ms, wide_outcome) = time_kernel(|| {
            screen_faults_wide(&circuit, &seq, &good, &faults, screen_lanes, screen_threads)
        });
        if wide_outcome.detections != base_outcome.detections {
            return Err(CliError::Failed(format!(
                "{}: {screen_lanes}-lane x{screen_threads}-thread screening disagrees \
                 with the 64-lane reference kernel",
                e.name
            )));
        }

        let fps = |ms: f64| {
            if ms > 0.0 {
                faults.len() as f64 / (ms / 1e3)
            } else {
                f64::INFINITY
            }
        };
        let row = BenchRow {
            name: e.name.to_owned(),
            gates: circuit.num_gates(),
            flip_flops: circuit.num_flip_flops(),
            faults: faults.len(),
            seq_len: seq.len(),
            screened_ms,
            screened_gate_evals: screened.perf.gate_evals,
            screened_fps: fps(screened_ms),
            legacy_ms,
            legacy_gate_evals: legacy.perf.gate_evals,
            legacy_fps: fps(legacy_ms),
            detected_total: screened.detected_total(),
            partial: screened.partial_summary().partial,
            coverage_lower_bound: screened.coverage_lower_bound(),
            audit_failed,
            collapse_total: analysis.total(),
            collapse_classes: analysis.classes().len(),
            collapse_inherited,
            collapse_audited,
            screen_lanes: screen_lanes.lanes(),
            screen_threads,
            screen_base_ms,
            screen_wide_ms,
        };
        writeln!(
            out,
            "{:<10} {:>7} {:>9.1} {:>9.0} {:>9.1} {:>9.0} {:>7.2}x",
            row.name,
            row.faults,
            row.screened_ms,
            row.screened_fps,
            row.legacy_ms,
            row.legacy_fps,
            row.speedup()
        )?;
        rows.push(row);
    }

    // The benched configurations run without a fault budget, so partial
    // verdicts are the exception, not the rule — but when a future
    // configuration produces them, the lower-bound floor must stay visible.
    let proven: usize = rows.iter().map(|r| r.detected_total).sum();
    let total: usize = rows.iter().map(|r| r.faults).sum();
    let partial: usize = rows.iter().map(|r| r.partial).sum();
    let pct = if total > 0 { 100.0 * proven as f64 / total as f64 } else { 0.0 };
    writeln!(
        out,
        "coverage lower bound: {pct:.2}% ({proven} of {total} proven detected, \
         {partial} partial verdict(s))"
    )?;

    writeln!(
        out,
        "\nscreening kernel ({} lanes x {} thread(s) vs 64 x 1):",
        screen_lanes.lanes(),
        screen_threads
    )?;
    writeln!(
        out,
        "{:<10} {:>9} {:>11} {:>11} {:>8}",
        "circuit", "faults", "base fps", "wide fps", "speedup"
    )?;
    for r in &rows {
        writeln!(
            out,
            "{:<10} {:>9} {:>11.0} {:>11.0} {:>7.2}x",
            r.name,
            r.faults,
            r.kernel_fps(r.screen_base_ms),
            r.kernel_fps(r.screen_wide_ms),
            r.kernel_speedup()
        )?;
    }
    let base_total_ms: f64 = rows.iter().map(|r| r.screen_base_ms).sum();
    let wide_total_ms: f64 = rows.iter().map(|r| r.screen_wide_ms).sum();
    let aggregate = if wide_total_ms > 0.0 { base_total_ms / wide_total_ms } else { f64::INFINITY };
    writeln!(
        out,
        "screening kernel aggregate speedup: {aggregate:.2}x \
         ({base_total_ms:.1} ms base vs {wide_total_ms:.1} ms wide)"
    )?;

    // Collapse statistics: the static class structure, plus (when the audit
    // run is on) how many members inherited their representative's verdict
    // and how many inherited certificates were replayed.
    writeln!(out, "\nfault collapsing (one representative per equivalence class):")?;
    writeln!(
        out,
        "{:<10} {:>9} {:>9} {:>10} {:>7} {:>10} {:>8}",
        "circuit", "faults", "classes", "collapsed", "ratio", "inherited", "audited"
    )?;
    for r in &rows {
        let opt = |v: Option<usize>| v.map_or_else(|| "-".to_owned(), |n| n.to_string());
        writeln!(
            out,
            "{:<10} {:>9} {:>9} {:>10} {:>6.1}% {:>10} {:>8}",
            r.name,
            r.collapse_total,
            r.collapse_classes,
            r.collapse_total - r.collapse_classes,
            r.collapse_ratio() * 100.0,
            opt(r.collapse_inherited),
            opt(r.collapse_audited)
        )?;
    }

    if let Some(path) = parser.flag("out") {
        std::fs::write(path, render_json(&rows, quick))
            .map_err(|err| CliError::Failed(format!("cannot write `{path}`: {err}")))?;
        writeln!(out, "wrote {path}")?;
    }
    if let Some(path) = parser.flag("check") {
        let baseline = std::fs::read_to_string(path)
            .map_err(|err| CliError::Failed(format!("cannot read `{path}`: {err}")))?;
        check_regression(out, &rows, &baseline)?;
    }
    Ok(())
}

/// Renders the report as JSON (hand-rolled; the workspace has no JSON
/// dependency). Field order matters to [`parse_baseline`]: `name` precedes
/// `faults_per_sec` within each circuit object.
fn render_json(rows: &[BenchRow], quick: bool) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"version\": 2,\n");
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str("  \"circuits\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"name\": \"{}\",\n", r.name));
        s.push_str(&format!("      \"gates\": {},\n", r.gates));
        s.push_str(&format!("      \"flip_flops\": {},\n", r.flip_flops));
        s.push_str(&format!("      \"faults\": {},\n", r.faults));
        s.push_str(&format!("      \"seq_len\": {},\n", r.seq_len));
        s.push_str(&format!(
            "      \"screened\": {{\"wall_ms\": {:.3}, \"gate_evals\": {}, \"faults_per_sec\": {:.1}}},\n",
            r.screened_ms, r.screened_gate_evals, r.screened_fps
        ));
        s.push_str(&format!(
            "      \"legacy\": {{\"wall_ms\": {:.3}, \"gate_evals\": {}, \"faults_per_sec\": {:.1}}},\n",
            r.legacy_ms, r.legacy_gate_evals, r.legacy_fps
        ));
        // Kernel keys deliberately avoid the exact `"faults_per_sec"` string
        // so the tolerant baseline scanner keeps pairing each circuit name
        // with its *screened* throughput above.
        s.push_str(&format!(
            "      \"screen_kernel\": {{\"lanes\": {}, \"threads\": {}, \
             \"base_wall_ms\": {:.4}, \"base_fps\": {:.1}, \
             \"wide_wall_ms\": {:.4}, \"wide_fps\": {:.1}, \"speedup\": {:.2}}},\n",
            r.screen_lanes,
            r.screen_threads,
            r.screen_base_ms,
            r.kernel_fps(r.screen_base_ms),
            r.screen_wide_ms,
            r.kernel_fps(r.screen_wide_ms),
            r.kernel_speedup()
        ));
        s.push_str(&format!("      \"speedup\": {:.2},\n", r.speedup()));
        // Key names avoid the `"faults_per_sec"` literal on purpose (see the
        // kernel-key comment above).
        let opt = |v: Option<usize>| v.map_or_else(|| "null".to_owned(), |n| n.to_string());
        s.push_str(&format!(
            "      \"collapse\": {{\"total\": {}, \"classes\": {}, \"collapsed\": {}, \
             \"ratio\": {:.4}, \"inherited\": {}, \"audited\": {}}},\n",
            r.collapse_total,
            r.collapse_classes,
            r.collapse_total - r.collapse_classes,
            r.collapse_ratio(),
            opt(r.collapse_inherited),
            opt(r.collapse_audited)
        ));
        s.push_str(&format!("      \"detected_total\": {},\n", r.detected_total));
        s.push_str(&format!("      \"partial\": {},\n", r.partial));
        s.push_str(&format!(
            "      \"coverage_lower_bound\": {:.4},\n",
            r.coverage_lower_bound
        ));
        match r.audit_failed {
            Some(n) => s.push_str(&format!("      \"audit_failed\": {n}\n")),
            None => s.push_str("      \"audit_failed\": null\n"),
        }
        s.push_str(if i + 1 == rows.len() { "    }\n" } else { "    },\n" });
    }
    s.push_str("  ],\n");
    let base_total_ms: f64 = rows.iter().map(|r| r.screen_base_ms).sum();
    let wide_total_ms: f64 = rows.iter().map(|r| r.screen_wide_ms).sum();
    let aggregate = if wide_total_ms > 0.0 { base_total_ms / wide_total_ms } else { f64::INFINITY };
    s.push_str(&format!(
        "  \"screen_kernel_aggregate\": {{\"base_wall_ms\": {base_total_ms:.4}, \
         \"wide_wall_ms\": {wide_total_ms:.4}, \"speedup\": {aggregate:.2}}}\n"
    ));
    s.push_str("}\n");
    s
}

/// Extracts `(name, screened faults_per_sec)` pairs from a report produced by
/// [`render_json`]. Tolerant scanner, not a JSON parser: it relies only on
/// `"name"` preceding the screened `"faults_per_sec"` within each object.
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let mut pairs = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find("\"name\": \"") {
        rest = &rest[pos + "\"name\": \"".len()..];
        let Some(end) = rest.find('"') else { break };
        let name = rest[..end].to_owned();
        rest = &rest[end..];
        let Some(pos) = rest.find("\"faults_per_sec\": ") else {
            break;
        };
        rest = &rest[pos + "\"faults_per_sec\": ".len()..];
        let end = rest
            .find(|c: char| !c.is_ascii_digit() && c != '.')
            .unwrap_or(rest.len());
        if let Ok(fps) = rest[..end].parse::<f64>() {
            pairs.push((name, fps));
        }
        rest = &rest[end..];
    }
    pairs
}

/// Fails when this run's screened faults/sec regressed by more than 2x
/// against the committed baseline for any circuit present in both.
fn check_regression(
    out: &mut dyn Write,
    rows: &[BenchRow],
    baseline: &str,
) -> Result<(), CliError> {
    let baseline = parse_baseline(baseline);
    if baseline.is_empty() {
        return Err(CliError::Failed(
            "baseline report contains no circuits".to_owned(),
        ));
    }
    let mut checked = 0usize;
    for row in rows {
        let Some((_, base_fps)) = baseline.iter().find(|(name, _)| *name == row.name) else {
            continue;
        };
        checked += 1;
        let ratio = base_fps / row.screened_fps.max(f64::MIN_POSITIVE);
        if ratio > 2.0 {
            return Err(CliError::Failed(format!(
                "{}: screened faults/sec regressed {ratio:.2}x vs baseline \
                 ({:.0} now vs {base_fps:.0} committed)",
                row.name, row.screened_fps
            )));
        }
    }
    if checked == 0 {
        return Err(CliError::Failed(
            "no benched circuit appears in the baseline report".to_owned(),
        ));
    }
    writeln!(out, "regression check passed ({checked} circuit(s) vs baseline)")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_smallest_circuit_and_writes_json() {
        let dir = std::env::temp_dir().join("moa-cli-bench-test");
        std::fs::create_dir_all(&dir).unwrap();
        let json = dir.join("bench.json").to_string_lossy().into_owned();
        let mut out = Vec::new();
        run(
            &["s208".into(), "--out".into(), json.clone(), "--no-audit".into()],
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("s208"), "{text}");
        assert!(text.contains("speedup"), "{text}");

        assert!(text.contains("coverage lower bound: "), "{text}");

        let report = std::fs::read_to_string(&json).unwrap();
        assert!(report.contains("\"name\": \"s208\""), "{report}");
        assert!(report.contains("\"faults_per_sec\""), "{report}");
        assert!(report.contains("\"partial\": 0"), "{report}");
        assert!(report.contains("\"coverage_lower_bound\": "), "{report}");
        // Collapse stats: static classes always; inherited/audited need the
        // audit run, which --no-audit skipped.
        assert!(text.contains("fault collapsing"), "{text}");
        assert!(report.contains("\"collapse\": {\"total\": 584, \"classes\": 357"), "{report}");
        assert!(report.contains("\"inherited\": null"), "{report}");
        let pairs = parse_baseline(&report);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].0, "s208");
        assert!(pairs[0].1 > 0.0);
    }

    #[test]
    fn audited_bench_reports_inherited_and_audited_collapse_counts() {
        let dir = std::env::temp_dir().join("moa-cli-bench-collapse-test");
        std::fs::create_dir_all(&dir).unwrap();
        let json = dir.join("collapse.json").to_string_lossy().into_owned();
        let mut out = Vec::new();
        run(&["s208".into(), "--out".into(), json.clone()], &mut out).unwrap();
        let report = std::fs::read_to_string(&json).unwrap();
        assert!(report.contains("\"audit_failed\": 0"), "{report}");
        assert!(!report.contains("\"inherited\": null"), "{report}");
        assert!(!report.contains("\"audited\": null"), "{report}");
        // The scanner must still pair the circuit with its screened fps.
        let pairs = parse_baseline(&report);
        assert_eq!(pairs.len(), 1, "{report}");
    }

    #[test]
    fn check_passes_against_own_report_and_fails_on_inflated_baseline() {
        let dir = std::env::temp_dir().join("moa-cli-bench-check-test");
        std::fs::create_dir_all(&dir).unwrap();
        let json = dir.join("own.json").to_string_lossy().into_owned();
        let mut out = Vec::new();
        run(
            &["s208".into(), "--out".into(), json.clone(), "--no-audit".into()],
            &mut out,
        )
        .unwrap();

        // A fresh run checked against its own numbers cannot regress 2x.
        let mut out = Vec::new();
        run(
            &["s208".into(), "--check".into(), json.clone(), "--no-audit".into()],
            &mut out,
        )
        .unwrap();
        assert!(String::from_utf8(out).unwrap().contains("regression check passed"));

        // An absurdly fast committed baseline must trip the check.
        let inflated = dir.join("inflated.json").to_string_lossy().into_owned();
        std::fs::write(
            &inflated,
            "{\"circuits\": [{\"name\": \"s208\", \
             \"screened\": {\"wall_ms\": 0.001, \"gate_evals\": 1, \
             \"faults_per_sec\": 99999999999.0}}]}",
        )
        .unwrap();
        let mut out = Vec::new();
        let err = run(
            &["s208".into(), "--check".into(), inflated, "--no-audit".into()],
            &mut out,
        )
        .unwrap_err();
        assert!(err.to_string().contains("regressed"), "{err}");
    }

    #[test]
    fn wide_kernel_bench_reports_and_checks_against_narrow_baseline() {
        let dir = std::env::temp_dir().join("moa-cli-bench-wide-test");
        std::fs::create_dir_all(&dir).unwrap();
        let json = dir.join("wide.json").to_string_lossy().into_owned();
        let mut out = Vec::new();
        run(
            &[
                "s208".into(),
                "--screen-lanes".into(),
                "256".into(),
                "--screen-threads".into(),
                "2".into(),
                "--out".into(),
                json.clone(),
                "--no-audit".into(),
            ],
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("screening kernel (256 lanes x 2 thread(s) vs 64 x 1)"), "{text}");
        assert!(text.contains("screening kernel aggregate speedup"), "{text}");
        let report = std::fs::read_to_string(&json).unwrap();
        assert!(report.contains("\"screen_kernel\": {\"lanes\": 256, \"threads\": 2"), "{report}");
        assert!(report.contains("\"screen_kernel_aggregate\""), "{report}");
        // The kernel keys must not confuse the screened-fps baseline scanner.
        let pairs = parse_baseline(&report);
        assert_eq!(pairs.len(), 1, "{report}");
        assert_eq!(pairs[0].0, "s208");
    }

    #[test]
    fn bad_screen_lanes_is_usage_error() {
        let mut out = Vec::new();
        let err = run(&["s208".into(), "--screen-lanes".into(), "7".into()], &mut out)
            .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        assert!(err.to_string().contains("64, 128 or 256"), "{err}");
    }

    #[test]
    fn unknown_circuit_is_usage_error() {
        let mut out = Vec::new();
        assert!(run(&["s9999".into()], &mut out).is_err());
    }

    #[test]
    fn baseline_parser_handles_multiple_circuits() {
        let text = "\
{\n  \"circuits\": [\n    {\"name\": \"a\", \"screened\": {\"faults_per_sec\": 10.5}},\n    \
{\"name\": \"b\", \"screened\": {\"faults_per_sec\": 2}}\n  ]\n}\n";
        let pairs = parse_baseline(text);
        assert_eq!(pairs, vec![("a".to_owned(), 10.5), ("b".to_owned(), 2.0)]);
    }
}
