//! `moa serve` / `moa submit` / `moa status` — the campaign daemon and its
//! clients.
//!
//! The daemon wraps the in-process engine ([`moa_core::serve`]) in a TCP
//! transport: newline-delimited JSON requests on a `std::net` listener, one
//! handler thread per connection. All robustness properties (bounded
//! admission, dedupe cache, poison quarantine, crash recovery) live in the
//! engine; this module only frames requests, installs the two-stage signal
//! handler, and turns the first SIGINT/SIGTERM into a graceful
//! [`drain`](Server::drain).
//!
//! ## Protocol
//!
//! One JSON object per line, in both directions:
//!
//! ```text
//! -> {"op":"submit","spec":"moa-job-spec v1\n..."}
//! <- {"ok":true,"outcome":"accepted","job":"<32-hex hash>"}
//! <- {"ok":true,"outcome":"cached","job":"…","digest":"…","detected":N,
//!     "total":N,"gate_evals":0}
//! -> {"op":"status"}              |  {"op":"status","job":"<hash>"}
//! <- {"ok":true,"queued":N,...}   |  {"ok":true,"job":"…","state":"done",...}
//! -> {"op":"watch","job":"<hash>"}
//! <- {"ok":true,"event":"started","job":"…"}   (streamed until terminal)
//! <- {"ok":true,"event":"done","job":"…","digest":"…"}
//! ```
//!
//! With `--dispatch`, four more ops serve `moa work` processes (shard
//! payloads ride as lowercase hex inside JSON strings):
//!
//! ```text
//! -> {"op":"lease","worker":"w1"}
//! <- {"ok":true,"outcome":"assigned","job":"…","shard":0,"shards":2,
//!     "attempt":1,"lease_ms":10000,"heartbeat_ms":2000,"spec":"…"}
//! <- {"ok":true,"outcome":"idle","retry_after_ms":500} | {"outcome":"draining"}
//! -> {"op":"heartbeat","worker":"w1","job":"…","shard":0}
//! <- {"ok":true,"lease":"held"} | {"ok":true,"lease":"lost"}
//! -> {"op":"complete","worker":"w1","job":"…","shard":0,"data":"<hex>"}
//! <- {"ok":true,"outcome":"accepted"|"duplicate"|"rejected","reason":…}
//! -> {"op":"fail","worker":"w1","job":"…","shard":0,"error":"…"}
//! <- {"ok":true}
//! ```
//!
//! Submissions reuse the spool's [`JobSpec`] text as their wire payload, so
//! the daemon validates them with exactly the parser that guards the spool,
//! and client and server compute the same canonical job hash.
//!
//! Connections are hardened against stalled and hostile peers: every socket
//! carries read/write timeouts, and request lines are length-bounded — an
//! oversized line answers a structured error and drops the connection
//! (framing past the bound is unrecoverable).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use moa_core::{
    verdict_digest, CampaignOptions, CanonHash, Completion, DispatchOptions, Dispatcher, Event,
    Heartbeat, JobSpec, JobStatus, Lease, ServeOptions, Server, Submit,
};
use moa_netlist::write_bench;

use crate::commands::{
    audit_peeled, fault_budget_from_args, moa_options_from_args, sequence_from_args,
    shard_retries_from_args, shard_timeout_from_args,
};
use crate::jsonx::{hex_decode, Json};
use crate::{load_circuit, signals, ArgParser, CliError};

const SERVE_USAGE: &str = "usage: moa serve --spool DIR [--addr HOST:PORT] [--workers N] \
[--queue-depth N] [--job-attempts N] [--shards N] [--shard-retries R] [--shard-timeout-ms MS] \
[--retry-after-ms MS] [--dispatch [--lease-ms MS] [--heartbeat-ms MS] [--dispatch-attempts N]]";

const SUBMIT_USAGE: &str = "usage: moa submit <bench-file> [--addr HOST:PORT | --spool DIR] \
[--words p,... | --random L [--seed S] | --seq-file F] [--wait] [--n-states N] [--depth K] \
[--rounds R] [--budget B] [--threads T] [--deadline-ms MS] [--work-limit W] [--max-frontier N] \
[--audit[=N]] [--baseline] [--learn] [--prune-untestable] [--degrade] [--degrade-adaptive]";

const STATUS_USAGE: &str = "usage: moa status [--addr HOST:PORT | --spool DIR] [--job HASH]";

/// The name of the address-discovery file the daemon drops into its spool.
pub(crate) const ADDR_FILE: &str = "daemon.addr";

// ---------------------------------------------------------------------------
// moa serve
// ---------------------------------------------------------------------------

pub fn run_serve(args: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let parser = ArgParser::parse(
        args,
        SERVE_USAGE,
        &[
            "spool",
            "addr",
            "workers",
            "queue-depth",
            "job-attempts",
            "shards",
            "shard-retries",
            "shard-timeout-ms",
            "retry-after-ms",
            "lease-ms",
            "heartbeat-ms",
            "dispatch-attempts",
        ],
        &["dispatch"],
    )?;
    let spool_dir = parser.flag("spool").ok_or_else(|| {
        CliError::Usage(format!("--spool DIR is required\n\n{SERVE_USAGE}"))
    })?;
    let mut options = ServeOptions::new(spool_dir);
    options.queue_depth = parser.num("queue-depth", options.queue_depth)?;
    options.workers = parser.num("workers", options.workers)?;
    options.job_attempts = parser.num("job-attempts", options.job_attempts)?;
    options.shards = parser.num("shards", options.shards)?;
    options.shard_retries = shard_retries_from_args(&parser, options.shard_retries)?;
    options.shard_timeout = shard_timeout_from_args(&parser)?;
    options.retry_after_ms = parser.num("retry-after-ms", options.retry_after_ms)?;
    options.dispatch = dispatch_options_from_args(&parser)?;
    let bind_addr = parser.flag("addr").unwrap_or("127.0.0.1:0").to_owned();

    let failed = |e: moa_core::Error| CliError::Failed(e.to_string());
    let server = Server::start(options).map_err(failed)?;

    // Crash-recovery report first: an operator restarting after a crash
    // (or a CI smoke grepping for re-adoption) sees what the spool held.
    let recovery = server.recovery().clone();
    writeln!(
        out,
        "spool recovery: {} cached result(s), {} previously poisoned job(s)",
        recovery.cached, recovery.poisoned
    )?;
    for hash in &recovery.adopted {
        writeln!(out, "re-adopted job {hash}")?;
    }
    for hash in &recovery.newly_poisoned {
        writeln!(
            out,
            "poisoned on recovery: job {hash} (attempt budget exhausted by earlier daemons)"
        )?;
    }

    let listener = TcpListener::bind(&bind_addr)
        .map_err(|e| CliError::Failed(format!("cannot bind `{bind_addr}`: {e}")))?;
    let local = listener
        .local_addr()
        .map_err(|e| CliError::Failed(format!("cannot read the bound address: {e}")))?;
    // Polling accept keeps the loop responsive to the signal flag without
    // any async machinery.
    listener
        .set_nonblocking(true)
        .map_err(|e| CliError::Failed(format!("cannot set the listener non-blocking: {e}")))?;

    // Discovery hint for `moa submit/status --spool DIR` and for CI jobs
    // that bind port 0.
    let addr_file = server.spool().root().join(ADDR_FILE);
    std::fs::write(&addr_file, format!("{local}\n"))
        .map_err(|e| CliError::Failed(format!("cannot write `{}`: {e}", addr_file.display())))?;

    writeln!(out, "listening on {local}")?;
    if let Some(dispatcher) = server.dispatcher() {
        let policy = dispatcher.options();
        writeln!(
            out,
            "dispatch mode: leases of {} ms, heartbeats every {} ms, {} attempt(s) per shard",
            policy.lease.as_millis(),
            policy.heartbeat.as_millis(),
            policy.attempts,
        )?;
    }
    out.flush()?;

    signals::install();
    let server = Arc::new(server);
    while !signals::interrupted() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let server = Arc::clone(&server);
                // Handler threads are detached: they die with the process
                // (after drain the main thread returns and the process
                // exits; in-flight responses get best-effort completion).
                let _ = std::thread::Builder::new()
                    .name("moa-serve-conn".into())
                    .spawn(move || handle_connection(&server, stream, ConnLimits::default()));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            // Transient accept errors (EMFILE, ECONNABORTED): keep serving.
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }

    writeln!(out, "signal received: draining (a second signal force-quits)")?;
    out.flush()?;
    let leftover = server.drain().map_err(failed)?;
    let _ = std::fs::remove_file(&addr_file);
    writeln!(
        out,
        "drained; {leftover} job(s) left queued for the next daemon to adopt"
    )?;
    Ok(())
}

/// Parses `--dispatch` and its knobs. The knobs are rejected without the
/// switch so a typo'd invocation cannot silently run in the wrong mode.
fn dispatch_options_from_args(parser: &ArgParser) -> Result<Option<DispatchOptions>, CliError> {
    let knobs = ["lease-ms", "heartbeat-ms", "dispatch-attempts"];
    if !parser.switch("dispatch") {
        if let Some(knob) = knobs.iter().find(|k| parser.flag(k).is_some()) {
            return Err(CliError::Usage(format!(
                "--{knob} requires --dispatch\n\n{SERVE_USAGE}"
            )));
        }
        return Ok(None);
    }
    let defaults = DispatchOptions::default();
    let lease =
        Duration::from_millis(parser.num("lease-ms", defaults.lease.as_millis() as u64)?);
    let heartbeat =
        Duration::from_millis(parser.num("heartbeat-ms", defaults.heartbeat.as_millis() as u64)?);
    let attempts = parser.num("dispatch-attempts", defaults.attempts)?;
    if attempts == 0 {
        return Err(CliError::Usage(format!(
            "--dispatch-attempts must be at least 1\n\n{SERVE_USAGE}"
        )));
    }
    if heartbeat.is_zero() || lease < heartbeat.saturating_mul(2) {
        return Err(CliError::Usage(format!(
            "--lease-ms must be at least twice --heartbeat-ms (and both nonzero), got lease {} ms \
             and heartbeat {} ms\n\n{SERVE_USAGE}",
            lease.as_millis(),
            heartbeat.as_millis()
        )));
    }
    Ok(Some(DispatchOptions {
        lease,
        heartbeat,
        attempts,
        ..defaults
    }))
}

/// Per-connection safety limits. The read timeout bounds how long an idle
/// or stalled peer may pin a handler thread; the line bound caps memory a
/// single request can make the daemon buffer.
#[derive(Clone, Copy)]
struct ConnLimits {
    read_timeout: Duration,
    write_timeout: Duration,
    max_line: usize,
}

impl Default for ConnLimits {
    fn default() -> ConnLimits {
        ConnLimits {
            read_timeout: Duration::from_mins(2),
            write_timeout: Duration::from_secs(30),
            // Job specs embed whole bench files and shard uploads ride as
            // hex, so lines are large but bounded: 64 MiB covers any
            // realistic shard at 2x headroom.
            max_line: 64 << 20,
        }
    }
}

/// Reads one `\n`-terminated line of at most `max` bytes. `Ok(None)` is a
/// clean EOF. An oversized line is an `InvalidData` error: the framing past
/// the bound is unrecoverable, so the caller must drop the connection.
fn read_bounded_line(
    reader: &mut BufReader<TcpStream>,
    max: usize,
) -> std::io::Result<Option<String>> {
    #[cfg(feature = "failpoints")]
    if let Some(e) = moa_core::failpoint::io_error("fp/serve.recv") {
        return Err(e);
    }
    let mut buf = Vec::new();
    let n = reader.by_ref().take(max as u64 + 1).read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(None);
    }
    if buf.len() > max {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("request line exceeds the {max}-byte limit"),
        ));
    }
    while matches!(buf.last(), Some(b'\n' | b'\r')) {
        buf.pop();
    }
    String::from_utf8(buf).map(Some).map_err(|_| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "request line is not UTF-8",
        )
    })
}

/// Serves one client connection: one JSON request per line, one (or for
/// `watch`, many) JSON response line(s) each.
fn handle_connection(server: &Server, stream: TcpStream, limits: ConnLimits) {
    let _ = stream.set_read_timeout(Some(limits.read_timeout));
    let _ = stream.set_write_timeout(Some(limits.write_timeout));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    let mut reader = BufReader::new(read_half);
    loop {
        let line = match read_bounded_line(&mut reader, limits.max_line) {
            Ok(Some(line)) => line,
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                // Tell the peer why before hanging up; the stream cannot be
                // re-framed after an oversized or non-UTF-8 line.
                let _ = send(
                    &mut writer,
                    &Json::obj(vec![
                        ("ok", Json::Bool(false)),
                        ("error", Json::str(e.to_string())),
                    ]),
                );
                return;
            }
            // Clean EOF, timeout, or connection error: nothing to say.
            Ok(None) | Err(_) => return,
        };
        if line.trim().is_empty() {
            continue;
        }
        let outcome = match dispatch(server, &line, &mut writer) {
            Ok(Some(reply)) => send(&mut writer, &reply),
            Ok(None) => Ok(()), // `watch` wrote its own stream
            Err(message) => send(
                &mut writer,
                &Json::obj(vec![
                    ("ok", Json::Bool(false)),
                    ("error", Json::str(message)),
                ]),
            ),
        };
        if outcome.is_err() {
            return; // client went away
        }
    }
}

fn send(writer: &mut TcpStream, value: &Json) -> std::io::Result<()> {
    #[cfg(feature = "failpoints")]
    if let Some(e) = moa_core::failpoint::io_error("fp/serve.send") {
        return Err(e);
    }
    let mut line = value.render();
    line.push('\n');
    writer.write_all(line.as_bytes())?;
    writer.flush()
}

/// Handles one request. `Ok(Some(_))` is a single reply, `Ok(None)` means
/// the op streamed its own lines, `Err` becomes an `{"ok":false}` reply.
fn dispatch(server: &Server, line: &str, writer: &mut TcpStream) -> Result<Option<Json>, String> {
    let request = Json::parse(line).map_err(|e| format!("bad request JSON: {e}"))?;
    let op = request
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| "request needs an `op` string".to_owned())?;
    match op {
        "submit" => {
            let text = request
                .get("spec")
                .and_then(Json::as_str)
                .ok_or_else(|| "submit needs a `spec` string (job-spec text)".to_owned())?;
            let spec = JobSpec::parse(text).map_err(|e| e.to_string())?;
            let submit = server.submit(&spec).map_err(|e| e.to_string())?;
            Ok(Some(submit_reply(&submit)))
        }
        "status" => match request.get("job") {
            None => {
                let stats = server.stats().map_err(|e| e.to_string())?;
                let mut pairs = vec![
                    ("ok", Json::Bool(true)),
                    ("queued", Json::num(stats.queued as u64)),
                    ("running", Json::num(stats.running as u64)),
                    ("done", Json::num(stats.done as u64)),
                    ("poisoned", Json::num(stats.poisoned as u64)),
                ];
                if let Some(dispatcher) = server.dispatcher() {
                    let shards = dispatcher.stats().map_err(|e| e.to_string())?;
                    pairs.push(("shards_pending", Json::num(shards.pending as u64)));
                    pairs.push(("shards_leased", Json::num(shards.leased as u64)));
                    pairs.push(("shards_completed", Json::num(shards.completed as u64)));
                    pairs.push((
                        "shards_quarantined",
                        Json::num(shards.quarantined as u64),
                    ));
                }
                Ok(Some(Json::obj(pairs)))
            }
            Some(job) => {
                let hash = parse_hash(job)?;
                let status = server.job_status(hash).map_err(|e| e.to_string())?;
                Ok(Some(status_reply(hash, &status)))
            }
        },
        "watch" => {
            let hash = parse_hash(
                request
                    .get("job")
                    .ok_or_else(|| "watch needs a `job` hash".to_owned())?,
            )?;
            watch(server, hash, writer)?;
            Ok(None)
        }
        "lease" => {
            let d = dispatcher(server)?;
            let worker = str_field(&request, "worker", "lease")?;
            let reply = match d.lease(worker).map_err(|e| e.to_string())? {
                Lease::Assigned(a) => Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("outcome", Json::str("assigned")),
                    ("job", Json::str(a.job.to_string())),
                    ("shard", Json::num(a.shard as u64)),
                    ("shards", Json::num(a.shards as u64)),
                    ("attempt", Json::num(u64::from(a.attempt))),
                    ("lease_ms", Json::num(a.lease_ms)),
                    ("heartbeat_ms", Json::num(a.heartbeat_ms)),
                    ("spec", Json::str(a.spec)),
                ]),
                Lease::Idle { retry_after_ms } => Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("outcome", Json::str("idle")),
                    ("retry_after_ms", Json::num(retry_after_ms)),
                ]),
                Lease::Draining => Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("outcome", Json::str("draining")),
                ]),
            };
            Ok(Some(reply))
        }
        "heartbeat" => {
            let d = dispatcher(server)?;
            let worker = str_field(&request, "worker", "heartbeat")?;
            let job = parse_hash(
                request
                    .get("job")
                    .ok_or_else(|| "heartbeat needs a `job` hash".to_owned())?,
            )?;
            let shard = shard_field(&request, "heartbeat")?;
            let ack = d
                .heartbeat(worker, job, shard)
                .map_err(|e| e.to_string())?;
            Ok(Some(Json::obj(vec![
                ("ok", Json::Bool(true)),
                (
                    "lease",
                    Json::str(match ack {
                        Heartbeat::Held => "held",
                        Heartbeat::Lost => "lost",
                    }),
                ),
            ])))
        }
        "complete" => {
            let d = dispatcher(server)?;
            let worker = str_field(&request, "worker", "complete")?;
            let job = parse_hash(
                request
                    .get("job")
                    .ok_or_else(|| "complete needs a `job` hash".to_owned())?,
            )?;
            let shard = shard_field(&request, "complete")?;
            let data = str_field(&request, "data", "complete")?;
            let bytes =
                hex_decode(data).map_err(|e| format!("complete has bad `data` hex: {e}"))?;
            let reply = match d
                .complete(worker, job, shard, &bytes)
                .map_err(|e| e.to_string())?
            {
                Completion::Accepted => Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("outcome", Json::str("accepted")),
                ]),
                Completion::Duplicate => Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("outcome", Json::str("duplicate")),
                ]),
                Completion::Rejected { reason } => Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("outcome", Json::str("rejected")),
                    ("reason", Json::str(reason)),
                ]),
            };
            Ok(Some(reply))
        }
        "fail" => {
            let d = dispatcher(server)?;
            let worker = str_field(&request, "worker", "fail")?;
            let job = parse_hash(
                request
                    .get("job")
                    .ok_or_else(|| "fail needs a `job` hash".to_owned())?,
            )?;
            let shard = shard_field(&request, "fail")?;
            let error = str_field(&request, "error", "fail")?;
            d.fail(worker, job, shard, error).map_err(|e| e.to_string())?;
            Ok(Some(Json::obj(vec![("ok", Json::Bool(true))])))
        }
        other => Err(format!("unknown op `{other}`")),
    }
}

/// The dispatch ops are only meaningful when the daemon runs `--dispatch`.
fn dispatcher(server: &Server) -> Result<&Arc<Dispatcher>, String> {
    server
        .dispatcher()
        .ok_or_else(|| "the daemon is not in dispatch mode (start it with --dispatch)".to_owned())
}

fn str_field<'a>(request: &'a Json, key: &str, op: &str) -> Result<&'a str, String> {
    request
        .get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{op} needs a `{key}` string"))
}

fn shard_field(request: &Json, op: &str) -> Result<usize, String> {
    request
        .get("shard")
        .and_then(Json::as_u64)
        .and_then(|v| usize::try_from(v).ok())
        .ok_or_else(|| format!("{op} needs a `shard` number"))
}

fn parse_hash(value: &Json) -> Result<CanonHash, String> {
    let text = value
        .as_str()
        .ok_or_else(|| "`job` must be a 32-hex-digit string".to_owned())?;
    CanonHash::parse(text).ok_or_else(|| format!("`{text}` is not a 32-hex-digit job hash"))
}

fn submit_reply(submit: &Submit) -> Json {
    match submit {
        Submit::Accepted { hash } => Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("outcome", Json::str("accepted")),
            ("job", Json::str(hash.to_string())),
        ]),
        Submit::Coalesced { hash } => Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("outcome", Json::str("coalesced")),
            ("job", Json::str(hash.to_string())),
        ]),
        Submit::Cached { hash, result } => Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("outcome", Json::str("cached")),
            ("job", Json::str(hash.to_string())),
            ("digest", Json::str(verdict_digest(result).to_string())),
            ("detected", Json::num(result.detected_total() as u64)),
            ("total", Json::num(result.total_faults as u64)),
            ("gate_evals", Json::num(result.perf.gate_evals)),
        ]),
        Submit::Poisoned { hash, reason } => Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("outcome", Json::str("poisoned")),
            ("job", Json::str(hash.to_string())),
            ("reason", Json::str(reason.clone())),
        ]),
        Submit::Rejected {
            retry_after_ms,
            reason,
        } => Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("outcome", Json::str("rejected")),
            ("retry_after_ms", Json::num(*retry_after_ms)),
            ("reason", Json::str(reason.clone())),
        ]),
    }
}

fn status_reply(hash: CanonHash, status: &JobStatus) -> Json {
    let mut pairs = vec![
        ("ok", Json::Bool(true)),
        ("job", Json::str(hash.to_string())),
    ];
    match status {
        JobStatus::Queued => pairs.push(("state", Json::str("queued"))),
        JobStatus::Running => pairs.push(("state", Json::str("running"))),
        JobStatus::Done { digest } => {
            pairs.push(("state", Json::str("done")));
            pairs.push(("digest", Json::str(digest.to_string())));
        }
        JobStatus::Poisoned { reason } => {
            pairs.push(("state", Json::str("poisoned")));
            pairs.push(("reason", Json::str(reason.clone())));
        }
        JobStatus::Unknown => pairs.push(("state", Json::str("unknown"))),
    }
    Json::obj(pairs)
}

/// Streams the job's progress events until it reaches a terminal state.
/// Subscribe-then-check ordering closes the race where the job finishes
/// between the two.
fn watch(server: &Server, hash: CanonHash, writer: &mut TcpStream) -> Result<(), String> {
    let events = server.subscribe().map_err(|e| e.to_string())?;
    let gone = |_| "client disconnected".to_owned();
    loop {
        match server.job_status(hash).map_err(|e| e.to_string())? {
            JobStatus::Done { digest } => {
                send(
                    writer,
                    &Json::obj(vec![
                        ("ok", Json::Bool(true)),
                        ("event", Json::str("done")),
                        ("job", Json::str(hash.to_string())),
                        ("digest", Json::str(digest.to_string())),
                    ]),
                )
                .map_err(gone)?;
                return Ok(());
            }
            JobStatus::Poisoned { reason } => {
                send(
                    writer,
                    &Json::obj(vec![
                        ("ok", Json::Bool(true)),
                        ("event", Json::str("poisoned")),
                        ("job", Json::str(hash.to_string())),
                        ("reason", Json::str(reason)),
                    ]),
                )
                .map_err(gone)?;
                return Ok(());
            }
            JobStatus::Unknown => return Err(format!("unknown job {hash}")),
            JobStatus::Queued | JobStatus::Running => {}
        }
        match events.recv_timeout(Duration::from_millis(500)) {
            Ok(event) => {
                let (name, event_hash) = event_parts(&event);
                if event_hash != hash {
                    continue;
                }
                send(
                    writer,
                    &Json::obj(vec![
                        ("ok", Json::Bool(true)),
                        ("event", Json::str(name)),
                        ("job", Json::str(hash.to_string())),
                    ]),
                )
                .map_err(gone)?;
                if matches!(event, Event::Interrupted(_)) {
                    // The daemon is draining; the job stays queued on disk
                    // for the next daemon. End the stream so the client is
                    // not left hanging on a dying process.
                    return Ok(());
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {} // re-poll status
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                return Err("the daemon is shutting down".into());
            }
        }
    }
}

fn event_parts(event: &Event) -> (&'static str, CanonHash) {
    match *event {
        Event::Queued(h) => ("queued", h),
        Event::Started(h) => ("started", h),
        Event::Finished(h) => ("finished", h),
        Event::Retried(h) => ("retried", h),
        Event::Poisoned(h) => ("poisoned", h),
        Event::Interrupted(h) => ("interrupted", h),
    }
}

// ---------------------------------------------------------------------------
// Client plumbing
// ---------------------------------------------------------------------------

/// One client connection speaking the newline-JSON protocol.
pub(crate) struct Connection {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Connection {
    pub(crate) fn open(addr: &str) -> Result<Connection, CliError> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| CliError::Failed(format!("cannot connect to the daemon at `{addr}`: {e}")))?;
        let read_half = stream
            .try_clone()
            .map_err(|e| CliError::Failed(format!("cannot clone the connection: {e}")))?;
        Ok(Connection {
            reader: BufReader::new(read_half),
            writer: stream,
        })
    }

    /// Like [`open`](Self::open), but with socket timeouts: a worker must
    /// never hang forever on a daemon that died mid-reply — a timeout error
    /// surfaces and the worker's reconnect loop takes over.
    pub(crate) fn open_with_timeouts(
        addr: &str,
        read: Duration,
        write: Duration,
    ) -> Result<Connection, CliError> {
        let conn = Connection::open(addr)?;
        conn.writer
            .set_read_timeout(Some(read))
            .and_then(|()| conn.writer.set_write_timeout(Some(write)))
            .map_err(|e| CliError::Failed(format!("cannot set socket timeouts: {e}")))?;
        Ok(conn)
    }

    pub(crate) fn send(&mut self, value: &Json) -> Result<(), CliError> {
        let mut line = value.render();
        line.push('\n');
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.flush())
            .map_err(|e| CliError::Failed(format!("cannot send to the daemon: {e}")))
    }

    pub(crate) fn read_reply(&mut self) -> Result<Json, CliError> {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| CliError::Failed(format!("cannot read from the daemon: {e}")))?;
        if n == 0 {
            return Err(CliError::Failed(
                "the daemon closed the connection".into(),
            ));
        }
        let reply = Json::parse(line.trim_end())
            .map_err(|e| CliError::Failed(format!("bad reply from the daemon: {e}")))?;
        if reply.get("ok").and_then(Json::as_bool) == Some(false) {
            let message = reply
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unknown error");
            return Err(CliError::Failed(format!("daemon error: {message}")));
        }
        Ok(reply)
    }

    pub(crate) fn request(&mut self, value: &Json) -> Result<Json, CliError> {
        self.send(value)?;
        self.read_reply()
    }
}

/// `--addr HOST:PORT` wins; otherwise `--spool DIR` reads the daemon's
/// discovery file.
pub(crate) fn resolve_addr(parser: &ArgParser, usage: &'static str) -> Result<String, CliError> {
    if let Some(addr) = parser.flag("addr") {
        return Ok(addr.to_owned());
    }
    if let Some(spool) = parser.flag("spool") {
        let path = Path::new(spool).join(ADDR_FILE);
        let text = std::fs::read_to_string(&path).map_err(|e| {
            CliError::Failed(format!(
                "cannot read `{}` (is the daemon running with --spool {spool}?): {e}",
                path.display()
            ))
        })?;
        return Ok(text.trim().to_owned());
    }
    Err(CliError::Usage(format!(
        "need --addr HOST:PORT or --spool DIR to find the daemon\n\n{usage}"
    )))
}

pub(crate) fn field<'a>(reply: &'a Json, key: &str) -> &'a str {
    reply.get(key).and_then(Json::as_str).unwrap_or("?")
}

// ---------------------------------------------------------------------------
// moa submit
// ---------------------------------------------------------------------------

pub fn run_submit(args: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let (audit, filtered) = audit_peeled(args, SUBMIT_USAGE)?;
    let parser = ArgParser::parse(
        &filtered,
        SUBMIT_USAGE,
        &[
            "addr",
            "spool",
            "words",
            "random",
            "seed",
            "seq-file",
            "n-states",
            "depth",
            "rounds",
            "budget",
            "threads",
            "deadline-ms",
            "work-limit",
            "max-frontier",
        ],
        &[
            "wait",
            "baseline",
            "learn",
            "prune-untestable",
            "degrade",
            "degrade-adaptive",
        ],
    )?;
    let circuit = load_circuit(parser.required(0, "bench file")?)?;
    let seq = sequence_from_args(&parser, &circuit, 64)?;
    let mut moa = moa_options_from_args(&parser)?;
    if parser.switch("baseline") {
        moa.backward_implications = false;
    }
    let options = CampaignOptions {
        moa,
        threads: parser.num("threads", 0usize)?,
        prune_untestable: parser.switch("prune-untestable"),
        budget: fault_budget_from_args(&parser)?,
        audit,
        ..CampaignOptions::default()
    };
    let spec = JobSpec::new(&write_bench(&circuit), &seq.to_text(), options)
        .map_err(|e| CliError::Failed(e.to_string()))?;
    let hash = spec.hash();

    let addr = resolve_addr(&parser, SUBMIT_USAGE)?;
    let mut conn = Connection::open(&addr)?;
    let reply = conn.request(&Json::obj(vec![
        ("op", Json::str("submit")),
        ("spec", Json::str(spec.to_text())),
    ]))?;

    match field(&reply, "outcome") {
        "accepted" => writeln!(out, "accepted: job {hash}")?,
        "coalesced" => writeln!(out, "coalesced: job {hash} is already queued or running")?,
        "cached" => {
            writeln!(
                out,
                "cached: job {hash} was already done; verdict digest {}, detected {} of {}, \
                 gate evals {}",
                field(&reply, "digest"),
                reply.get("detected").and_then(Json::as_u64).unwrap_or(0),
                reply.get("total").and_then(Json::as_u64).unwrap_or(0),
                reply.get("gate_evals").and_then(Json::as_u64).unwrap_or(0),
            )?;
            return Ok(());
        }
        "poisoned" => {
            return Err(CliError::Failed(format!(
                "job {hash} is quarantined: {}",
                field(&reply, "reason")
            )));
        }
        "rejected" => {
            return Err(CliError::Failed(format!(
                "rejected: {}; retry after {} ms",
                field(&reply, "reason"),
                reply
                    .get("retry_after_ms")
                    .and_then(Json::as_u64)
                    .unwrap_or(0),
            )));
        }
        other => {
            return Err(CliError::Failed(format!(
                "unexpected submit outcome `{other}`"
            )));
        }
    }

    if !parser.switch("wait") {
        writeln!(
            out,
            "poll with: moa status --addr {addr} --job {hash}"
        )?;
        return Ok(());
    }

    // Stream progress on the same connection until the job is terminal.
    conn.send(&Json::obj(vec![
        ("op", Json::str("watch")),
        ("job", Json::str(hash.to_string())),
    ]))?;
    loop {
        let event = conn.read_reply()?;
        match field(&event, "event") {
            "done" => {
                writeln!(out, "done: job {hash}, verdict digest {}", field(&event, "digest"))?;
                return Ok(());
            }
            "poisoned" => {
                return Err(CliError::Failed(format!(
                    "job {hash} was quarantined while waiting"
                )));
            }
            "interrupted" => {
                return Err(CliError::Failed(format!(
                    "the daemon is draining; job {hash} stays queued and resumes under \
                     the next daemon"
                )));
            }
            name => writeln!(out, "event: {name}")?,
        }
    }
}

// ---------------------------------------------------------------------------
// moa status
// ---------------------------------------------------------------------------

pub fn run_status(args: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let parser = ArgParser::parse(args, STATUS_USAGE, &["addr", "spool", "job"], &[])?;
    let addr = resolve_addr(&parser, STATUS_USAGE)?;
    let mut conn = Connection::open(&addr)?;
    match parser.flag("job") {
        None => {
            let reply = conn.request(&Json::obj(vec![("op", Json::str("status"))]))?;
            let count = |key: &str| reply.get(key).and_then(Json::as_u64).unwrap_or(0);
            writeln!(
                out,
                "queued {} / running {} / done {} / poisoned {}",
                count("queued"),
                count("running"),
                count("done"),
                count("poisoned"),
            )?;
            if reply.get("shards_pending").is_some() {
                writeln!(
                    out,
                    "dispatch shards: pending {} / leased {} / completed {} / quarantined {}",
                    count("shards_pending"),
                    count("shards_leased"),
                    count("shards_completed"),
                    count("shards_quarantined"),
                )?;
            }
        }
        Some(job) => {
            let reply = conn.request(&Json::obj(vec![
                ("op", Json::str("status")),
                ("job", Json::str(job)),
            ]))?;
            match field(&reply, "state") {
                "done" => writeln!(
                    out,
                    "job {job}: done, verdict digest {}",
                    field(&reply, "digest")
                )?,
                "poisoned" => writeln!(
                    out,
                    "job {job}: poisoned — {}",
                    field(&reply, "reason")
                )?,
                state => writeln!(out, "job {job}: {state}")?,
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use moa_circuits::iscas::S27_BENCH;
    use moa_tpg::random_sequence;

    fn temp_spool(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "moa-cli-serve-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn s27_spec() -> JobSpec {
        let circuit = moa_circuits::iscas::s27();
        let seq = random_sequence(&circuit, 12, 7);
        JobSpec::new(S27_BENCH, &seq.to_text(), CampaignOptions::new()).expect("valid spec")
    }

    /// Full protocol round trip over a real socket, without the accept
    /// loop: submit → watch to completion → status → dedupe → bad requests.
    #[test]
    fn protocol_round_trip_over_a_socket() {
        let dir = temp_spool("proto");
        let server = Arc::new(Server::start(ServeOptions::new(&dir)).expect("start"));
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let handler = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let (stream, _) = listener.accept().expect("accept");
                handle_connection(&server, stream, ConnLimits::default());
            })
        };

        let spec = s27_spec();
        let hash = spec.hash();
        let mut conn = Connection::open(&addr).expect("connect");

        // Malformed requests answer with structured errors, not hangups —
        // the same connection keeps working afterwards.
        let err = conn
            .request(&Json::obj(vec![("op", Json::str("frobnicate"))]))
            .expect_err("unknown op");
        assert!(err.to_string().contains("unknown op"), "{err}");
        let err = conn
            .request(&Json::obj(vec![
                ("op", Json::str("status")),
                ("job", Json::str("zz")),
            ]))
            .expect_err("bad hash");
        assert!(err.to_string().contains("32-hex"), "{err}");
        let err = conn
            .request(&Json::obj(vec![
                ("op", Json::str("submit")),
                ("spec", Json::str("garbage")),
            ]))
            .expect_err("bad spec");
        assert!(err.to_string().contains("daemon error"), "{err}");

        // Submit, then watch to completion on the same connection.
        let reply = conn
            .request(&Json::obj(vec![
                ("op", Json::str("submit")),
                ("spec", Json::str(spec.to_text())),
            ]))
            .expect("submit");
        assert_eq!(field(&reply, "outcome"), "accepted");
        assert_eq!(field(&reply, "job"), hash.to_string());

        conn.send(&Json::obj(vec![
            ("op", Json::str("watch")),
            ("job", Json::str(hash.to_string())),
        ]))
        .expect("watch");
        let digest = loop {
            let event = conn.read_reply().expect("event");
            match field(&event, "event") {
                "done" => break field(&event, "digest").to_owned(),
                "poisoned" => panic!("job must not poison: {event:?}"),
                _ => {}
            }
        };
        assert_eq!(digest.len(), 32, "digest is a 32-hex canon hash: {digest}");

        // Status agrees, and a duplicate submission is served from cache.
        let reply = conn
            .request(&Json::obj(vec![
                ("op", Json::str("status")),
                ("job", Json::str(hash.to_string())),
            ]))
            .expect("status");
        assert_eq!(field(&reply, "state"), "done");
        assert_eq!(field(&reply, "digest"), digest);
        let reply = conn
            .request(&Json::obj(vec![
                ("op", Json::str("submit")),
                ("spec", Json::str(spec.to_text())),
            ]))
            .expect("resubmit");
        assert_eq!(field(&reply, "outcome"), "cached");
        assert_eq!(field(&reply, "digest"), digest);
        assert_eq!(reply.get("gate_evals").and_then(Json::as_u64), Some(0));

        let reply = conn
            .request(&Json::obj(vec![("op", Json::str("status"))]))
            .expect("stats");
        assert_eq!(reply.get("done").and_then(Json::as_u64), Some(1));

        drop(conn);
        handler.join().expect("handler");
        assert_eq!(server.drain().expect("drain"), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Spawns a handler thread serving exactly one accepted connection.
    fn one_shot_handler(
        server: &Arc<Server>,
        limits: ConnLimits,
    ) -> (String, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let server = Arc::clone(server);
        let handler = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            handle_connection(&server, stream, limits);
        });
        (addr, handler)
    }

    /// An oversized request line answers a structured error and then the
    /// daemon hangs up — the framing past the bound is unrecoverable, so
    /// the connection must not limp along misinterpreting the remainder.
    #[test]
    fn oversized_request_lines_answer_an_error_then_disconnect() {
        let dir = temp_spool("maxline");
        let server = Arc::new(Server::start(ServeOptions::new(&dir)).expect("start"));
        let limits = ConnLimits {
            max_line: 128,
            ..ConnLimits::default()
        };
        let (addr, handler) = one_shot_handler(&server, limits);

        let mut conn = Connection::open(&addr).expect("connect");
        let huge = Json::obj(vec![
            ("op", Json::str("status")),
            ("job", Json::str("x".repeat(256))),
        ]);
        let err = conn.request(&huge).expect_err("oversized line");
        assert!(err.to_string().contains("128-byte limit"), "{err}");
        let err = conn
            .request(&Json::obj(vec![("op", Json::str("status"))]))
            .expect_err("connection is gone");
        assert!(err.to_string().contains("closed the connection"), "{err}");

        handler.join().expect("handler");
        assert_eq!(server.drain().expect("drain"), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A worker-free daemon in dispatch mode serves the lease / heartbeat /
    /// complete ops over the wire: this test plays the worker by hand and
    /// drives one job to completion shard by shard.
    #[test]
    fn dispatch_ops_drive_a_job_over_the_wire() {
        let dir = temp_spool("dispatch-ops");
        let options = ServeOptions {
            shards: 2,
            dispatch: Some(DispatchOptions::default()),
            ..ServeOptions::new(&dir)
        };
        let server = Arc::new(Server::start(options).expect("start"));
        let (addr, handler) = one_shot_handler(&server, ConnLimits::default());
        let mut conn = Connection::open(&addr).expect("connect");

        let spec = s27_spec();
        let hash = spec.hash();
        let reply = conn
            .request(&Json::obj(vec![
                ("op", Json::str("submit")),
                ("spec", Json::str(spec.to_text())),
            ]))
            .expect("submit");
        assert_eq!(field(&reply, "outcome"), "accepted");

        let scratch = temp_spool("dispatch-ops-scratch");
        let mut done = 0usize;
        while done < 2 {
            let reply = conn
                .request(&Json::obj(vec![
                    ("op", Json::str("lease")),
                    ("worker", Json::str("wire-worker")),
                ]))
                .expect("lease");
            match field(&reply, "outcome") {
                "idle" => {
                    assert!(reply.get("retry_after_ms").and_then(Json::as_u64).is_some());
                    std::thread::sleep(Duration::from_millis(10));
                }
                "assigned" => {
                    assert_eq!(field(&reply, "job"), hash.to_string());
                    let shard =
                        reply.get("shard").and_then(Json::as_u64).expect("shard") as usize;
                    let shards =
                        reply.get("shards").and_then(Json::as_u64).expect("shards") as usize;
                    assert_eq!(shards, 2);
                    let job_spec =
                        JobSpec::parse(field(&reply, "spec")).expect("spec round-trips");
                    assert_eq!(job_spec.hash(), hash, "spec matches its content address");

                    // Mid-shard, the lease answers to a heartbeat.
                    let beat = conn
                        .request(&Json::obj(vec![
                            ("op", Json::str("heartbeat")),
                            ("worker", Json::str("wire-worker")),
                            ("job", Json::str(hash.to_string())),
                            ("shard", Json::num(shard as u64)),
                        ]))
                        .expect("heartbeat");
                    assert_eq!(field(&beat, "lease"), "held");

                    let faults = moa_netlist::full_fault_list(&job_spec.circuit);
                    moa_core::run_shard(
                        &job_spec.circuit,
                        &job_spec.seq,
                        &faults,
                        &job_spec.options,
                        shards,
                        shard,
                        &scratch,
                    )
                    .expect("shard runs");
                    let bytes =
                        std::fs::read(moa_core::shard_path(&scratch, shard)).expect("bytes");
                    let upload = conn
                        .request(&Json::obj(vec![
                            ("op", Json::str("complete")),
                            ("worker", Json::str("wire-worker")),
                            ("job", Json::str(hash.to_string())),
                            ("shard", Json::num(shard as u64)),
                            ("data", Json::str(crate::jsonx::hex_encode(&bytes))),
                        ]))
                        .expect("complete");
                    assert_eq!(field(&upload, "outcome"), "accepted");
                    done += 1;
                }
                other => panic!("unexpected lease outcome `{other}`"),
            }
        }

        // Both shards are in: the daemon's job thread merges and finishes.
        conn.send(&Json::obj(vec![
            ("op", Json::str("watch")),
            ("job", Json::str(hash.to_string())),
        ]))
        .expect("watch");
        loop {
            let event = conn.read_reply().expect("event");
            match field(&event, "event") {
                "done" => break,
                "poisoned" => panic!("job must not poison: {event:?}"),
                _ => {}
            }
        }

        // Daemon-wide status now carries dispatch shard counters.
        let reply = conn
            .request(&Json::obj(vec![("op", Json::str("status"))]))
            .expect("stats");
        assert!(reply.get("shards_pending").and_then(Json::as_u64).is_some());

        drop(conn);
        handler.join().expect("handler");
        assert_eq!(server.drain().expect("drain"), 0);
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&scratch);
    }

    /// The dispatch ops are a hard error on a daemon not running
    /// `--dispatch`: a misconfigured worker learns immediately instead of
    /// spinning on idle replies forever.
    #[test]
    fn dispatch_ops_require_dispatch_mode() {
        let dir = temp_spool("nodispatch");
        let server = Arc::new(Server::start(ServeOptions::new(&dir)).expect("start"));
        let (addr, handler) = one_shot_handler(&server, ConnLimits::default());
        let mut conn = Connection::open(&addr).expect("connect");
        let err = conn
            .request(&Json::obj(vec![
                ("op", Json::str("lease")),
                ("worker", Json::str("w1")),
            ]))
            .expect_err("lease must fail");
        assert!(err.to_string().contains("not in dispatch mode"), "{err}");
        drop(conn);
        handler.join().expect("handler");
        assert_eq!(server.drain().expect("drain"), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Armed `fp/serve.send` / `fp/serve.recv` failpoints sever individual
    /// connections — but only those: the daemon itself survives, and a
    /// fresh connection works once the schedule is exhausted. This is the
    /// transport half of the chaos breadth contract (the lease-path site is
    /// soaked in `moa_core::dispatch`).
    #[cfg(feature = "failpoints")]
    #[test]
    fn serve_failpoints_sever_connections_but_spare_the_daemon() {
        use moa_core::failpoint::{self, ChaosSchedule, FailAction, SitePlan};
        let _guard = failpoint::test_lock();
        failpoint::clear();

        let dir = temp_spool("fp-serve");
        let server = Arc::new(Server::start(ServeOptions::new(&dir)).expect("start"));
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let handler = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                for _ in 0..3 {
                    let (stream, _) = listener.accept().expect("accept");
                    handle_connection(&server, stream, ConnLimits::default());
                }
            })
        };

        failpoint::install(
            ChaosSchedule::empty(7)
                .with_site(
                    "fp/serve.recv",
                    SitePlan::new(1.0, vec![FailAction::Error]).with_max_fires(1),
                )
                .with_site(
                    "fp/serve.send",
                    SitePlan::new(1.0, vec![FailAction::Error]).with_max_fires(1),
                ),
        );

        let status_op = Json::obj(vec![("op", Json::str("status"))]);
        // Connection 1 dies to the injected recv error, connection 2 to the
        // injected send error; neither takes the daemon down.
        for round in 0..2 {
            let mut conn = Connection::open(&addr).expect("connect");
            let err = conn.request(&status_op).expect_err("injected failure");
            // The drop shows as a clean EOF or a reset depending on timing —
            // either way it is a transport failure, not a structured reply.
            assert!(
                !err.to_string().contains("daemon error"),
                "round {round}: {err}"
            );
        }
        // Both plans exhausted: a fresh connection serves normally.
        let mut conn = Connection::open(&addr).expect("connect");
        let reply = conn.request(&status_op).expect("healthy after chaos");
        assert_eq!(reply.get("queued").and_then(Json::as_u64), Some(0));

        let fired: Vec<String> = failpoint::fired_combos()
            .into_iter()
            .map(|((site, kind), _)| format!("{site}/{kind}"))
            .collect();
        failpoint::clear();
        assert!(fired.contains(&"fp/serve.recv/error".to_owned()), "{fired:?}");
        assert!(fired.contains(&"fp/serve.send/error".to_owned()), "{fired:?}");

        drop(conn);
        handler.join().expect("handler");
        assert_eq!(server.drain().expect("drain"), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dispatch_knobs_require_the_dispatch_switch() {
        let dir = temp_spool("knobs");
        let args: Vec<String> = vec![
            "--spool".into(),
            dir.to_string_lossy().into_owned(),
            "--lease-ms".into(),
            "5000".into(),
        ];
        let mut out = Vec::new();
        let err = run_serve(&args, &mut out).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        assert!(err.to_string().contains("requires --dispatch"), "{err}");

        // And an unsafe lease/heartbeat ratio is refused up front.
        let args: Vec<String> = vec![
            "--spool".into(),
            dir.to_string_lossy().into_owned(),
            "--dispatch".into(),
            "--lease-ms".into(),
            "1000".into(),
            "--heartbeat-ms".into(),
            "900".into(),
        ];
        let mut out = Vec::new();
        let err = run_serve(&args, &mut out).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        assert!(err.to_string().contains("at least twice"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_flag_validation_rejects_zeroes_and_missing_spool() {
        let mut out = Vec::new();
        let err = run_serve(&[], &mut out).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        assert!(err.to_string().contains("--spool"), "{err}");

        for (flag, value) in [("--shard-retries", "0"), ("--shard-timeout-ms", "0")] {
            let dir = temp_spool("flags");
            let args: Vec<String> = vec![
                "--spool".into(),
                dir.to_string_lossy().into_owned(),
                flag.into(),
                value.into(),
            ];
            let mut out = Vec::new();
            let err = run_serve(&args, &mut out).unwrap_err();
            assert!(matches!(err, CliError::Usage(_)), "{flag}: {err}");
            assert!(err.to_string().contains("at least 1"), "{flag}: {err}");
        }
    }

    #[test]
    fn clients_without_a_daemon_fail_with_located_errors() {
        let mut out = Vec::new();
        let err = run_status(&[], &mut out).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");

        let dir = temp_spool("noaddr");
        std::fs::create_dir_all(&dir).unwrap();
        let mut out = Vec::new();
        let err = run_status(
            &["--spool".into(), dir.to_string_lossy().into_owned()],
            &mut out,
        )
        .unwrap_err();
        assert!(err.to_string().contains("daemon.addr"), "{err}");
        assert!(err.to_string().contains("is the daemon running"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
