//! `moa serve` / `moa submit` / `moa status` — the campaign daemon and its
//! clients.
//!
//! The daemon wraps the in-process engine ([`moa_core::serve`]) in a TCP
//! transport: newline-delimited JSON requests on a `std::net` listener, one
//! handler thread per connection. All robustness properties (bounded
//! admission, dedupe cache, poison quarantine, crash recovery) live in the
//! engine; this module only frames requests, installs the two-stage signal
//! handler, and turns the first SIGINT/SIGTERM into a graceful
//! [`drain`](Server::drain).
//!
//! ## Protocol
//!
//! One JSON object per line, in both directions:
//!
//! ```text
//! -> {"op":"submit","spec":"moa-job-spec v1\n..."}
//! <- {"ok":true,"outcome":"accepted","job":"<32-hex hash>"}
//! <- {"ok":true,"outcome":"cached","job":"…","digest":"…","detected":N,
//!     "total":N,"gate_evals":0}
//! -> {"op":"status"}              |  {"op":"status","job":"<hash>"}
//! <- {"ok":true,"queued":N,...}   |  {"ok":true,"job":"…","state":"done",...}
//! -> {"op":"watch","job":"<hash>"}
//! <- {"ok":true,"event":"started","job":"…"}   (streamed until terminal)
//! <- {"ok":true,"event":"done","job":"…","digest":"…"}
//! ```
//!
//! Submissions reuse the spool's [`JobSpec`] text as their wire payload, so
//! the daemon validates them with exactly the parser that guards the spool,
//! and client and server compute the same canonical job hash.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use moa_core::{
    verdict_digest, CampaignOptions, CanonHash, Event, JobSpec, JobStatus, ServeOptions, Server,
    Submit,
};
use moa_netlist::write_bench;

use crate::commands::{
    audit_peeled, fault_budget_from_args, moa_options_from_args, sequence_from_args,
    shard_retries_from_args, shard_timeout_from_args,
};
use crate::jsonx::Json;
use crate::{load_circuit, signals, ArgParser, CliError};

const SERVE_USAGE: &str = "usage: moa serve --spool DIR [--addr HOST:PORT] [--workers N] \
[--queue-depth N] [--job-attempts N] [--shards N] [--shard-retries R] [--shard-timeout-ms MS] \
[--retry-after-ms MS]";

const SUBMIT_USAGE: &str = "usage: moa submit <bench-file> [--addr HOST:PORT | --spool DIR] \
[--words p,... | --random L [--seed S] | --seq-file F] [--wait] [--n-states N] [--depth K] \
[--rounds R] [--budget B] [--threads T] [--deadline-ms MS] [--work-limit W] [--max-frontier N] \
[--audit[=N]] [--baseline] [--learn] [--prune-untestable] [--degrade] [--degrade-adaptive]";

const STATUS_USAGE: &str = "usage: moa status [--addr HOST:PORT | --spool DIR] [--job HASH]";

/// The name of the address-discovery file the daemon drops into its spool.
const ADDR_FILE: &str = "daemon.addr";

// ---------------------------------------------------------------------------
// moa serve
// ---------------------------------------------------------------------------

pub fn run_serve(args: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let parser = ArgParser::parse(
        args,
        SERVE_USAGE,
        &[
            "spool",
            "addr",
            "workers",
            "queue-depth",
            "job-attempts",
            "shards",
            "shard-retries",
            "shard-timeout-ms",
            "retry-after-ms",
        ],
        &[],
    )?;
    let spool_dir = parser.flag("spool").ok_or_else(|| {
        CliError::Usage(format!("--spool DIR is required\n\n{SERVE_USAGE}"))
    })?;
    let mut options = ServeOptions::new(spool_dir);
    options.queue_depth = parser.num("queue-depth", options.queue_depth)?;
    options.workers = parser.num("workers", options.workers)?;
    options.job_attempts = parser.num("job-attempts", options.job_attempts)?;
    options.shards = parser.num("shards", options.shards)?;
    options.shard_retries = shard_retries_from_args(&parser, options.shard_retries)?;
    options.shard_timeout = shard_timeout_from_args(&parser)?;
    options.retry_after_ms = parser.num("retry-after-ms", options.retry_after_ms)?;
    let bind_addr = parser.flag("addr").unwrap_or("127.0.0.1:0").to_owned();

    let failed = |e: moa_core::Error| CliError::Failed(e.to_string());
    let server = Server::start(options).map_err(failed)?;

    // Crash-recovery report first: an operator restarting after a crash
    // (or a CI smoke grepping for re-adoption) sees what the spool held.
    let recovery = server.recovery().clone();
    writeln!(
        out,
        "spool recovery: {} cached result(s), {} previously poisoned job(s)",
        recovery.cached, recovery.poisoned
    )?;
    for hash in &recovery.adopted {
        writeln!(out, "re-adopted job {hash}")?;
    }
    for hash in &recovery.newly_poisoned {
        writeln!(
            out,
            "poisoned on recovery: job {hash} (attempt budget exhausted by earlier daemons)"
        )?;
    }

    let listener = TcpListener::bind(&bind_addr)
        .map_err(|e| CliError::Failed(format!("cannot bind `{bind_addr}`: {e}")))?;
    let local = listener
        .local_addr()
        .map_err(|e| CliError::Failed(format!("cannot read the bound address: {e}")))?;
    // Polling accept keeps the loop responsive to the signal flag without
    // any async machinery.
    listener
        .set_nonblocking(true)
        .map_err(|e| CliError::Failed(format!("cannot set the listener non-blocking: {e}")))?;

    // Discovery hint for `moa submit/status --spool DIR` and for CI jobs
    // that bind port 0.
    let addr_file = server.spool().root().join(ADDR_FILE);
    std::fs::write(&addr_file, format!("{local}\n"))
        .map_err(|e| CliError::Failed(format!("cannot write `{}`: {e}", addr_file.display())))?;

    writeln!(out, "listening on {local}")?;
    out.flush()?;

    signals::install();
    let server = Arc::new(server);
    while !signals::interrupted() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let server = Arc::clone(&server);
                // Handler threads are detached: they die with the process
                // (after drain the main thread returns and the process
                // exits; in-flight responses get best-effort completion).
                let _ = std::thread::Builder::new()
                    .name("moa-serve-conn".into())
                    .spawn(move || handle_connection(&server, stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            // Transient accept errors (EMFILE, ECONNABORTED): keep serving.
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }

    writeln!(out, "signal received: draining (a second signal force-quits)")?;
    out.flush()?;
    let leftover = server.drain().map_err(failed)?;
    let _ = std::fs::remove_file(&addr_file);
    writeln!(
        out,
        "drained; {leftover} job(s) left queued for the next daemon to adopt"
    )?;
    Ok(())
}

/// Serves one client connection: one JSON request per line, one (or for
/// `watch`, many) JSON response line(s) each.
fn handle_connection(server: &Server, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    let reader = BufReader::new(read_half);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let outcome = match dispatch(server, &line, &mut writer) {
            Ok(Some(reply)) => send(&mut writer, &reply),
            Ok(None) => Ok(()), // `watch` wrote its own stream
            Err(message) => send(
                &mut writer,
                &Json::obj(vec![
                    ("ok", Json::Bool(false)),
                    ("error", Json::str(message)),
                ]),
            ),
        };
        if outcome.is_err() {
            break; // client went away
        }
    }
}

fn send(writer: &mut TcpStream, value: &Json) -> std::io::Result<()> {
    let mut line = value.render();
    line.push('\n');
    writer.write_all(line.as_bytes())?;
    writer.flush()
}

/// Handles one request. `Ok(Some(_))` is a single reply, `Ok(None)` means
/// the op streamed its own lines, `Err` becomes an `{"ok":false}` reply.
fn dispatch(server: &Server, line: &str, writer: &mut TcpStream) -> Result<Option<Json>, String> {
    let request = Json::parse(line).map_err(|e| format!("bad request JSON: {e}"))?;
    let op = request
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| "request needs an `op` string".to_owned())?;
    match op {
        "submit" => {
            let text = request
                .get("spec")
                .and_then(Json::as_str)
                .ok_or_else(|| "submit needs a `spec` string (job-spec text)".to_owned())?;
            let spec = JobSpec::parse(text).map_err(|e| e.to_string())?;
            let submit = server.submit(&spec).map_err(|e| e.to_string())?;
            Ok(Some(submit_reply(&submit)))
        }
        "status" => match request.get("job") {
            None => {
                let stats = server.stats().map_err(|e| e.to_string())?;
                Ok(Some(Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("queued", Json::num(stats.queued as u64)),
                    ("running", Json::num(stats.running as u64)),
                    ("done", Json::num(stats.done as u64)),
                    ("poisoned", Json::num(stats.poisoned as u64)),
                ])))
            }
            Some(job) => {
                let hash = parse_hash(job)?;
                let status = server.job_status(hash).map_err(|e| e.to_string())?;
                Ok(Some(status_reply(hash, &status)))
            }
        },
        "watch" => {
            let hash = parse_hash(
                request
                    .get("job")
                    .ok_or_else(|| "watch needs a `job` hash".to_owned())?,
            )?;
            watch(server, hash, writer)?;
            Ok(None)
        }
        other => Err(format!("unknown op `{other}`")),
    }
}

fn parse_hash(value: &Json) -> Result<CanonHash, String> {
    let text = value
        .as_str()
        .ok_or_else(|| "`job` must be a 32-hex-digit string".to_owned())?;
    CanonHash::parse(text).ok_or_else(|| format!("`{text}` is not a 32-hex-digit job hash"))
}

fn submit_reply(submit: &Submit) -> Json {
    match submit {
        Submit::Accepted { hash } => Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("outcome", Json::str("accepted")),
            ("job", Json::str(hash.to_string())),
        ]),
        Submit::Coalesced { hash } => Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("outcome", Json::str("coalesced")),
            ("job", Json::str(hash.to_string())),
        ]),
        Submit::Cached { hash, result } => Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("outcome", Json::str("cached")),
            ("job", Json::str(hash.to_string())),
            ("digest", Json::str(verdict_digest(result).to_string())),
            ("detected", Json::num(result.detected_total() as u64)),
            ("total", Json::num(result.total_faults as u64)),
            ("gate_evals", Json::num(result.perf.gate_evals)),
        ]),
        Submit::Poisoned { hash, reason } => Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("outcome", Json::str("poisoned")),
            ("job", Json::str(hash.to_string())),
            ("reason", Json::str(reason.clone())),
        ]),
        Submit::Rejected {
            retry_after_ms,
            reason,
        } => Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("outcome", Json::str("rejected")),
            ("retry_after_ms", Json::num(*retry_after_ms)),
            ("reason", Json::str(reason.clone())),
        ]),
    }
}

fn status_reply(hash: CanonHash, status: &JobStatus) -> Json {
    let mut pairs = vec![
        ("ok", Json::Bool(true)),
        ("job", Json::str(hash.to_string())),
    ];
    match status {
        JobStatus::Queued => pairs.push(("state", Json::str("queued"))),
        JobStatus::Running => pairs.push(("state", Json::str("running"))),
        JobStatus::Done { digest } => {
            pairs.push(("state", Json::str("done")));
            pairs.push(("digest", Json::str(digest.to_string())));
        }
        JobStatus::Poisoned { reason } => {
            pairs.push(("state", Json::str("poisoned")));
            pairs.push(("reason", Json::str(reason.clone())));
        }
        JobStatus::Unknown => pairs.push(("state", Json::str("unknown"))),
    }
    Json::obj(pairs)
}

/// Streams the job's progress events until it reaches a terminal state.
/// Subscribe-then-check ordering closes the race where the job finishes
/// between the two.
fn watch(server: &Server, hash: CanonHash, writer: &mut TcpStream) -> Result<(), String> {
    let events = server.subscribe().map_err(|e| e.to_string())?;
    let gone = |_| "client disconnected".to_owned();
    loop {
        match server.job_status(hash).map_err(|e| e.to_string())? {
            JobStatus::Done { digest } => {
                send(
                    writer,
                    &Json::obj(vec![
                        ("ok", Json::Bool(true)),
                        ("event", Json::str("done")),
                        ("job", Json::str(hash.to_string())),
                        ("digest", Json::str(digest.to_string())),
                    ]),
                )
                .map_err(gone)?;
                return Ok(());
            }
            JobStatus::Poisoned { reason } => {
                send(
                    writer,
                    &Json::obj(vec![
                        ("ok", Json::Bool(true)),
                        ("event", Json::str("poisoned")),
                        ("job", Json::str(hash.to_string())),
                        ("reason", Json::str(reason)),
                    ]),
                )
                .map_err(gone)?;
                return Ok(());
            }
            JobStatus::Unknown => return Err(format!("unknown job {hash}")),
            JobStatus::Queued | JobStatus::Running => {}
        }
        match events.recv_timeout(Duration::from_millis(500)) {
            Ok(event) => {
                let (name, event_hash) = event_parts(&event);
                if event_hash != hash {
                    continue;
                }
                send(
                    writer,
                    &Json::obj(vec![
                        ("ok", Json::Bool(true)),
                        ("event", Json::str(name)),
                        ("job", Json::str(hash.to_string())),
                    ]),
                )
                .map_err(gone)?;
                if matches!(event, Event::Interrupted(_)) {
                    // The daemon is draining; the job stays queued on disk
                    // for the next daemon. End the stream so the client is
                    // not left hanging on a dying process.
                    return Ok(());
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {} // re-poll status
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                return Err("the daemon is shutting down".into());
            }
        }
    }
}

fn event_parts(event: &Event) -> (&'static str, CanonHash) {
    match *event {
        Event::Queued(h) => ("queued", h),
        Event::Started(h) => ("started", h),
        Event::Finished(h) => ("finished", h),
        Event::Retried(h) => ("retried", h),
        Event::Poisoned(h) => ("poisoned", h),
        Event::Interrupted(h) => ("interrupted", h),
    }
}

// ---------------------------------------------------------------------------
// Client plumbing
// ---------------------------------------------------------------------------

/// One client connection speaking the newline-JSON protocol.
struct Connection {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Connection {
    fn open(addr: &str) -> Result<Connection, CliError> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| CliError::Failed(format!("cannot connect to the daemon at `{addr}`: {e}")))?;
        let read_half = stream
            .try_clone()
            .map_err(|e| CliError::Failed(format!("cannot clone the connection: {e}")))?;
        Ok(Connection {
            reader: BufReader::new(read_half),
            writer: stream,
        })
    }

    fn send(&mut self, value: &Json) -> Result<(), CliError> {
        let mut line = value.render();
        line.push('\n');
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.flush())
            .map_err(|e| CliError::Failed(format!("cannot send to the daemon: {e}")))
    }

    fn read_reply(&mut self) -> Result<Json, CliError> {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| CliError::Failed(format!("cannot read from the daemon: {e}")))?;
        if n == 0 {
            return Err(CliError::Failed(
                "the daemon closed the connection".into(),
            ));
        }
        let reply = Json::parse(line.trim_end())
            .map_err(|e| CliError::Failed(format!("bad reply from the daemon: {e}")))?;
        if reply.get("ok").and_then(Json::as_bool) == Some(false) {
            let message = reply
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unknown error");
            return Err(CliError::Failed(format!("daemon error: {message}")));
        }
        Ok(reply)
    }

    fn request(&mut self, value: &Json) -> Result<Json, CliError> {
        self.send(value)?;
        self.read_reply()
    }
}

/// `--addr HOST:PORT` wins; otherwise `--spool DIR` reads the daemon's
/// discovery file.
fn resolve_addr(parser: &ArgParser, usage: &'static str) -> Result<String, CliError> {
    if let Some(addr) = parser.flag("addr") {
        return Ok(addr.to_owned());
    }
    if let Some(spool) = parser.flag("spool") {
        let path = Path::new(spool).join(ADDR_FILE);
        let text = std::fs::read_to_string(&path).map_err(|e| {
            CliError::Failed(format!(
                "cannot read `{}` (is the daemon running with --spool {spool}?): {e}",
                path.display()
            ))
        })?;
        return Ok(text.trim().to_owned());
    }
    Err(CliError::Usage(format!(
        "need --addr HOST:PORT or --spool DIR to find the daemon\n\n{usage}"
    )))
}

fn field<'a>(reply: &'a Json, key: &str) -> &'a str {
    reply.get(key).and_then(Json::as_str).unwrap_or("?")
}

// ---------------------------------------------------------------------------
// moa submit
// ---------------------------------------------------------------------------

pub fn run_submit(args: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let (audit, filtered) = audit_peeled(args, SUBMIT_USAGE)?;
    let parser = ArgParser::parse(
        &filtered,
        SUBMIT_USAGE,
        &[
            "addr",
            "spool",
            "words",
            "random",
            "seed",
            "seq-file",
            "n-states",
            "depth",
            "rounds",
            "budget",
            "threads",
            "deadline-ms",
            "work-limit",
            "max-frontier",
        ],
        &[
            "wait",
            "baseline",
            "learn",
            "prune-untestable",
            "degrade",
            "degrade-adaptive",
        ],
    )?;
    let circuit = load_circuit(parser.required(0, "bench file")?)?;
    let seq = sequence_from_args(&parser, &circuit, 64)?;
    let mut moa = moa_options_from_args(&parser)?;
    if parser.switch("baseline") {
        moa.backward_implications = false;
    }
    let options = CampaignOptions {
        moa,
        threads: parser.num("threads", 0usize)?,
        prune_untestable: parser.switch("prune-untestable"),
        budget: fault_budget_from_args(&parser)?,
        audit,
        ..CampaignOptions::default()
    };
    let spec = JobSpec::new(&write_bench(&circuit), &seq.to_text(), options)
        .map_err(|e| CliError::Failed(e.to_string()))?;
    let hash = spec.hash();

    let addr = resolve_addr(&parser, SUBMIT_USAGE)?;
    let mut conn = Connection::open(&addr)?;
    let reply = conn.request(&Json::obj(vec![
        ("op", Json::str("submit")),
        ("spec", Json::str(spec.to_text())),
    ]))?;

    match field(&reply, "outcome") {
        "accepted" => writeln!(out, "accepted: job {hash}")?,
        "coalesced" => writeln!(out, "coalesced: job {hash} is already queued or running")?,
        "cached" => {
            writeln!(
                out,
                "cached: job {hash} was already done; verdict digest {}, detected {} of {}, \
                 gate evals {}",
                field(&reply, "digest"),
                reply.get("detected").and_then(Json::as_u64).unwrap_or(0),
                reply.get("total").and_then(Json::as_u64).unwrap_or(0),
                reply.get("gate_evals").and_then(Json::as_u64).unwrap_or(0),
            )?;
            return Ok(());
        }
        "poisoned" => {
            return Err(CliError::Failed(format!(
                "job {hash} is quarantined: {}",
                field(&reply, "reason")
            )));
        }
        "rejected" => {
            return Err(CliError::Failed(format!(
                "rejected: {}; retry after {} ms",
                field(&reply, "reason"),
                reply
                    .get("retry_after_ms")
                    .and_then(Json::as_u64)
                    .unwrap_or(0),
            )));
        }
        other => {
            return Err(CliError::Failed(format!(
                "unexpected submit outcome `{other}`"
            )));
        }
    }

    if !parser.switch("wait") {
        writeln!(
            out,
            "poll with: moa status --addr {addr} --job {hash}"
        )?;
        return Ok(());
    }

    // Stream progress on the same connection until the job is terminal.
    conn.send(&Json::obj(vec![
        ("op", Json::str("watch")),
        ("job", Json::str(hash.to_string())),
    ]))?;
    loop {
        let event = conn.read_reply()?;
        match field(&event, "event") {
            "done" => {
                writeln!(out, "done: job {hash}, verdict digest {}", field(&event, "digest"))?;
                return Ok(());
            }
            "poisoned" => {
                return Err(CliError::Failed(format!(
                    "job {hash} was quarantined while waiting"
                )));
            }
            "interrupted" => {
                return Err(CliError::Failed(format!(
                    "the daemon is draining; job {hash} stays queued and resumes under \
                     the next daemon"
                )));
            }
            name => writeln!(out, "event: {name}")?,
        }
    }
}

// ---------------------------------------------------------------------------
// moa status
// ---------------------------------------------------------------------------

pub fn run_status(args: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let parser = ArgParser::parse(args, STATUS_USAGE, &["addr", "spool", "job"], &[])?;
    let addr = resolve_addr(&parser, STATUS_USAGE)?;
    let mut conn = Connection::open(&addr)?;
    match parser.flag("job") {
        None => {
            let reply = conn.request(&Json::obj(vec![("op", Json::str("status"))]))?;
            let count = |key: &str| reply.get(key).and_then(Json::as_u64).unwrap_or(0);
            writeln!(
                out,
                "queued {} / running {} / done {} / poisoned {}",
                count("queued"),
                count("running"),
                count("done"),
                count("poisoned"),
            )?;
        }
        Some(job) => {
            let reply = conn.request(&Json::obj(vec![
                ("op", Json::str("status")),
                ("job", Json::str(job)),
            ]))?;
            match field(&reply, "state") {
                "done" => writeln!(
                    out,
                    "job {job}: done, verdict digest {}",
                    field(&reply, "digest")
                )?,
                "poisoned" => writeln!(
                    out,
                    "job {job}: poisoned — {}",
                    field(&reply, "reason")
                )?,
                state => writeln!(out, "job {job}: {state}")?,
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use moa_circuits::iscas::S27_BENCH;
    use moa_tpg::random_sequence;

    fn temp_spool(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "moa-cli-serve-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn s27_spec() -> JobSpec {
        let circuit = moa_circuits::iscas::s27();
        let seq = random_sequence(&circuit, 12, 7);
        JobSpec::new(S27_BENCH, &seq.to_text(), CampaignOptions::new()).expect("valid spec")
    }

    /// Full protocol round trip over a real socket, without the accept
    /// loop: submit → watch to completion → status → dedupe → bad requests.
    #[test]
    fn protocol_round_trip_over_a_socket() {
        let dir = temp_spool("proto");
        let server = Arc::new(Server::start(ServeOptions::new(&dir)).expect("start"));
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let handler = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let (stream, _) = listener.accept().expect("accept");
                handle_connection(&server, stream);
            })
        };

        let spec = s27_spec();
        let hash = spec.hash();
        let mut conn = Connection::open(&addr).expect("connect");

        // Malformed requests answer with structured errors, not hangups —
        // the same connection keeps working afterwards.
        let err = conn
            .request(&Json::obj(vec![("op", Json::str("frobnicate"))]))
            .expect_err("unknown op");
        assert!(err.to_string().contains("unknown op"), "{err}");
        let err = conn
            .request(&Json::obj(vec![
                ("op", Json::str("status")),
                ("job", Json::str("zz")),
            ]))
            .expect_err("bad hash");
        assert!(err.to_string().contains("32-hex"), "{err}");
        let err = conn
            .request(&Json::obj(vec![
                ("op", Json::str("submit")),
                ("spec", Json::str("garbage")),
            ]))
            .expect_err("bad spec");
        assert!(err.to_string().contains("daemon error"), "{err}");

        // Submit, then watch to completion on the same connection.
        let reply = conn
            .request(&Json::obj(vec![
                ("op", Json::str("submit")),
                ("spec", Json::str(spec.to_text())),
            ]))
            .expect("submit");
        assert_eq!(field(&reply, "outcome"), "accepted");
        assert_eq!(field(&reply, "job"), hash.to_string());

        conn.send(&Json::obj(vec![
            ("op", Json::str("watch")),
            ("job", Json::str(hash.to_string())),
        ]))
        .expect("watch");
        let digest = loop {
            let event = conn.read_reply().expect("event");
            match field(&event, "event") {
                "done" => break field(&event, "digest").to_owned(),
                "poisoned" => panic!("job must not poison: {event:?}"),
                _ => {}
            }
        };
        assert_eq!(digest.len(), 32, "digest is a 32-hex canon hash: {digest}");

        // Status agrees, and a duplicate submission is served from cache.
        let reply = conn
            .request(&Json::obj(vec![
                ("op", Json::str("status")),
                ("job", Json::str(hash.to_string())),
            ]))
            .expect("status");
        assert_eq!(field(&reply, "state"), "done");
        assert_eq!(field(&reply, "digest"), digest);
        let reply = conn
            .request(&Json::obj(vec![
                ("op", Json::str("submit")),
                ("spec", Json::str(spec.to_text())),
            ]))
            .expect("resubmit");
        assert_eq!(field(&reply, "outcome"), "cached");
        assert_eq!(field(&reply, "digest"), digest);
        assert_eq!(reply.get("gate_evals").and_then(Json::as_u64), Some(0));

        let reply = conn
            .request(&Json::obj(vec![("op", Json::str("status"))]))
            .expect("stats");
        assert_eq!(reply.get("done").and_then(Json::as_u64), Some(1));

        drop(conn);
        handler.join().expect("handler");
        assert_eq!(server.drain().expect("drain"), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_flag_validation_rejects_zeroes_and_missing_spool() {
        let mut out = Vec::new();
        let err = run_serve(&[], &mut out).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        assert!(err.to_string().contains("--spool"), "{err}");

        for (flag, value) in [("--shard-retries", "0"), ("--shard-timeout-ms", "0")] {
            let dir = temp_spool("flags");
            let args: Vec<String> = vec![
                "--spool".into(),
                dir.to_string_lossy().into_owned(),
                flag.into(),
                value.into(),
            ];
            let mut out = Vec::new();
            let err = run_serve(&args, &mut out).unwrap_err();
            assert!(matches!(err, CliError::Usage(_)), "{flag}: {err}");
            assert!(err.to_string().contains("at least 1"), "{flag}: {err}");
        }
    }

    #[test]
    fn clients_without_a_daemon_fail_with_located_errors() {
        let mut out = Vec::new();
        let err = run_status(&[], &mut out).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");

        let dir = temp_spool("noaddr");
        std::fs::create_dir_all(&dir).unwrap();
        let mut out = Vec::new();
        let err = run_status(
            &["--spool".into(), dir.to_string_lossy().into_owned()],
            &mut out,
        )
        .unwrap_err();
        assert!(err.to_string().contains("daemon.addr"), "{err}");
        assert!(err.to_string().contains("is the daemon running"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
