//! `moa work` — an out-of-process shard worker for a `moa serve --dispatch`
//! daemon.
//!
//! The worker is deliberately dumb: it holds no campaign state of its own.
//! It pulls one shard assignment at a time over the newline-JSON protocol,
//! runs it with the same resumable [`run_shard`](moa_core::run_shard) engine
//! the in-process supervisor uses, and streams the finished checkpoint-v2
//! shard file back content-addressed by the job's canonical hash. Everything
//! that makes the system exactly-once — leases, attempt budgets, strict
//! upload validation, the tiling audit at merge — lives in the daemon.
//!
//! Failure handling:
//!
//! - **Daemon unreachable** — reconnect with jittered exponential backoff.
//!   Scratch checkpoints survive, so a re-leased shard resumes rather than
//!   restarts.
//! - **Lease lost mid-shard** (worker was too slow, daemon drained, or the
//!   daemon restarted) — the heartbeat probe doubles as the campaign's
//!   cooperative cancel flag: the engine stops at the next batch boundary,
//!   the partial checkpoint stays in scratch, and the worker goes back to
//!   leasing.
//! - **Shard error** — reported to the daemon via the `fail` op so the
//!   attempt budget can quarantine crash-looping shards instead of letting
//!   them spin forever.

use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use moa_core::JobSpec;
use moa_netlist::full_fault_list;

use crate::commands::serve::{field, Connection, ADDR_FILE};
use crate::jsonx::{hex_encode, Json};
use crate::{signals, ArgParser, CliError};

const WORK_USAGE: &str = "usage: moa work --connect HOST:PORT | --addr HOST:PORT | --spool DIR \
[--scratch DIR] [--worker-id ID] [--max-idle-ms MS]";

/// Socket timeouts for worker connections. Every daemon reply is computed
/// in-memory, so anything slower than this means the daemon is gone.
const READ_TIMEOUT: Duration = Duration::from_secs(30);
const WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// Reconnect backoff: 100 ms doubling to a 5 s ceiling, plus per-worker
/// jitter so a fleet restarted together does not reconnect in lockstep.
const BACKOFF_BASE_MS: u64 = 100;
const BACKOFF_CAP_MS: u64 = 5_000;

pub fn run(args: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let parser = ArgParser::parse(
        args,
        WORK_USAGE,
        &["connect", "addr", "spool", "scratch", "worker-id", "max-idle-ms"],
        &[],
    )?;
    // `--connect` is the documented spelling; `--addr`/`--spool` mirror the
    // other daemon clients for consistency. A spool target is re-resolved on
    // every reconnect: a restarted daemon binds a fresh ephemeral port and
    // rewrites the discovery file, and the worker must follow it there.
    let target = match (parser.flag("connect").or(parser.flag("addr")), parser.flag("spool")) {
        (Some(addr), _) => Target::Fixed(addr.to_owned()),
        (None, Some(spool)) => Target::Spool(PathBuf::from(spool)),
        (None, None) => {
            return Err(CliError::Usage(format!(
                "need --connect/--addr HOST:PORT or --spool DIR to find the daemon\n\n{WORK_USAGE}"
            )));
        }
    };
    let worker_id = match parser.flag("worker-id") {
        Some(id) => id.to_owned(),
        None => format!("worker-{}", std::process::id()),
    };
    let scratch_root = match parser.flag("scratch") {
        Some(dir) => PathBuf::from(dir),
        None => std::env::temp_dir().join(format!("moa-work-{worker_id}")),
    };
    let max_idle = match parser.num("max-idle-ms", 0u64)? {
        0 => None,
        ms => Some(Duration::from_millis(ms)),
    };

    signals::install();
    writeln!(out, "worker {worker_id}: dialing {}", target.describe())?;
    out.flush()?;

    let mut idle_since = Instant::now();
    let mut connect_attempt = 0u32;
    'outer: while !signals::interrupted() {
        if idled_out(max_idle, idle_since) {
            writeln!(out, "worker {worker_id}: idle limit reached; exiting")?;
            return Ok(());
        }
        let (addr, mut conn) = match target.resolve().and_then(|addr| {
            Connection::open_with_timeouts(&addr, READ_TIMEOUT, WRITE_TIMEOUT)
                .map(|conn| (addr, conn))
        }) {
            Ok(pair) => {
                connect_attempt = 0;
                pair
            }
            Err(e) => {
                connect_attempt += 1;
                let wait = backoff_ms(&worker_id, connect_attempt);
                writeln!(out, "worker {worker_id}: {e}; retrying in {wait} ms")?;
                out.flush()?;
                sleep_interruptible(Duration::from_millis(wait));
                continue;
            }
        };
        writeln!(out, "worker {worker_id}: connected to {addr}")?;
        out.flush()?;

        while !signals::interrupted() {
            if idled_out(max_idle, idle_since) {
                writeln!(out, "worker {worker_id}: idle limit reached; exiting")?;
                return Ok(());
            }
            let reply = match conn.request(&Json::obj(vec![
                ("op", Json::str("lease")),
                ("worker", Json::str(worker_id.clone())),
            ])) {
                Ok(reply) => reply,
                Err(e) => {
                    // Daemon errors (an armed failpoint, a restart mid-reply)
                    // and transport errors both land here: drop the
                    // connection and re-dial with backoff.
                    writeln!(out, "worker {worker_id}: lease failed ({e}); reconnecting")?;
                    out.flush()?;
                    sleep_interruptible(Duration::from_millis(backoff_ms(&worker_id, 1)));
                    continue 'outer;
                }
            };
            match field(&reply, "outcome") {
                "draining" => {
                    writeln!(out, "worker {worker_id}: daemon is draining; exiting")?;
                    return Ok(());
                }
                "idle" => {
                    let wait = reply
                        .get("retry_after_ms")
                        .and_then(Json::as_u64)
                        .unwrap_or(500)
                        .min(1_000);
                    sleep_interruptible(Duration::from_millis(wait));
                }
                "assigned" => {
                    if run_assignment(&mut conn, &addr, &worker_id, &scratch_root, &reply, out)
                        .is_err()
                    {
                        // The upload/report path lost the daemon; the lease
                        // expires server-side and the shard is re-dispatched.
                        sleep_interruptible(Duration::from_millis(backoff_ms(&worker_id, 1)));
                        continue 'outer;
                    }
                    idle_since = Instant::now();
                }
                other => {
                    return Err(CliError::Failed(format!(
                        "unexpected lease outcome `{other}` from the daemon"
                    )));
                }
            }
        }
    }
    writeln!(out, "worker {worker_id}: interrupted; exiting")?;
    Ok(())
}

/// Where to find the daemon.
enum Target {
    /// An explicit `--connect`/`--addr HOST:PORT`.
    Fixed(String),
    /// A `--spool DIR` whose `daemon.addr` discovery file is re-read on
    /// every reconnect, so the worker follows a restarted daemon to its new
    /// ephemeral port.
    Spool(PathBuf),
}

impl Target {
    fn describe(&self) -> String {
        match self {
            Target::Fixed(addr) => addr.clone(),
            Target::Spool(dir) => format!("the daemon spooling at {}", dir.display()),
        }
    }

    fn resolve(&self) -> Result<String, CliError> {
        match self {
            Target::Fixed(addr) => Ok(addr.clone()),
            Target::Spool(dir) => {
                let path = dir.join(ADDR_FILE);
                let text = std::fs::read_to_string(&path).map_err(|e| {
                    CliError::Failed(format!(
                        "cannot read `{}` (is the daemon up?): {e}",
                        path.display()
                    ))
                })?;
                Ok(text.trim().to_owned())
            }
        }
    }
}

/// Runs one leased shard and reports the outcome. `Err` means the control
/// connection itself died (the caller reconnects); shard-level problems are
/// reported in-band via the `fail` op and return `Ok`.
fn run_assignment(
    conn: &mut Connection,
    addr: &str,
    worker_id: &str,
    scratch_root: &std::path::Path,
    reply: &Json,
    out: &mut dyn std::io::Write,
) -> Result<(), CliError> {
    let job = field(reply, "job").to_owned();
    let Some(shard) = reply
        .get("shard")
        .and_then(Json::as_u64)
        .and_then(|v| usize::try_from(v).ok())
    else {
        return Err(CliError::Failed("assignment without a shard id".into()));
    };
    let shards = reply
        .get("shards")
        .and_then(Json::as_u64)
        .and_then(|v| usize::try_from(v).ok())
        .unwrap_or(1);
    let heartbeat_ms = reply
        .get("heartbeat_ms")
        .and_then(Json::as_u64)
        .unwrap_or(2_000);
    writeln!(
        out,
        "worker {worker_id}: leased shard {shard}/{shards} of job {job}"
    )?;
    out.flush()?;

    // The spec travels with the assignment; re-deriving its content address
    // proves the daemon handed us what the hash promises.
    let spec = match JobSpec::parse(field(reply, "spec")) {
        Ok(spec) if spec.hash().to_string() == job => spec,
        Ok(spec) => {
            let message = format!(
                "assignment spec hashes to {} but was addressed as {job}",
                spec.hash()
            );
            return report_failure(conn, worker_id, &job, shard, &message, out);
        }
        Err(e) => {
            let message = format!("assignment spec does not parse: {e}");
            return report_failure(conn, worker_id, &job, shard, &message, out);
        }
    };

    let scratch = scratch_root.join(format!("job-{job}"));
    let probe = HeartbeatProbe::new(addr, worker_id, &job, shard, heartbeat_ms);
    let mut base = spec.options.clone();
    base.cancel = {
        let probe = std::sync::Arc::new(probe);
        Some(std::sync::Arc::new(move || probe.lost()))
    };

    let faults = full_fault_list(&spec.circuit);
    match moa_core::run_shard(&spec.circuit, &spec.seq, &faults, &base, shards, shard, &scratch) {
        Ok(_) => {
            let path = moa_core::shard_path(&scratch, shard);
            let bytes = std::fs::read(&path).map_err(|e| {
                CliError::Failed(format!("cannot read finished shard {}: {e}", path.display()))
            })?;
            let upload = conn.request(&Json::obj(vec![
                ("op", Json::str("complete")),
                ("worker", Json::str(worker_id)),
                ("job", Json::str(job.clone())),
                ("shard", Json::num(shard as u64)),
                ("data", Json::str(hex_encode(&bytes))),
            ]))?;
            let outcome = field(&upload, "outcome");
            writeln!(
                out,
                "worker {worker_id}: shard {shard} of job {job} uploaded ({outcome})"
            )?;
            out.flush()?;
            // Accepted, duplicate (someone beat us to it), or rejected
            // (stale attempt): in every case this scratch copy is spent.
            let _ = std::fs::remove_file(&path);
            Ok(())
        }
        Err(moa_core::Error::Interrupted { completed, total }) => {
            // Lease lost or operator signal: the partial checkpoint stays in
            // scratch so a future lease of this shard resumes, not restarts.
            writeln!(
                out,
                "worker {worker_id}: shard {shard} of job {job} interrupted at \
                 {completed}/{total}; abandoning the lease"
            )?;
            out.flush()?;
            Ok(())
        }
        Err(e) => report_failure(conn, worker_id, &job, shard, &e.to_string(), out),
    }
}

/// Tells the daemon a shard attempt failed so its attempt budget advances.
fn report_failure(
    conn: &mut Connection,
    worker_id: &str,
    job: &str,
    shard: usize,
    message: &str,
    out: &mut dyn std::io::Write,
) -> Result<(), CliError> {
    writeln!(
        out,
        "worker {worker_id}: shard {shard} of job {job} failed: {message}"
    )?;
    out.flush()?;
    conn.request(&Json::obj(vec![
        ("op", Json::str("fail")),
        ("worker", Json::str(worker_id)),
        ("job", Json::str(job)),
        ("shard", Json::num(shard as u64)),
        ("error", Json::str(message)),
    ]))?;
    Ok(())
}

/// The campaign's cooperative cancel flag doubled as a lease heartbeat.
///
/// The engine polls the cancel probe at every batch boundary; this probe
/// rate-limits those polls down to the daemon's advertised heartbeat
/// interval and sends `{"op":"heartbeat"}` on its own connection (the main
/// connection is idle but borrowed while `run_shard` runs). A `lost` reply,
/// a dead daemon, or an operator signal all read as "cancel": the engine
/// checkpoints and returns [`Error::Interrupted`](moa_core::Error).
struct HeartbeatProbe {
    addr: String,
    worker: String,
    job: String,
    shard: usize,
    every: Duration,
    state: Mutex<ProbeState>,
}

struct ProbeState {
    conn: Option<Connection>,
    last_beat: Instant,
    lost: bool,
}

impl HeartbeatProbe {
    fn new(addr: &str, worker: &str, job: &str, shard: usize, heartbeat_ms: u64) -> HeartbeatProbe {
        HeartbeatProbe {
            addr: addr.to_owned(),
            worker: worker.to_owned(),
            job: job.to_owned(),
            shard,
            every: Duration::from_millis(heartbeat_ms.max(1)),
            state: Mutex::new(ProbeState {
                conn: None,
                last_beat: Instant::now(),
                lost: false,
            }),
        }
    }

    /// `true` once the lease is gone (or the process is shutting down) —
    /// i.e. the value the campaign's cancel probe wants.
    fn lost(&self) -> bool {
        if signals::interrupted() {
            return true;
        }
        let Ok(mut state) = self.state.lock() else {
            return true; // a panicked beat poisons toward safety: stop
        };
        if state.lost {
            return true;
        }
        if state.last_beat.elapsed() < self.every {
            return false;
        }
        state.last_beat = Instant::now();
        if let Ok(held) = self.beat(&mut state) {
            state.lost = !held;
        } else {
            // The daemon is unreachable: the lease will expire there and
            // the shard will be re-dispatched, so keeping this attempt
            // running could only waste work. Stop and checkpoint.
            state.conn = None;
            state.lost = true;
        }
        state.lost
    }

    fn beat(&self, state: &mut ProbeState) -> Result<bool, CliError> {
        if state.conn.is_none() {
            state.conn = Some(Connection::open_with_timeouts(
                &self.addr,
                READ_TIMEOUT,
                WRITE_TIMEOUT,
            )?);
        }
        let conn = state.conn.as_mut().expect("just installed");
        let reply = conn.request(&Json::obj(vec![
            ("op", Json::str("heartbeat")),
            ("worker", Json::str(self.worker.clone())),
            ("job", Json::str(self.job.clone())),
            ("shard", Json::num(self.shard as u64)),
        ]))?;
        Ok(field(&reply, "lease") == "held")
    }
}

fn idled_out(max_idle: Option<Duration>, idle_since: Instant) -> bool {
    max_idle.is_some_and(|limit| idle_since.elapsed() >= limit)
}

/// Exponential backoff with deterministic per-worker jitter (an fnv/murmur
/// style mix of the worker id and attempt count — no clock, no RNG dep), so
/// a fleet killed together does not hammer the daemon back in lockstep.
fn backoff_ms(worker_id: &str, attempt: u32) -> u64 {
    let exp = BACKOFF_BASE_MS
        .saturating_mul(1u64 << attempt.saturating_sub(1).min(10))
        .min(BACKOFF_CAP_MS);
    let mut x = 0xcbf2_9ce4_8422_2325u64;
    for b in worker_id.bytes() {
        x = (x ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
    }
    x ^= u64::from(attempt);
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    exp + x % 250
}

/// Sleeps in small slices so a SIGINT lands promptly.
fn sleep_interruptible(total: Duration) {
    let slice = Duration::from_millis(25);
    let deadline = Instant::now() + total;
    while Instant::now() < deadline && !signals::interrupted() {
        std::thread::sleep(slice.min(deadline.saturating_duration_since(Instant::now())));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_caps_and_jitters_per_worker() {
        assert!(backoff_ms("w", 1) >= BACKOFF_BASE_MS);
        assert!(backoff_ms("w", 20) <= BACKOFF_CAP_MS + 250);
        let a = backoff_ms("worker-a", 3);
        let b = backoff_ms("worker-b", 3);
        assert!(backoff_ms("worker-a", 3) == a, "jitter is deterministic");
        assert!(a != b, "distinct workers jitter apart");
    }

    #[test]
    fn usage_errors_without_a_daemon_address() {
        let mut out = Vec::new();
        let err = run(&[], &mut out).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        assert!(err.to_string().contains("--addr"), "{err}");
    }
}
