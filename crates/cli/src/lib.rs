//! The `moa` command-line fault simulator.
//!
//! Wraps the workspace into a tool a test engineer can point at an ISCAS-89
//! `.bench` file:
//!
//! ```text
//! moa stats s27.bench
//! moa faults s27.bench --collapse
//! moa sim s27.bench --random 16 --seed 7
//! moa campaign s27.bench --random 64 --both
//! moa explain s27.bench --fault G10/sa1 --random 32
//! moa tpg s27.bench --max-length 64 --compact
//! moa gen --inputs 6 --outputs 3 --ffs 5 --gates 60 --seed 1 -o out.bench
//! moa suite s208 s298
//! ```
//!
//! All command logic lives in this library (the binary is a thin wrapper), so
//! the integration tests drive the real command paths in-process.

mod args;
pub mod commands;
mod jsonx;
mod signals;

use std::fmt;
use std::io::Write;

pub use args::ArgParser;

/// A CLI failure: bad usage or a failing operation. The process exit code is
/// 2 for usage errors and 1 for operational errors.
#[derive(Debug)]
pub enum CliError {
    /// Wrong flags/arguments; the message includes usage help.
    Usage(String),
    /// The operation itself failed (I/O, parse error, …).
    Failed(String),
}

impl CliError {
    /// The conventional process exit code for this error.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Failed(_) => 1,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::Failed(m) => write!(f, "error: {m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Failed(e.to_string())
    }
}

impl From<moa_netlist::NetlistError> for CliError {
    fn from(e: moa_netlist::NetlistError) -> Self {
        CliError::Failed(e.to_string())
    }
}

/// Top-level usage text.
pub const USAGE: &str = "\
moa — fault simulation under the multiple observation time approach

USAGE:
    moa <COMMAND> [ARGS]

COMMANDS:          (<bench> is a .bench file path, or suite:NAME for an embedded circuit)
    stats     <bench>                circuit statistics
    analyze   <bench>... | --suite [NAME...] [--json]
              static lints, learned implications, untestability screening
    faults    <bench> [--collapse]   stuck-at fault list
    sim       <bench> --words W,...  | --random L [--seed S]   three-valued simulation
    campaign  <bench> [--random L] [--seed S] [--baseline|--proposed|--both]
              [--n-states N] [--depth K] [--rounds R] [--threads T] [--verbose]
              [--deadline-ms MS] [--work-limit W]     per-fault budgets
              [--checkpoint FILE [--checkpoint-every N] [--resume]]
              [--audit[=N]]                audit detections by certificate replay
              [--learn] [--prune-untestable]   static learning / untestability pruning
              [--degrade] [--degrade-adaptive]   budget-trip degradation ladder
              [--shards N [--shard-id K | --merge] [--shard-dir DIR]
               [--shard-retries R] [--shard-timeout-ms MS]]   crash-safe sharded campaign
    tpg       <bench> [--max-length L] [--seed S] [--compact]  deterministic test generation
    exact     <bench> [--random L] [--seed S]    exhaustive restricted-MOA check (small circuits)
    explain   <bench> --fault NET/saX            per-fault pipeline trace
    extract   <bench> --nets NAME[,NAME...]      cut a fan-in cone to a new bench file
    gen       --inputs N --outputs N --ffs N --gates N [--seed S] [-o FILE]
    serve     --spool DIR [--addr HOST:PORT] [--workers N] [--queue-depth N]
              [--job-attempts N] [--shards N] [--shard-retries R] [--shard-timeout-ms MS]
              [--dispatch [--lease-ms MS] [--heartbeat-ms MS] [--dispatch-attempts N]]
              campaign daemon: bounded admission, dedupe cache, poison quarantine,
              crash recovery from the spool; first SIGINT/SIGTERM drains gracefully;
              with --dispatch, shards run on remote `moa work` processes under
              lease-based at-least-once delivery
    work      --connect HOST:PORT | --addr HOST:PORT | --spool DIR
              [--scratch DIR] [--worker-id ID] [--max-idle-ms MS]
              shard worker: leases shards from a --dispatch daemon, heartbeats,
              streams finished shard checkpoints back, reconnects with backoff
    submit    <bench> [--addr HOST:PORT | --spool DIR] [--random L [--seed S] |
              --seq-file F | --words p,...] [--wait] [campaign tuning flags]
              submit a campaign job to a daemon (prints the job's canonical hash)
    status    [--addr HOST:PORT | --spool DIR] [--job HASH]
              daemon queue stats, or one job's state and verdict digest
    suite     [NAME...] [--audit] [--degrade] [--work-limit W]
              run the paper's Table-2 stand-in suite
    bench     [NAME...] [--quick] [--threads T] [--out FILE] [--check FILE]
              benchmark the screened/cone-bounded engines against the legacy path
    help                             show this message
";

/// Dispatches a full command line (without the program name) and writes the
/// report to `out`.
///
/// # Errors
///
/// Returns [`CliError`] on bad usage or failing operations; the caller maps
/// it to an exit code via [`CliError::exit_code`].
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let Some(command) = args.first() else {
        return Err(CliError::Usage(USAGE.to_owned()));
    };
    let rest = &args[1..];
    match command.as_str() {
        "stats" => commands::stats::run(rest, out),
        "analyze" => commands::analyze::run(rest, out),
        "faults" => commands::faults::run(rest, out),
        "sim" => commands::sim::run(rest, out),
        "campaign" => commands::campaign::run(rest, out),
        "tpg" => commands::tpg::run(rest, out),
        "exact" => commands::exact::run(rest, out),
        "explain" => commands::explain::run(rest, out),
        "extract" => commands::extract::run(rest, out),
        "gen" => commands::gen::run(rest, out),
        "serve" => commands::serve::run_serve(rest, out),
        "submit" => commands::serve::run_submit(rest, out),
        "status" => commands::serve::run_status(rest, out),
        "work" => commands::work::run(rest, out),
        "suite" => commands::suite::run(rest, out),
        "bench" => commands::bench::run(rest, out),
        "help" | "--help" | "-h" => {
            writeln!(out, "{USAGE}")?;
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown command `{other}`\n\n{USAGE}"
        ))),
    }
}

/// Loads a circuit from a `.bench` file path.
pub(crate) fn load_circuit(path: &str) -> Result<moa_netlist::Circuit, CliError> {
    // `suite:NAME` loads an embedded suite circuit without needing a .bench
    // file on disk (CI smoke jobs lean on this). The built circuit is
    // normalized through the `.bench` serialization so it is bit-identical
    // (net ids, fault enumeration order) whether it reaches a simulation
    // directly, from a saved file, or over the daemon's wire format —
    // verdict digests then compare equal across all three paths.
    if let Some(name) = path.strip_prefix("suite:") {
        let entry = moa_circuits::suite::entry(name)
            .ok_or_else(|| CliError::Failed(format!("no embedded suite circuit `{name}`")))?;
        let text = moa_netlist::write_bench(&entry.build());
        return moa_netlist::parse_bench(&text)
            .map_err(|e| CliError::Failed(format!("suite circuit `{name}` round trip: {e}")));
    }
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Failed(format!("cannot read `{path}`: {e}")))?;
    moa_netlist::parse_bench(&text)
        .map_err(|e| CliError::Failed(format!("cannot parse `{path}`: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_command_is_usage_error() {
        let mut out = Vec::new();
        let err = run(&["frobnicate".to_owned()], &mut out).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn help_prints_usage() {
        let mut out = Vec::new();
        run(&["help".to_owned()], &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("campaign"));
    }

    #[test]
    fn suite_scheme_loads_embedded_circuits() {
        let mut out = Vec::new();
        run(&["stats".to_owned(), "suite:s298".to_owned()], &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("s298"), "{text}");

        let err = load_circuit("suite:s9999").unwrap_err();
        assert!(err.to_string().contains("no embedded suite circuit"), "{err}");
    }

    #[test]
    fn empty_args_is_usage_error() {
        let mut out = Vec::new();
        assert!(run(&[], &mut out).is_err());
    }

    #[test]
    fn error_display() {
        let e = CliError::Failed("boom".into());
        assert_eq!(e.to_string(), "error: boom");
        assert_eq!(e.exit_code(), 1);
    }
}

#[cfg(test)]
mod workflow_tests {
    use super::*;

    /// End-to-end workflow: generate a circuit, generate and save a
    /// deterministic sequence, then run a campaign from the saved file.
    #[test]
    fn gen_tpg_campaign_round_trip() {
        let dir = std::env::temp_dir().join("moa-cli-workflow-test");
        std::fs::create_dir_all(&dir).unwrap();
        let bench = dir.join("c.bench").to_string_lossy().into_owned();
        let seqf = dir.join("c.seq").to_string_lossy().into_owned();

        let mut out = Vec::new();
        run(
            &[
                "gen".into(),
                "--inputs".into(),
                "5".into(),
                "--outputs".into(),
                "3".into(),
                "--ffs".into(),
                "4".into(),
                "--gates".into(),
                "40".into(),
                "--seed".into(),
                "9".into(),
                "-o".into(),
                bench.clone(),
            ],
            &mut out,
        )
        .unwrap();

        let mut out = Vec::new();
        run(
            &[
                "tpg".into(),
                bench.clone(),
                "--max-length".into(),
                "32".into(),
                "--save".into(),
                seqf.clone(),
            ],
            &mut out,
        )
        .unwrap();
        assert!(String::from_utf8(out).unwrap().contains("saved"));

        let mut out = Vec::new();
        run(
            &[
                "campaign".into(),
                bench,
                "--seq-file".into(),
                seqf,
                "--both".into(),
            ],
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("proposed (backward implications)"));
        assert!(text.contains("detected total"));
    }

    #[test]
    fn seq_file_width_mismatch_fails() {
        let dir = std::env::temp_dir().join("moa-cli-workflow-test2");
        std::fs::create_dir_all(&dir).unwrap();
        let bench = dir.join("s27.bench").to_string_lossy().into_owned();
        std::fs::write(&bench, moa_circuits::iscas::S27_BENCH).unwrap();
        let seqf = dir.join("bad.seq").to_string_lossy().into_owned();
        std::fs::write(&seqf, "10\n01\n").unwrap();
        let mut out = Vec::new();
        let err = run(
            &["sim".into(), bench, "--seq-file".into(), seqf],
            &mut out,
        )
        .unwrap_err();
        assert!(err.to_string().contains("inputs"));
    }
}
