//! SIGINT/SIGTERM handling for the long-running commands (`moa serve`,
//! `moa campaign`), via raw `signal(2)` FFI — the workspace takes no
//! dependency on the `libc` crate.
//!
//! The contract is two-stage:
//!
//! 1. The **first** signal only sets an atomic flag. Long-running code
//!    polls it through [`cancel_flag`] (threaded into campaigns as their
//!    [`CancelFlag`](moa_core::CancelFlag) probe) and shuts down
//!    gracefully: campaigns checkpoint at the next batch boundary, the
//!    daemon drains its queue.
//! 2. The **second** signal force-quits via `_exit` (async-signal-safe,
//!    no atexit hooks) with the shell convention `128 + signo` — the
//!    escape hatch when graceful shutdown itself is stuck.

use std::os::raw::c_int;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Once};

use moa_core::CancelFlag;

/// Signals received so far (only ever incremented from the handler).
static RECEIVED: AtomicUsize = AtomicUsize::new(0);
static INSTALL: Once = Once::new();

const SIGINT: c_int = 2;
const SIGTERM: c_int = 15;

#[allow(unsafe_code)]
extern "C" {
    fn signal(signum: c_int, handler: usize) -> usize;
    fn _exit(status: c_int) -> !;
}

/// The handler: async-signal-safe by construction (one atomic RMW, and on
/// the second signal a direct `_exit`).
extern "C" fn on_signal(signo: c_int) {
    let prior = RECEIVED.fetch_add(1, Ordering::SeqCst);
    if prior >= 1 {
        // Second signal: the graceful path did not finish (or the user is
        // impatient). Force-quit the conventional way: 130 for SIGINT.
        #[allow(unsafe_code)]
        unsafe {
            _exit(128 + signo)
        };
    }
}

/// Installs the two-stage handler for SIGINT and SIGTERM. Idempotent;
/// installation failures are ignored (the command still works, it just
/// dies un-gracefully on a signal, which is the status quo ante).
pub fn install() {
    INSTALL.call_once(|| {
        let handler = on_signal as extern "C" fn(c_int) as usize;
        #[allow(unsafe_code)]
        // SAFETY: `on_signal` is async-signal-safe (see its doc comment)
        // and has the exact type `signal(2)` expects.
        unsafe {
            let _ = signal(SIGINT, handler);
            let _ = signal(SIGTERM, handler);
        }
    });
}

/// Whether a first signal has arrived (the graceful-shutdown request).
pub fn interrupted() -> bool {
    RECEIVED.load(Ordering::SeqCst) > 0
}

/// A campaign cancel probe backed by the signal flag: the campaign
/// checkpoints and stops at the next batch boundary once a signal lands.
pub fn cancel_flag() -> CancelFlag {
    Arc::new(interrupted)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_is_idempotent_and_flag_starts_clear() {
        install();
        install();
        // No signal has been delivered to the test process.
        assert!(!interrupted());
        assert!(!cancel_flag()());
    }
}
