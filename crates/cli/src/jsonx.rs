//! A minimal JSON value, parser and writer for the daemon's newline-delimited
//! protocol (the workspace stays dependency-free, so no serde).
//!
//! Scope: exactly what the `moa serve` protocol needs — objects, arrays,
//! strings with full escape handling (bench/sequence texts ride inside JSON
//! strings, so `\n` and `\uXXXX` must round-trip), booleans, null, and
//! numbers as `f64` (the protocol only carries counts and millisecond
//! hints, all far below 2^53).

use std::fmt::Write as FmtWrite;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (the protocol never needs more than 53-bit integers).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An integer value.
    pub fn num(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// An object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            #[allow(clippy::cast_possible_truncation)]
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Renders onto one line (no trailing newline; the protocol adds it).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document, rejecting trailing garbage.
    ///
    /// # Errors
    ///
    /// A human-readable message with the byte offset of the problem.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(format!("trailing garbage at byte {}", parser.pos));
        }
        Ok(value)
    }
}

/// Lowercase-hex encodes binary payloads for the protocol (shard files
/// ride inside JSON strings; hex keeps the framing trivially line-safe).
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let _ = write!(out, "{b:02x}");
    }
    out
}

/// Decodes [`hex_encode`]'s output (either case accepted).
///
/// # Errors
///
/// A message naming the offending byte offset, or the odd length.
pub fn hex_decode(text: &str) -> Result<Vec<u8>, String> {
    let bytes = text.as_bytes();
    if !bytes.len().is_multiple_of(2) {
        return Err(format!("hex payload has odd length {}", bytes.len()));
    }
    let nibble = |b: u8, at: usize| -> Result<u8, String> {
        match b {
            b'0'..=b'9' => Ok(b - b'0'),
            b'a'..=b'f' => Ok(b - b'a' + 10),
            b'A'..=b'F' => Ok(b - b'A' + 10),
            _ => Err(format!("bad hex digit `{}` at byte {at}", char::from(b))),
        }
    };
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for (i, pair) in bytes.chunks_exact(2).enumerate() {
        out.push((nibble(pair[0], 2 * i)? << 4) | nibble(pair[1], 2 * i + 1)?);
    }
    Ok(out)
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}",
                char::from(b),
                self.pos
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected `{}` at byte {}",
                char::from(other),
                self.pos
            )),
            None => Err("unexpected end of input".into()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("bad number at byte {start}"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }

    /// Parses a string. Non-escape bytes are copied verbatim (the input is
    /// `&str`, so raw runs between escapes are valid UTF-8 already).
    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut buf: Vec<u8> = Vec::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return String::from_utf8(buf)
                        .map_err(|_| "string is not valid UTF-8".into());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_owned())?;
                    self.pos += 1;
                    match escape {
                        b'"' => buf.push(b'"'),
                        b'\\' => buf.push(b'\\'),
                        b'/' => buf.push(b'/'),
                        b'b' => buf.push(0x08),
                        b'f' => buf.push(0x0c),
                        b'n' => buf.push(b'\n'),
                        b'r' => buf.push(b'\r'),
                        b't' => buf.push(b'\t'),
                        b'u' => {
                            let mut code = self.hex4()?;
                            // Surrogate pair: a high surrogate must be
                            // followed by `\uDC00..DFFF`.
                            if (0xD800..0xDC00).contains(&code) {
                                if self.peek() != Some(b'\\') {
                                    return Err("lone high surrogate".into());
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err("lone high surrogate".into());
                                }
                                self.pos += 1;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err("bad low surrogate".into());
                                }
                                code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            }
                            let c = char::from_u32(code)
                                .ok_or_else(|| format!("bad \\u escape {code:#x}"))?;
                            let mut utf8 = [0u8; 4];
                            buf.extend_from_slice(c.encode_utf8(&mut utf8).as_bytes());
                        }
                        other => {
                            return Err(format!("bad escape `\\{}`", char::from(other)));
                        }
                    }
                }
                Some(_) => {
                    buf.push(self.bytes[self.pos]);
                    self.pos += 1;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos.checked_add(4).filter(|&e| e <= self.bytes.len());
        let end = end.ok_or_else(|| "truncated \\u escape".to_owned())?;
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "bad \\u escape".to_owned())?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u escape `{hex}`"))?;
        self.pos = end;
        Ok(code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "42", "-7", "3.5", "\"hi\""] {
            let value = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&value.render()).unwrap(), value, "{text}");
        }
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(Json::parse("-7").unwrap().as_u64(), None);
        assert_eq!(Json::parse("3.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("true").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn strings_escape_and_unescape() {
        let nasty = "bench\ntext\twith \"quotes\", back\\slash, nul\u{0}, and α→β";
        let rendered = Json::str(nasty).render();
        assert!(!rendered.contains('\n'), "one line: {rendered}");
        assert_eq!(Json::parse(&rendered).unwrap().as_str(), Some(nasty));
        // Escapes produced by other writers parse too.
        assert_eq!(
            Json::parse("\"a\\u0041\\/\\b\\f\"").unwrap().as_str(),
            Some("aA/\u{8}\u{c}")
        );
        // Surrogate pair for 𝄞 (U+1D11E).
        assert_eq!(
            Json::parse("\"\\ud834\\udd1e\"").unwrap().as_str(),
            Some("𝄞")
        );
    }

    #[test]
    fn nested_structures_round_trip() {
        let value = Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("jobs", Json::Arr(vec![Json::num(1), Json::str("two"), Json::Null])),
            ("nested", Json::obj(vec![("k", Json::num(9))])),
        ]);
        let text = value.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, value);
        assert_eq!(back.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            back.get("nested").and_then(|n| n.get("k")).and_then(Json::as_u64),
            Some(9)
        );
        assert!(back.get("missing").is_none());
    }

    #[test]
    fn malformed_inputs_error_with_position() {
        for bad in [
            "", "{", "[1,", "{\"a\":}", "nul", "\"open", "{\"a\" 1}", "1 2",
            "\"\\q\"", "\"\\u12\"", "\"\\ud834\"", "01a",
        ] {
            assert!(Json::parse(bad).is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn hex_round_trips_and_rejects_garbage() {
        for bytes in [&b""[..], &b"\x00\xff\x10moa"[..], &[0u8; 300][..]] {
            let text = hex_encode(bytes);
            assert!(text.bytes().all(|b| b.is_ascii_hexdigit()));
            assert_eq!(hex_decode(&text).unwrap(), bytes);
        }
        assert_eq!(hex_decode("DEADbeef").unwrap(), vec![0xde, 0xad, 0xbe, 0xef]);
        assert!(hex_decode("abc").unwrap_err().contains("odd length"));
        assert!(hex_decode("zz").unwrap_err().contains("bad hex digit"));
        assert!(hex_decode("0g").unwrap_err().contains("at byte 1"));
    }

    #[test]
    fn whitespace_is_tolerated() {
        let value = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").unwrap();
        assert_eq!(value.get("a"), Some(&Json::Arr(vec![Json::num(1), Json::num(2)])));
    }
}
