//! Process-level tests of the `moa` binary (exit codes, stdout/stderr
//! separation) — the library-level command tests cover the logic; these
//! cover the executable contract.

use std::process::Command;

fn moa() -> Command {
    Command::new(env!("CARGO_BIN_EXE_moa"))
}

fn s27_path() -> String {
    let dir = std::env::temp_dir().join("moa-bin-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("s27.bench");
    std::fs::write(&path, moa_circuits::iscas::S27_BENCH).unwrap();
    path.to_string_lossy().into_owned()
}

#[test]
fn help_exits_zero() {
    let out = moa().arg("help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn unknown_command_exits_two() {
    let out = moa().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn missing_file_exits_one() {
    let out = moa().args(["stats", "/no/such/file.bench"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn stats_pipeline_works_end_to_end() {
    let out = moa().args(["stats", &s27_path()]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("circuit : s27"));
    assert!(out.stderr.is_empty(), "reports go to stdout");
}

#[test]
fn campaign_resume_from_missing_checkpoint_exits_one() {
    let missing = std::env::temp_dir()
        .join("moa-bin-test")
        .join("no-such.checkpoint");
    let _ = std::fs::remove_file(&missing);
    let out = moa()
        .args([
            "campaign",
            &s27_path(),
            "--random",
            "8",
            "--proposed",
            "--checkpoint",
            &missing.to_string_lossy(),
            "--resume",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "clean failure, not a panic");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("checkpoint"), "{err}");
    assert!(!err.contains("panicked"), "{err}");
}

/// Only with the `failpoints` feature: the chaos registry is process-global,
/// so this runs against the binary (its own process) rather than in-process,
/// keeping the library tests deterministic.
#[cfg(feature = "failpoints")]
#[test]
fn campaign_chaos_seed_runs_and_reports_fired_sites() {
    let out = moa()
        .args([
            "campaign",
            &s27_path(),
            "--random",
            "16",
            "--seed",
            "7",
            "--proposed",
            "--chaos-seed",
            "42",
        ])
        .output()
        .unwrap();
    let text = String::from_utf8_lossy(&out.stdout);
    let err = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "{err}");
    assert!(text.contains("chaos:"), "{text}");
}

#[test]
fn campaign_resume_heals_a_corrupt_interior_record_with_a_warning() {
    // A torn/garbage body record no longer aborts the resume: the record is
    // skipped with a located warning and its fault is re-simulated.
    let dir = std::env::temp_dir().join("moa-bin-test");
    std::fs::create_dir_all(&dir).unwrap();
    let corrupt = dir.join("corrupt.checkpoint");
    std::fs::write(&corrupt, "moa-checkpoint v1\ncircuit s27\nfaults 32\nseq-len 8\nfault garbage\n")
        .unwrap();
    let out = moa()
        .args([
            "campaign",
            &s27_path(),
            "--random",
            "8",
            "--seed",
            "7",
            "--proposed",
            "--checkpoint",
            &corrupt.to_string_lossy(),
            "--resume",
        ])
        .output()
        .unwrap();
    let text = String::from_utf8_lossy(&out.stdout);
    let err = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "corruption is healed, not fatal: {err}");
    assert!(text.contains("skipped corrupt checkpoint record"), "{text}");
    assert!(text.contains("line 5"), "the warning locates the damage: {text}");
}

#[test]
fn campaign_resume_from_damaged_header_exits_one() {
    // Header damage is still a hard error — the file cannot be trusted to
    // describe this campaign at all.
    let dir = std::env::temp_dir().join("moa-bin-test");
    std::fs::create_dir_all(&dir).unwrap();
    let corrupt = dir.join("bad-header.checkpoint");
    std::fs::write(&corrupt, "not-a-checkpoint\n").unwrap();
    let out = moa()
        .args([
            "campaign",
            &s27_path(),
            "--random",
            "8",
            "--seed",
            "7",
            "--proposed",
            "--checkpoint",
            &corrupt.to_string_lossy(),
            "--resume",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "clean failure, not a panic");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("checkpoint") || err.contains("campaign"), "{err}");
    assert!(!err.contains("panicked"), "{err}");
}

#[test]
fn campaign_checkpoint_resume_round_trip_via_binary() {
    let dir = std::env::temp_dir().join("moa-bin-test");
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("roundtrip.checkpoint");
    let _ = std::fs::remove_file(&ckpt);
    let ckpt = ckpt.to_string_lossy().into_owned();
    let args = |resume: bool| {
        let mut v = vec![
            "campaign".to_owned(),
            s27_path(),
            "--random".to_owned(),
            "16".to_owned(),
            "--seed".to_owned(),
            "7".to_owned(),
            "--proposed".to_owned(),
            "--checkpoint".to_owned(),
            ckpt.clone(),
        ];
        if resume {
            v.push("--resume".to_owned());
        }
        v
    };
    let first = moa().args(args(false)).output().unwrap();
    assert!(first.status.success());
    let second = moa().args(args(true)).output().unwrap();
    assert!(second.status.success());
    let strip = |bytes: &[u8]| {
        String::from_utf8_lossy(bytes)
            .lines()
            .filter(|l| !l.contains('('))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&first.stdout), strip(&second.stdout));
}

#[test]
fn campaign_resume_tolerates_torn_final_checkpoint_line() {
    // A checkpoint cut off mid-record (kill -9 during a non-atomic copy, a
    // filesystem without rename atomicity) must not brick the resume: the
    // partial final line is dropped and its fault re-simulated.
    let dir = std::env::temp_dir().join("moa-bin-test-torn");
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("torn.checkpoint");
    let _ = std::fs::remove_file(&ckpt);
    let ckpt_str = ckpt.to_string_lossy().into_owned();
    let args = |resume: bool| {
        let mut v = vec![
            "campaign".to_owned(),
            s27_path(),
            "--random".to_owned(),
            "16".to_owned(),
            "--seed".to_owned(),
            "7".to_owned(),
            "--proposed".to_owned(),
            "--checkpoint".to_owned(),
            ckpt_str.clone(),
        ];
        if resume {
            v.push("--resume".to_owned());
        }
        v
    };

    let full = moa().args(args(false)).output().unwrap();
    assert!(full.status.success());

    // Emulate the torn write: truncate the finished checkpoint mid-way
    // through its final fault line, leaving no trailing newline.
    let text = std::fs::read_to_string(&ckpt).unwrap();
    assert!(text.ends_with('\n'));
    let cut = text.trim_end_matches('\n');
    assert!(cut.lines().last().unwrap().starts_with("fault "));
    std::fs::write(&ckpt, &cut[..cut.len() - 4]).unwrap();

    let resumed = moa().args(args(true)).output().unwrap();
    assert!(
        resumed.status.success(),
        "resume must survive a torn final line: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let strip = |bytes: &[u8]| {
        String::from_utf8_lossy(bytes)
            .lines()
            .filter(|l| !l.contains('('))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        strip(&full.stdout),
        strip(&resumed.stdout),
        "the re-simulated fault must reproduce the full run's report"
    );
}

#[test]
fn campaign_audit_flag_via_binary() {
    let out = moa()
        .args([
            "campaign",
            &s27_path(),
            "--random",
            "16",
            "--seed",
            "7",
            "--proposed",
            "--audit",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("auditing detections"), "{text}");
    assert!(!text.contains("AUDIT FAILED"), "{text}");
}

/// Keeps only the lines whose content must be identical between a sharded
/// and an unsharded run: verdict and summary lines, not timings or the
/// shard-orchestration narration.
fn verdict_lines(bytes: &[u8]) -> String {
    String::from_utf8_lossy(bytes)
        .lines()
        .filter(|l| {
            !l.is_empty()
                && !l.contains('(')
                && !l.starts_with("supervised")
                && !l.starts_with("merged")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn sharded_campaign_via_binary_is_bit_identical_to_unsharded() {
    let dir = std::env::temp_dir().join("moa-bin-test-shards");
    let _ = std::fs::remove_dir_all(&dir);
    let dir_str = dir.to_string_lossy().into_owned();
    let common = [
        "campaign",
        &s27_path(),
        "--random",
        "24",
        "--seed",
        "7",
        "--proposed",
        "--audit",
    ];

    let plain = moa().args(common).output().unwrap();
    assert!(plain.status.success(), "{}", String::from_utf8_lossy(&plain.stderr));

    let sharded = moa()
        .args(common)
        .args(["--shards", "4", "--shard-dir", &dir_str])
        .output()
        .unwrap();
    assert!(
        sharded.status.success(),
        "{}",
        String::from_utf8_lossy(&sharded.stderr)
    );
    let text = String::from_utf8_lossy(&sharded.stdout);
    assert!(text.contains("supervised 4 shard(s)"), "{text}");
    assert!(text.contains("re-audited"), "{text}");
    assert_eq!(
        verdict_lines(&plain.stdout),
        verdict_lines(&sharded.stdout),
        "the merged sharded campaign must reproduce the unsharded verdicts"
    );

    // The shard files survive the run, so a standalone --merge reassembles
    // the same result without re-simulating anything.
    let merged = moa()
        .args(common)
        .args(["--shards", "4", "--shard-dir", &dir_str, "--merge"])
        .output()
        .unwrap();
    assert!(
        merged.status.success(),
        "{}",
        String::from_utf8_lossy(&merged.stderr)
    );
    assert_eq!(verdict_lines(&plain.stdout), verdict_lines(&merged.stdout));

    // Corrupt one record in one shard file: the merge must refuse with a
    // located checksum error rather than quietly mis-merging.
    let victim = dir.join("shard-2.ckpt");
    let mut bytes = std::fs::read(&victim).unwrap();
    let at = bytes.len() - 20;
    bytes[at] ^= 0x40;
    std::fs::write(&victim, &bytes).unwrap();
    let refused = moa()
        .args(common)
        .args(["--shards", "4", "--shard-dir", &dir_str, "--merge"])
        .output()
        .unwrap();
    assert_eq!(refused.status.code(), Some(1), "corrupt merge is a clean failure");
    let err = String::from_utf8_lossy(&refused.stderr);
    assert!(err.contains("checksum mismatch"), "{err}");
    assert!(err.contains("shard-2.ckpt"), "the error locates the file: {err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn campaign_on_s27_detects_faults() {
    let out = moa()
        .args([
            "campaign",
            &s27_path(),
            "--random",
            "32",
            "--seed",
            "7",
            "--proposed",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("detected total"));
}
