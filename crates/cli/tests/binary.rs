//! Process-level tests of the `moa` binary (exit codes, stdout/stderr
//! separation) — the library-level command tests cover the logic; these
//! cover the executable contract.

use std::process::Command;

fn moa() -> Command {
    Command::new(env!("CARGO_BIN_EXE_moa"))
}

fn s27_path() -> String {
    let dir = std::env::temp_dir().join("moa-bin-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("s27.bench");
    std::fs::write(&path, moa_circuits::iscas::S27_BENCH).unwrap();
    path.to_string_lossy().into_owned()
}

#[test]
fn help_exits_zero() {
    let out = moa().arg("help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn unknown_command_exits_two() {
    let out = moa().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn missing_file_exits_one() {
    let out = moa().args(["stats", "/no/such/file.bench"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn stats_pipeline_works_end_to_end() {
    let out = moa().args(["stats", &s27_path()]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("circuit : s27"));
    assert!(out.stderr.is_empty(), "reports go to stdout");
}

#[test]
fn campaign_on_s27_detects_faults() {
    let out = moa()
        .args([
            "campaign",
            &s27_path(),
            "--random",
            "32",
            "--seed",
            "7",
            "--proposed",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("detected total"));
}
