//! Process-level tests of the `moa serve` daemon and its clients: the
//! crash-recovery, backpressure and graceful-shutdown contracts that only
//! mean anything across real process boundaries (SIGKILL, SIGTERM, SIGINT,
//! exit codes). The in-process engine and protocol tests live in
//! `moa_core::serve` and `commands::serve`; these tests prove the same
//! properties survive the executable.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn moa() -> Command {
    Command::new(env!("CARGO_BIN_EXE_moa"))
}

/// A fresh scratch directory per test (tests run in parallel).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("moa-serve-bin-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_default()
}

fn wait_for(what: &str, timeout: Duration, mut cond: impl FnMut() -> bool) {
    let start = Instant::now();
    while !cond() {
        assert!(start.elapsed() < timeout, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Starts a daemon on an ephemeral port, logging to `log`, and waits until
/// it is accepting connections (the discovery file exists and the log says
/// so). Any stale discovery file is removed first so the wait cannot be
/// satisfied by a previous daemon's leftovers.
fn start_daemon(spool: &Path, log: &Path, extra: &[&str]) -> Child {
    let addr_file = spool.join("daemon.addr");
    let _ = std::fs::remove_file(&addr_file);
    let logf = std::fs::File::create(log).unwrap();
    let errf = logf.try_clone().unwrap();
    let child = moa()
        .arg("serve")
        .arg("--spool")
        .arg(spool)
        .args(extra)
        .stdout(Stdio::from(logf))
        .stderr(Stdio::from(errf))
        .spawn()
        .unwrap();
    wait_for("daemon startup", Duration::from_secs(30), || {
        addr_file.exists() && read(log).contains("listening on")
    });
    child
}

/// Sends `sig` (e.g. "-TERM", "-INT") via kill(1) — std has no way to send
/// anything but SIGKILL.
fn send_signal(child: &Child, sig: &str) {
    let status = Command::new("kill")
        .arg(sig)
        .arg(child.id().to_string())
        .status()
        .unwrap();
    assert!(status.success(), "kill {sig} failed");
}

/// A job big enough that a kill a few hundred ms after admission is
/// guaranteed to land mid-simulation (s298's full fault list over 2048
/// vectors runs for seconds, not milliseconds).
const JOB: [&str; 5] = ["suite:s298", "--random", "2048", "--seed", "7"];

fn submit(spool: &Path, job: &[&str]) -> std::process::Output {
    moa()
        .arg("submit")
        .args(job)
        .arg("--spool")
        .arg(spool)
        .output()
        .unwrap()
}

/// Extracts the 32-hex job hash from `accepted: job <hash>` output.
fn job_hash(stdout: &[u8]) -> String {
    let text = String::from_utf8_lossy(stdout);
    let line = text
        .lines()
        .find(|l| l.starts_with("accepted: job "))
        .unwrap_or_else(|| panic!("no acceptance line in: {text}"));
    let hash = line.trim_start_matches("accepted: job ").trim().to_owned();
    assert_eq!(hash.len(), 32, "{line}");
    hash
}

/// Extracts the digest from a campaign summary's parenthesis-free
/// `verdict digest      : <hash>` line.
fn summary_digest(stdout: &[u8]) -> String {
    let text = String::from_utf8_lossy(stdout);
    let line = text
        .lines()
        .find(|l| l.contains("verdict digest"))
        .unwrap_or_else(|| panic!("no digest line in: {text}"));
    line.split(':').nth(1).unwrap().trim().to_owned()
}

/// The acceptance test for the tentpole: SIGKILL the daemon mid-campaign,
/// restart it on the same spool, and the job is re-adopted and finishes
/// with a verdict digest bit-identical to a direct `moa campaign` run of
/// the same request. A duplicate submission is then answered from the
/// cache with zero gate evaluations, and SIGTERM drains the daemon to a
/// clean exit 0.
#[test]
fn sigkill_recovery_is_bit_identical_and_dedupes() {
    let dir = scratch("recover");
    let spool = dir.join("spool");
    let spool_s = spool.to_string_lossy().into_owned();

    let log1 = dir.join("daemon-1.log");
    let mut daemon1 = start_daemon(&spool, &log1, &[]);

    let accepted = submit(&spool, &JOB);
    assert!(
        accepted.status.success(),
        "{}",
        String::from_utf8_lossy(&accepted.stderr)
    );
    let hash = job_hash(&accepted.stdout);

    // Let the worker get properly into the simulation, then pull the plug.
    std::thread::sleep(Duration::from_millis(400));
    daemon1.kill().unwrap();
    daemon1.wait().unwrap();

    // A fresh daemon on the same spool must adopt the orphaned job...
    let log2 = dir.join("daemon-2.log");
    let daemon2 = start_daemon(&spool, &log2, &[]);
    assert!(
        read(&log2).contains(&format!("re-adopted job {hash}")),
        "recovery must announce the adoption: {}",
        read(&log2)
    );

    // ...and finish it. Poll the status client until the job is done.
    let mut digest = String::new();
    wait_for("the re-adopted job to finish", Duration::from_mins(2), || {
        let out = moa()
            .args(["status", "--spool", &spool_s, "--job", &hash])
            .output()
            .unwrap();
        let text = String::from_utf8_lossy(&out.stdout).into_owned();
        assert!(
            !text.contains("poisoned"),
            "the job must not be quarantined: {text}"
        );
        if let Some(rest) = text.split("done, verdict digest ").nth(1) {
            digest = rest.trim().to_owned();
            true
        } else {
            false
        }
    });
    assert_eq!(digest.len(), 32, "{digest}");

    // Duplicate submission: served from the cache, zero simulation.
    let dup = submit(&spool, &JOB);
    assert!(dup.status.success());
    let text = String::from_utf8_lossy(&dup.stdout);
    assert!(text.contains("cached: job"), "{text}");
    assert!(text.contains(&format!("verdict digest {digest}")), "{text}");
    assert!(text.contains("gate evals 0"), "{text}");

    // The daemon's digest equals a direct, unsharded, uninterrupted
    // campaign of the same request (the daemon simulates the full fault
    // list, so the direct run must skip collapsing).
    let direct = moa()
        .arg("campaign")
        .args(JOB)
        .args(["--proposed", "--no-collapse"])
        .output()
        .unwrap();
    assert!(
        direct.status.success(),
        "{}",
        String::from_utf8_lossy(&direct.stderr)
    );
    assert_eq!(
        summary_digest(&direct.stdout),
        digest,
        "crash-recovered daemon result must be bit-identical to a direct run"
    );

    // Graceful shutdown: SIGTERM drains and exits 0.
    send_signal(&daemon2, "-TERM");
    let mut daemon2 = daemon2;
    let status = daemon2.wait().unwrap();
    assert_eq!(status.code(), Some(0), "drain is a clean exit: {}", read(&log2));
    assert!(read(&log2).contains("drained;"), "{}", read(&log2));
    assert!(
        !spool.join("daemon.addr").exists(),
        "the discovery file is removed on drain"
    );
}

/// Backpressure: with a queue depth of 1 and one worker, a second distinct
/// submission is rejected with a retry-after hint and exit code 1 — not
/// queued unboundedly, not dropped silently.
#[test]
fn overload_is_rejected_with_retry_after() {
    let dir = scratch("overload");
    let spool = dir.join("spool");
    let log = dir.join("daemon.log");
    let daemon = start_daemon(&spool, &log, &["--queue-depth", "1", "--workers", "1"]);

    let first = submit(&spool, &JOB);
    assert!(
        first.status.success(),
        "{}",
        String::from_utf8_lossy(&first.stderr)
    );
    job_hash(&first.stdout);

    // A *different* request (other seed) while the queue is full.
    let second = submit(&spool, &["suite:s298", "--random", "2048", "--seed", "8"]);
    assert_eq!(second.status.code(), Some(1), "rejection is exit 1");
    let err = String::from_utf8_lossy(&second.stderr);
    assert!(err.contains("rejected: queue full"), "{err}");
    assert!(err.contains("retry after"), "{err}");
    assert!(err.contains("1000 ms"), "{err}");

    // The same request again is a coalesce, not a rejection: dedupe wins
    // over backpressure.
    let again = submit(&spool, &JOB);
    assert!(again.status.success(), "{}", String::from_utf8_lossy(&again.stderr));
    assert!(
        String::from_utf8_lossy(&again.stdout).contains("coalesced: job"),
        "{}",
        String::from_utf8_lossy(&again.stdout)
    );

    // Drain with the job still in flight: the daemon interrupts it at a
    // batch boundary, leaves it spooled for the next daemon, and exits 0.
    send_signal(&daemon, "-TERM");
    let mut daemon = daemon;
    let status = daemon.wait().unwrap();
    assert_eq!(status.code(), Some(0), "{}", read(&log));
    assert!(read(&log).contains("drained;"), "{}", read(&log));
}

/// Satellite: the first SIGINT to a plain `moa campaign` checkpoints,
/// prints the resume hint, and exits 0; the resumed run reproduces the
/// uninterrupted run's verdict digest bit-for-bit.
#[test]
fn campaign_sigint_checkpoints_and_resume_reproduces_the_digest() {
    let dir = scratch("sigint");
    let ckpt = dir.join("interrupted.checkpoint");
    let ckpt_s = ckpt.to_string_lossy().into_owned();
    let common = [
        "campaign",
        "suite:s298",
        "--random",
        "2048",
        "--seed",
        "7",
        "--proposed",
    ];

    // Reference: the same campaign, never interrupted.
    let clean = moa().args(common).output().unwrap();
    assert!(clean.status.success());
    let clean_digest = summary_digest(&clean.stdout);

    let child = moa()
        .args(common)
        .args(["--checkpoint", &ckpt_s])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    std::thread::sleep(Duration::from_millis(500));
    send_signal(&child, "-INT");
    let out = child.wait_with_output().unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "a graceful interrupt is not a failure: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("interrupted by signal"), "{text}");
    assert!(text.contains("resume with --resume"), "{text}");
    assert!(ckpt.exists(), "progress must be checkpointed");

    let resumed = moa()
        .args(common)
        .args(["--checkpoint", &ckpt_s, "--resume"])
        .output()
        .unwrap();
    assert!(
        resumed.status.success(),
        "{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(
        summary_digest(&resumed.stdout),
        clean_digest,
        "interrupt + resume must reproduce the uninterrupted verdicts"
    );
}
