//! Process-level chaos tests of the distributed dispatch path: a `moa serve
//! --dispatch` daemon with real `moa work` processes, killed with SIGKILL at
//! the worst moments. The lease engine's unit tests live in
//! `moa_core::dispatch` and the protocol tests in `commands::serve`; these
//! tests prove the end-to-end contract across process boundaries:
//! at-least-once dispatch plus strict merge equals exactly-once results,
//! bit-identical to a single-process `moa campaign` run.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn moa() -> Command {
    Command::new(env!("CARGO_BIN_EXE_moa"))
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("moa-dispatch-bin-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_default()
}

fn wait_for(what: &str, timeout: Duration, mut cond: impl FnMut() -> bool) {
    let start = Instant::now();
    while !cond() {
        assert!(start.elapsed() < timeout, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn start_daemon(spool: &Path, log: &Path, extra: &[&str]) -> Child {
    let addr_file = spool.join("daemon.addr");
    let _ = std::fs::remove_file(&addr_file);
    let logf = std::fs::File::create(log).unwrap();
    let errf = logf.try_clone().unwrap();
    let child = moa()
        .arg("serve")
        .arg("--spool")
        .arg(spool)
        .args(extra)
        .stdout(Stdio::from(logf))
        .stderr(Stdio::from(errf))
        .spawn()
        .unwrap();
    wait_for("daemon startup", Duration::from_secs(30), || {
        addr_file.exists() && read(log).contains("listening on")
    });
    child
}

/// Starts a worker discovering the daemon through the spool (so it follows
/// a restarted daemon to its new port), with its own scratch directory.
fn start_worker(spool: &Path, dir: &Path, id: &str) -> Child {
    let log = dir.join(format!("{id}.log"));
    let logf = std::fs::File::create(&log).unwrap();
    let errf = logf.try_clone().unwrap();
    moa()
        .arg("work")
        .arg("--spool")
        .arg(spool)
        .args(["--worker-id", id])
        .arg("--scratch")
        .arg(dir.join(id))
        .stdout(Stdio::from(logf))
        .stderr(Stdio::from(errf))
        .spawn()
        .unwrap()
}

fn send_signal(child: &Child, sig: &str) {
    let status = Command::new("kill")
        .arg(sig)
        .arg(child.id().to_string())
        .status()
        .unwrap();
    assert!(status.success(), "kill {sig} failed");
}

/// Big enough that SIGKILLs a few hundred ms after admission land
/// mid-shard (s298's full fault list over 2048 vectors runs for seconds).
const JOB: [&str; 5] = ["suite:s298", "--random", "2048", "--seed", "7"];

fn submit(spool: &Path, job: &[&str]) -> std::process::Output {
    moa()
        .arg("submit")
        .args(job)
        .arg("--spool")
        .arg(spool)
        .output()
        .unwrap()
}

fn job_hash(stdout: &[u8]) -> String {
    let text = String::from_utf8_lossy(stdout);
    let line = text
        .lines()
        .find(|l| l.starts_with("accepted: job "))
        .unwrap_or_else(|| panic!("no acceptance line in: {text}"));
    let hash = line.trim_start_matches("accepted: job ").trim().to_owned();
    assert_eq!(hash.len(), 32, "{line}");
    hash
}

fn summary_digest(stdout: &[u8]) -> String {
    let text = String::from_utf8_lossy(stdout);
    let line = text
        .lines()
        .find(|l| l.contains("verdict digest"))
        .unwrap_or_else(|| panic!("no digest line in: {text}"));
    line.split(':').nth(1).unwrap().trim().to_owned()
}

fn job_status(spool: &Path, hash: &str) -> String {
    let out = moa()
        .arg("status")
        .arg("--spool")
        .arg(spool)
        .args(["--job", hash])
        .output()
        .unwrap();
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// The tentpole acceptance soak: a dispatch daemon feeding two worker
/// processes is SIGKILLed together with one of the workers mid-campaign. A
/// fresh daemon re-adopts the job, the surviving worker re-discovers it
/// through the spool, a replacement worker joins, and the campaign
/// completes with a verdict digest bit-identical to a direct single-process
/// `moa campaign` run — at-least-once dispatch, exactly-once results.
#[test]
fn dispatch_survives_sigkill_of_worker_and_daemon_bit_identically() {
    let dir = scratch("chaos");
    let spool = dir.join("spool");
    let dispatch_flags = [
        "--dispatch",
        "--shards",
        "4",
        "--lease-ms",
        "2000",
        "--heartbeat-ms",
        "500",
        "--dispatch-attempts",
        "10",
    ];

    let log1 = dir.join("daemon-1.log");
    let daemon1 = start_daemon(&spool, &log1, &dispatch_flags);
    assert!(
        read(&log1).contains("dispatch mode"),
        "daemon must announce dispatch mode: {}",
        read(&log1)
    );

    let doomed = start_worker(&spool, &dir, "doomed");
    let survivor = start_worker(&spool, &dir, "survivor");

    let accepted = submit(&spool, &JOB);
    assert!(
        accepted.status.success(),
        "{}",
        String::from_utf8_lossy(&accepted.stderr)
    );
    let hash = job_hash(&accepted.stdout);

    // Let both workers lease into the simulation, then kill one worker AND
    // the daemon — the worst compound failure short of losing the spool.
    wait_for("workers to lease shards", Duration::from_secs(30), || {
        read(&dir.join("doomed.log")).contains("leased shard")
            && read(&dir.join("survivor.log")).contains("leased shard")
    });
    std::thread::sleep(Duration::from_millis(300));
    send_signal(&doomed, "-KILL");
    let mut doomed = doomed;
    doomed.wait().unwrap();
    let mut daemon1 = daemon1;
    daemon1.kill().unwrap();
    daemon1.wait().unwrap();

    // Restart the daemon on the same spool: it re-adopts the job and
    // re-validates whatever complete shard files made it to disk. The
    // surviving worker follows the discovery file to the new port, and a
    // replacement worker joins the fleet.
    let log2 = dir.join("daemon-2.log");
    let daemon2 = start_daemon(&spool, &log2, &dispatch_flags);
    assert!(
        read(&log2).contains(&format!("re-adopted job {hash}")),
        "recovery must announce the adoption: {}",
        read(&log2)
    );
    let replacement = start_worker(&spool, &dir, "replacement");

    let mut digest = String::new();
    wait_for("the dispatched job to finish", Duration::from_mins(3), || {
        let text = job_status(&spool, &hash);
        assert!(
            !text.contains("poisoned"),
            "the job must not be quarantined: {text}"
        );
        if let Some(rest) = text.split("done, verdict digest ").nth(1) {
            digest = rest.trim().to_owned();
            true
        } else {
            false
        }
    });
    assert_eq!(digest.len(), 32, "{digest}");

    // Exactly-once: the distributed result is bit-identical to a direct,
    // single-process, unsharded campaign of the same request.
    let direct = moa()
        .arg("campaign")
        .args(JOB)
        .args(["--proposed", "--no-collapse"])
        .output()
        .unwrap();
    assert!(
        direct.status.success(),
        "{}",
        String::from_utf8_lossy(&direct.stderr)
    );
    assert_eq!(
        summary_digest(&direct.stdout),
        digest,
        "chaos-soaked dispatch must be bit-identical to a direct run"
    );
    assert!(
        !read(&log2).contains("AuditFailed"),
        "no audit failures: {}",
        read(&log2)
    );

    // Drain the daemon cleanly; the workers are then torn down hard (their
    // graceful draining exit is covered by the lease-engine tests).
    send_signal(&daemon2, "-TERM");
    let mut daemon2 = daemon2;
    assert_eq!(daemon2.wait().unwrap().code(), Some(0), "{}", read(&log2));
    let mut survivor = survivor;
    let mut replacement = replacement;
    let _ = survivor.kill();
    let _ = replacement.kill();
    let _ = survivor.wait();
    let _ = replacement.wait();
}

/// Attempt budgets keep crash-looping shards from cycling forever: with a
/// budget of one attempt, a worker SIGKILLed mid-shard quarantines its
/// shard on lease expiry, and the job poisons with a report naming the
/// failed shard — reported, never dropped or silently retried.
#[test]
fn exhausted_attempt_budget_quarantines_and_reports_the_shard() {
    let dir = scratch("budget");
    let spool = dir.join("spool");
    let log = dir.join("daemon.log");
    let daemon = start_daemon(
        &spool,
        &log,
        &[
            "--dispatch",
            "--shards",
            "2",
            "--lease-ms",
            "1000",
            "--heartbeat-ms",
            "300",
            "--dispatch-attempts",
            "1",
            "--job-attempts",
            "1",
        ],
    );

    let victim = start_worker(&spool, &dir, "victim");
    let survivor = start_worker(&spool, &dir, "survivor");

    let accepted = submit(&spool, &JOB);
    assert!(
        accepted.status.success(),
        "{}",
        String::from_utf8_lossy(&accepted.stderr)
    );
    let hash = job_hash(&accepted.stdout);

    // Both workers lease (two shards, one each); kill one mid-shard. Its
    // lease expires against an exhausted budget of one attempt, so the
    // shard quarantines instead of re-dispatching to the survivor.
    wait_for("workers to lease shards", Duration::from_secs(30), || {
        read(&dir.join("victim.log")).contains("leased shard")
            && read(&dir.join("survivor.log")).contains("leased shard")
    });
    std::thread::sleep(Duration::from_millis(300));
    send_signal(&victim, "-KILL");
    let mut victim = victim;
    victim.wait().unwrap();

    wait_for("the job to poison", Duration::from_mins(3), || {
        job_status(&spool, &hash).contains("poisoned")
    });
    let text = job_status(&spool, &hash);
    assert!(text.contains("quarantined"), "{text}");
    assert!(text.contains("lease expired on worker"), "{text}");
    assert!(
        text.contains("budget of 1 attempt(s) is exhausted"),
        "{text}"
    );

    send_signal(&daemon, "-TERM");
    let mut daemon = daemon;
    assert_eq!(daemon.wait().unwrap().code(), Some(0), "{}", read(&log));
    let mut survivor = survivor;
    let _ = survivor.kill();
    let _ = survivor.wait();
}
