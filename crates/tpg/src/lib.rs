//! Test-sequence sources for the fault-simulation experiments.
//!
//! Two generators:
//!
//! - [`random_sequence`] — the seeded random sequences of the paper's
//!   Table-2 experiments;
//! - [`greedy::generate_sequence`] — a deterministic coverage-directed
//!   generator standing in for HITEC (the closed historic ATPG used in the
//!   paper's closing experiment). It grows a sequence by sampling candidate
//!   extensions and keeping the one that detects the most new faults under
//!   conventional simulation, then [`compact::compact_sequence`] trims it.
//!   Like HITEC's output, the result is a short deterministic sequence
//!   oriented at fault coverage — which is what the paper's proposed-vs-\[4]
//!   comparison needs (both procedures run on the *same* sequence).
//!
//! # Example
//!
//! ```
//! use moa_circuits::teaching::resettable_toggle;
//! use moa_tpg::random_sequence;
//!
//! let c = resettable_toggle();
//! let seq = random_sequence(&c, 32, 42);
//! assert_eq!(seq.len(), 32);
//! assert_eq!(seq.num_inputs(), c.num_inputs());
//! ```

pub mod compact;
pub mod greedy;

use moa_netlist::Circuit;
use moa_sim::TestSequence;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Generates a seeded uniformly random binary sequence of `len` patterns for
/// `circuit`.
pub fn random_sequence(circuit: &Circuit, len: usize, seed: u64) -> TestSequence {
    let mut rng = StdRng::seed_from_u64(seed);
    TestSequence::random(circuit.num_inputs(), len, &mut rng)
}

/// Conventionally simulates `faults` under `seq` and returns the detection
/// flags (shared helper for the generators and harnesses).
pub fn conventional_coverage(
    circuit: &Circuit,
    seq: &TestSequence,
    faults: &[moa_netlist::Fault],
) -> Vec<bool> {
    let good = moa_sim::simulate(circuit, seq, None);
    faults
        .iter()
        .map(|f| moa_sim::run_conventional(circuit, seq, &good, f).0.is_some())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use moa_circuits::teaching::resettable_toggle;
    use moa_netlist::full_fault_list;

    #[test]
    fn random_sequence_is_deterministic() {
        let c = resettable_toggle();
        assert_eq!(random_sequence(&c, 16, 1), random_sequence(&c, 16, 1));
        assert_ne!(random_sequence(&c, 16, 1), random_sequence(&c, 16, 2));
    }

    #[test]
    fn coverage_flags_match_fault_count() {
        let c = resettable_toggle();
        let faults = full_fault_list(&c);
        let seq = random_sequence(&c, 16, 3);
        let flags = conventional_coverage(&c, &seq, &faults);
        assert_eq!(flags.len(), faults.len());
        assert!(flags.iter().any(|&d| d), "random patterns detect something");
    }
}
