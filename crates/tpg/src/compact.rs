//! Static compaction of test sequences.
//!
//! Two classic moves, both preserving the conventionally detected fault set:
//!
//! - **tail truncation** — drop trailing patterns that contribute no
//!   detection (binary search over the shortest prefix with full coverage);
//! - **single-pattern removal** — greedily try deleting one pattern at a
//!   time, keeping deletions that do not lose coverage.

use moa_logic::V3;
use moa_netlist::{Circuit, Fault};
use moa_sim::TestSequence;

use crate::conventional_coverage;

/// Options for [`compact_sequence`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactOptions {
    /// Attempt per-pattern removal after tail truncation (quadratic in the
    /// sequence length × fault count; disable for large runs).
    pub remove_single_patterns: bool,
}

impl Default for CompactOptions {
    fn default() -> Self {
        CompactOptions {
            remove_single_patterns: true,
        }
    }
}

/// Compacts `seq` while preserving its conventionally detected fault set for
/// `faults`. Returns the compacted sequence and its detection flags.
///
/// # Example
///
/// ```
/// use moa_circuits::teaching::resettable_toggle;
/// use moa_netlist::full_fault_list;
/// use moa_tpg::compact::{compact_sequence, CompactOptions};
/// use moa_tpg::{conventional_coverage, random_sequence};
///
/// let c = resettable_toggle();
/// let faults = full_fault_list(&c);
/// let seq = random_sequence(&c, 64, 5);
/// let before = conventional_coverage(&c, &seq, &faults);
/// let (compacted, after) = compact_sequence(&c, &seq, &faults, &CompactOptions::default());
/// assert!(compacted.len() <= seq.len());
/// assert_eq!(before, after, "coverage is preserved");
/// ```
pub fn compact_sequence(
    circuit: &Circuit,
    seq: &TestSequence,
    faults: &[Fault],
    options: &CompactOptions,
) -> (TestSequence, Vec<bool>) {
    compact_sequence_by(seq, options, |candidate| {
        conventional_coverage(circuit, candidate, faults)
    })
}

/// Compacts `seq` while preserving coverage under an arbitrary per-fault
/// criterion: `coverage` maps a candidate sequence to detection flags, and
/// the compaction never loses a flag that the full sequence had.
///
/// This is how a multiple-observation-time-preserving compaction is built:
/// pass a closure that runs the MOA campaign instead of conventional
/// simulation (see the `moa_compaction` integration test in the workspace
/// root — `moa-tpg` itself stays independent of `moa-core`).
///
/// Tail truncation assumes the criterion is monotone in sequence length
/// (detections never disappear when patterns are appended), which holds for
/// both conventional and restricted-MOA detection.
pub fn compact_sequence_by(
    seq: &TestSequence,
    options: &CompactOptions,
    coverage: impl Fn(&TestSequence) -> Vec<bool>,
) -> (TestSequence, Vec<bool>) {
    let target = coverage(seq);
    let covers = |candidate: &TestSequence| -> bool {
        let flags = coverage(candidate);
        flags
            .iter()
            .zip(&target)
            .all(|(now, want)| *now || !*want)
    };

    // Tail truncation by binary search: coverage of a prefix is monotone in
    // its length under the single-observation-time criterion.
    let mut lo = 0usize;
    let mut hi = seq.len();
    while lo < hi {
        let mid = usize::midpoint(lo, hi);
        let mut prefix = seq.clone();
        prefix.truncate(mid);
        if covers(&prefix) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let mut current = seq.clone();
    current.truncate(lo);

    if options.remove_single_patterns {
        let mut u = 0;
        while u < current.len() {
            let candidate = without_pattern(&current, u);
            if covers(&candidate) {
                current = candidate;
            } else {
                u += 1;
            }
        }
    }

    let flags = coverage(&current);
    (current, flags)
}

fn without_pattern(seq: &TestSequence, u: usize) -> TestSequence {
    let patterns: Vec<Vec<V3>> = seq
        .iter()
        .enumerate()
        .filter(|&(k, _)| k != u)
        .map(|(_, p)| p.to_vec())
        .collect();
    TestSequence::new(seq.num_inputs(), patterns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_sequence;
    use moa_circuits::teaching::{counter, resettable_toggle};
    use moa_netlist::full_fault_list;

    #[test]
    fn compaction_preserves_coverage() {
        let c = counter(3);
        let faults = full_fault_list(&c);
        let seq = random_sequence(&c, 48, 17);
        let before: usize = conventional_coverage(&c, &seq, &faults)
            .iter()
            .filter(|&&d| d)
            .count();
        let (compacted, flags) =
            compact_sequence(&c, &seq, &faults, &CompactOptions::default());
        let after = flags.iter().filter(|&&d| d).count();
        assert!(after >= before, "coverage must not shrink");
        assert!(compacted.len() <= seq.len());
    }

    #[test]
    fn tail_truncation_only() {
        let c = resettable_toggle();
        let faults = full_fault_list(&c);
        let seq = random_sequence(&c, 64, 23);
        let (fast, _) = compact_sequence(
            &c,
            &seq,
            &faults,
            &CompactOptions {
                remove_single_patterns: false,
            },
        );
        let (full, _) = compact_sequence(&c, &seq, &faults, &CompactOptions::default());
        assert!(full.len() <= fast.len());
    }

    #[test]
    fn empty_sequence_stays_empty() {
        let c = resettable_toggle();
        let faults = full_fault_list(&c);
        let seq = TestSequence::new(c.num_inputs(), Vec::new());
        let (compacted, _) = compact_sequence(&c, &seq, &faults, &CompactOptions::default());
        assert!(compacted.is_empty());
    }
}
