//! Greedy coverage-directed sequence generation (HITEC stand-in).
//!
//! The generator maintains the good-machine state and every remaining fault's
//! faulty-machine state at the end of the sequence built so far, so that
//! evaluating a candidate extension costs only `extension × gates` per fault
//! instead of resimulating from time 0.

use moa_logic::V3;
use moa_netlist::{Circuit, Fault};
use moa_sim::{compute_frame, frame_next_state, frame_outputs, TestSequence};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Options for [`generate_sequence`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GreedyOptions {
    /// Hard cap on the generated sequence length.
    pub max_length: usize,
    /// Random candidate extensions evaluated per growth step.
    pub candidates_per_step: usize,
    /// Length of each candidate extension.
    pub extension_length: usize,
    /// Stop after this many consecutive steps without a new detection.
    pub stale_steps: usize,
    /// RNG seed (the generator is fully deterministic per seed).
    pub seed: u64,
}

impl Default for GreedyOptions {
    fn default() -> Self {
        GreedyOptions {
            max_length: 256,
            candidates_per_step: 8,
            extension_length: 8,
            stale_steps: 4,
            seed: 0xC0FFEE,
        }
    }
}

/// The result of [`generate_sequence`].
#[derive(Debug, Clone)]
pub struct GreedyResult {
    /// The generated test sequence.
    pub sequence: TestSequence,
    /// Per-fault conventional detection flags (parallel to the input list).
    pub detected: Vec<bool>,
}

impl GreedyResult {
    /// Conventional fault coverage of the generated sequence.
    pub fn coverage(&self) -> f64 {
        if self.detected.is_empty() {
            return 0.0;
        }
        self.detected.iter().filter(|&&d| d).count() as f64 / self.detected.len() as f64
    }
}

/// Incremental simulation state of one machine (good or faulty).
#[derive(Clone)]
struct MachineState {
    state: Vec<V3>,
}

/// Grows a deterministic, coverage-oriented test sequence for `faults`.
///
/// Each step samples [`GreedyOptions::candidates_per_step`] random extensions
/// of [`GreedyOptions::extension_length`] patterns, scores each by the number
/// of still-undetected faults it detects (conventional simulation, continued
/// incrementally from the current machine states), keeps the best, and stops
/// when the length cap is hit or coverage stays flat for
/// [`GreedyOptions::stale_steps`] steps.
///
/// # Example
///
/// ```
/// use moa_circuits::teaching::resettable_toggle;
/// use moa_netlist::full_fault_list;
/// use moa_tpg::greedy::{generate_sequence, GreedyOptions};
///
/// let c = resettable_toggle();
/// let faults = full_fault_list(&c);
/// let result = generate_sequence(&c, &faults, &GreedyOptions::default());
/// assert!(result.coverage() > 0.3);
/// ```
pub fn generate_sequence(
    circuit: &Circuit,
    faults: &[Fault],
    options: &GreedyOptions,
) -> GreedyResult {
    let mut rng = StdRng::seed_from_u64(options.seed);
    let x_state = vec![V3::X; circuit.num_flip_flops()];
    let mut good = MachineState {
        state: x_state.clone(),
    };
    // (fault index, machine state) for each undetected fault.
    let mut remaining: Vec<(usize, MachineState)> = faults
        .iter()
        .enumerate()
        .map(|(i, _)| {
            (
                i,
                MachineState {
                    state: x_state.clone(),
                },
            )
        })
        .collect();
    let mut detected = vec![false; faults.len()];
    let mut sequence = TestSequence::new(circuit.num_inputs(), Vec::new());
    let mut stale = 0;

    while sequence.len() < options.max_length && stale < options.stale_steps && !remaining.is_empty()
    {
        let ext_len = options
            .extension_length
            .min(options.max_length - sequence.len());
        let candidates: Vec<Vec<Vec<V3>>> = (0..options.candidates_per_step)
            .map(|_| {
                (0..ext_len)
                    .map(|_| {
                        (0..circuit.num_inputs())
                            .map(|_| V3::from_bool(rng.random::<bool>()))
                            .collect()
                    })
                    .collect()
            })
            .collect();

        let mut best: Option<(usize, Vec<usize>)> = None; // (candidate, newly detected fault indices)
        for (ci, ext) in candidates.iter().enumerate() {
            let newly = evaluate_extension(circuit, faults, &good, &remaining, ext);
            if best.as_ref().map_or(0, |(_, n)| n.len()) < newly.len() {
                best = Some((ci, newly));
            }
        }
        let (ci, newly) = match best {
            Some(b) if !b.1.is_empty() => b,
            _ => {
                // No candidate detects anything: append the first candidate
                // anyway (it may enable later detections) and count a stale
                // step.
                stale += 1;
                (0, Vec::new())
            }
        };

        // Commit the chosen extension: advance the good machine and every
        // remaining fault's machine, and drop newly detected faults.
        let ext = &candidates[ci];
        let mut good_outputs = Vec::with_capacity(ext.len());
        for pattern in ext {
            let frame = compute_frame(circuit, pattern, &good.state, None);
            good_outputs.push(frame_outputs(circuit, &frame));
            good.state = frame_next_state(circuit, &frame, None);
        }
        for (fi, machine) in &mut remaining {
            let fault = &faults[*fi];
            for (pattern, good_out) in ext.iter().zip(&good_outputs) {
                let frame = compute_frame(circuit, pattern, &machine.state, Some(fault));
                let outs = frame_outputs(circuit, &frame);
                if outs.iter().zip(good_out).any(|(f, g)| f.conflicts(*g)) {
                    detected[*fi] = true;
                }
                machine.state = frame_next_state(circuit, &frame, Some(fault));
            }
        }
        remaining.retain(|(fi, _)| !detected[*fi]);
        for pattern in ext {
            sequence.push(pattern.clone());
        }
        if !newly.is_empty() {
            stale = 0;
        }
    }

    GreedyResult { sequence, detected }
}

/// Scores one extension: which still-undetected faults would it detect?
fn evaluate_extension(
    circuit: &Circuit,
    faults: &[Fault],
    good: &MachineState,
    remaining: &[(usize, MachineState)],
    ext: &[Vec<V3>],
) -> Vec<usize> {
    let mut good_state = good.state.clone();
    let mut good_outputs = Vec::with_capacity(ext.len());
    for pattern in ext {
        let frame = compute_frame(circuit, pattern, &good_state, None);
        good_outputs.push(frame_outputs(circuit, &frame));
        good_state = frame_next_state(circuit, &frame, None);
    }
    let mut newly = Vec::new();
    for (fi, machine) in remaining {
        let fault = &faults[*fi];
        let mut state = machine.state.clone();
        'time: for (pattern, good_out) in ext.iter().zip(&good_outputs) {
            let frame = compute_frame(circuit, pattern, &state, Some(fault));
            let outs = frame_outputs(circuit, &frame);
            if outs.iter().zip(good_out).any(|(f, g)| f.conflicts(*g)) {
                newly.push(*fi);
                break 'time;
            }
            state = frame_next_state(circuit, &frame, Some(fault));
        }
    }
    newly
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conventional_coverage;
    use moa_circuits::teaching::{counter, resettable_toggle};
    use moa_netlist::full_fault_list;

    #[test]
    fn deterministic_per_seed() {
        let c = resettable_toggle();
        let faults = full_fault_list(&c);
        let opts = GreedyOptions::default();
        let a = generate_sequence(&c, &faults, &opts);
        let b = generate_sequence(&c, &faults, &opts);
        assert_eq!(a.sequence, b.sequence);
        assert_eq!(a.detected, b.detected);
    }

    #[test]
    fn detected_flags_match_a_fresh_simulation() {
        let c = counter(3);
        let faults = full_fault_list(&c);
        let result = generate_sequence(&c, &faults, &GreedyOptions::default());
        let fresh = conventional_coverage(&c, &result.sequence, &faults);
        assert_eq!(result.detected, fresh, "incremental == from-scratch");
    }

    #[test]
    fn beats_or_matches_a_random_sequence_of_equal_length() {
        let c = counter(4);
        let faults = full_fault_list(&c);
        let result = generate_sequence(&c, &faults, &GreedyOptions::default());
        let random = crate::random_sequence(&c, result.sequence.len().max(1), 99);
        let random_cov = conventional_coverage(&c, &random, &faults)
            .iter()
            .filter(|&&d| d)
            .count();
        let greedy_cov = result.detected.iter().filter(|&&d| d).count();
        assert!(
            greedy_cov + 2 >= random_cov,
            "greedy {greedy_cov} should be competitive with random {random_cov}"
        );
    }

    #[test]
    fn respects_max_length() {
        let c = resettable_toggle();
        let faults = full_fault_list(&c);
        let opts = GreedyOptions {
            max_length: 10,
            extension_length: 4,
            ..Default::default()
        };
        let result = generate_sequence(&c, &faults, &opts);
        assert!(result.sequence.len() <= 10);
    }

    #[test]
    fn empty_fault_list_yields_empty_sequence() {
        let c = resettable_toggle();
        let result = generate_sequence(&c, &[], &GreedyOptions::default());
        assert!(result.sequence.is_empty());
        assert_eq!(result.coverage(), 0.0);
    }
}
