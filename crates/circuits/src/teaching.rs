//! Hand-built circuits illustrating the paper's phenomena.

use moa_logic::GateKind;
use moa_netlist::{Circuit, CircuitBuilder};

/// The conflict circuit of the paper's Figure 4.
///
/// One primary input (line 1), one state variable (line 2), fan-out branches
/// of the input (lines 3, 4), `5 = OR(2, 3)`, `6 = OR(2, 4)` and next-state
/// `11 = AND(5, NOT 6)`. Under the input combination `(0)`, backward
/// implication of the present-state variable at time 1 sets line 11 to
/// `(0, 1)` at time 0; the value 1 forces line 5 to 1 (hence line 2 to 1)
/// *and* line 6 to 0 (hence line 2 to 0) — a conflict, proving the state
/// variable can only be 0 at time 1.
///
/// # Example
///
/// ```
/// use moa_circuits::teaching::figure4;
///
/// let c = figure4();
/// assert_eq!(c.num_flip_flops(), 1);
/// ```
pub fn figure4() -> Circuit {
    let mut b = CircuitBuilder::new("figure4");
    b.add_input("l1").expect("fresh builder");
    b.add_flip_flop("l2", "l11").expect("fresh net");
    b.add_gate(GateKind::Buf, "l3", &["l1"]).expect("valid gate");
    b.add_gate(GateKind::Buf, "l4", &["l1"]).expect("valid gate");
    b.add_gate(GateKind::Or, "l5", &["l2", "l3"]).expect("valid gate");
    b.add_gate(GateKind::Or, "l6", &["l2", "l4"]).expect("valid gate");
    b.add_gate(GateKind::Not, "l7", &["l6"]).expect("valid gate");
    b.add_gate(GateKind::And, "l11", &["l5", "l7"]).expect("valid gate");
    b.add_output("l11");
    b.finish().expect("figure4 is a valid circuit")
}

/// A resettable toggle: `r = 0` resets the flip-flop, `r = 1` makes it
/// toggle, and the output observes it.
///
/// This is the canonical multiple-observation-time example (the shape of the
/// paper's introduction): with `r` stuck-at-1 the faulty machine toggles
/// forever from an unknown initial state, so conventional simulation reports
/// only `X`, yet every faulty initial state mismatches the reset response —
/// either on even or on odd time units.
pub fn resettable_toggle() -> Circuit {
    let mut b = CircuitBuilder::new("toggle");
    b.add_input("r").expect("fresh builder");
    b.add_flip_flop("q", "d").expect("fresh net");
    b.add_gate(GateKind::Not, "nq", &["q"]).expect("valid gate");
    b.add_gate(GateKind::And, "d", &["r", "nq"]).expect("valid gate");
    b.add_gate(GateKind::Buf, "z", &["q"]).expect("valid gate");
    b.add_output("z");
    b.finish().expect("toggle is a valid circuit")
}

/// A Table-1-style expansion demo: two cross-coupled state variables and
/// three outputs, where expanding one state variable specifies additional
/// outputs and state values at later time units.
///
/// - `d0 = NOR(a, q1)`, `d1 = NOR(b, q0)` (a NOR-latch-like pair),
/// - outputs `z0 = AND(a, q0)`, `z1 = NOR(q0, q1)`, `z2 = OR(b, q1)`.
pub fn expansion_demo() -> Circuit {
    let mut b = CircuitBuilder::new("expansion-demo");
    b.add_input("a").expect("fresh builder");
    b.add_input("b").expect("fresh builder");
    b.add_flip_flop("q0", "d0").expect("fresh net");
    b.add_flip_flop("q1", "d1").expect("fresh net");
    b.add_gate(GateKind::Nor, "d0", &["a", "q1"]).expect("valid gate");
    b.add_gate(GateKind::Nor, "d1", &["b", "q0"]).expect("valid gate");
    b.add_gate(GateKind::And, "z0", &["a", "q0"]).expect("valid gate");
    b.add_gate(GateKind::Nor, "z1", &["q0", "q1"]).expect("valid gate");
    b.add_gate(GateKind::Or, "z2", &["b", "q1"]).expect("valid gate");
    b.add_output("z0");
    b.add_output("z1");
    b.add_output("z2");
    b.finish().expect("expansion demo is a valid circuit")
}

/// An `n`-stage shift register: `q0 ← in`, `q_{k+1} ← q_k`, output `q_{n-1}`.
///
/// Shift registers initialize in `n` cycles; they exercise long backward
/// implication chains across time (and the single-time-unit restriction of
/// the paper's engine).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn shift_register(n: usize) -> Circuit {
    assert!(n > 0, "a shift register needs at least one stage");
    let mut b = CircuitBuilder::new(format!("shift{n}"));
    b.add_input("in").expect("fresh builder");
    for k in 0..n {
        let q = format!("q{k}");
        let d = if k == 0 {
            "in".to_owned()
        } else {
            format!("q{}", k - 1)
        };
        // A DFF whose d is the previous stage's q (or the input).
        b.add_flip_flop(&q, &d).expect("fresh net");
    }
    b.add_gate(GateKind::Buf, "z", &[&format!("q{}", n - 1)])
        .expect("valid gate");
    b.add_output("z");
    b.finish().expect("shift register is a valid circuit")
}

/// An `n`-bit synchronous binary up-counter with synchronous clear.
///
/// `clr = 1` clears all bits; otherwise the counter increments. Counters are
/// classic hard-to-initialize-partially circuits: without a clear, no bit is
/// ever specified.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn counter(n: usize) -> Circuit {
    assert!(n > 0, "a counter needs at least one bit");
    let mut b = CircuitBuilder::new(format!("counter{n}"));
    b.add_input("clr").expect("fresh builder");
    b.add_gate(GateKind::Not, "en", &["clr"]).expect("valid gate");
    // carry0 = 1 (increment always); carry_{k+1} = AND(carry_k, q_k).
    for k in 0..n {
        let q = format!("q{k}");
        let d = format!("d{k}");
        b.add_flip_flop(&q, &d).expect("fresh net");
        let carry: String = if k == 0 {
            "en".to_owned() // carry-in is 1 when counting (not clearing)
        } else {
            let c = format!("c{k}");
            let prev_c = if k == 1 {
                "en".to_owned()
            } else {
                format!("c{}", k - 1)
            };
            b.add_gate(GateKind::And, &c, &[&prev_c, &format!("q{}", k - 1)])
                .expect("valid gate");
            c
        };
        // next bit = (q XOR carry) AND en  — clearing forces 0.
        let t = format!("t{k}");
        b.add_gate(GateKind::Xor, &t, &[&q, &carry]).expect("valid gate");
        b.add_gate(GateKind::And, &d, &[&t, "en"]).expect("valid gate");
    }
    b.add_gate(GateKind::Buf, "z", &[&format!("q{}", n - 1)])
        .expect("valid gate");
    b.add_output("z");
    b.finish().expect("counter is a valid circuit")
}

/// An `n`-stage Johnson (twisted-ring) counter with synchronous clear:
/// `q_0 ← AND(en, NOT q_{n-1})`, `q_{k+1} ← AND(en, q_k)`, with
/// `en = NOT(clr)` — so `clr = 1` clears every stage.
///
/// Without the clear a Johnson counter never initializes under three-valued
/// simulation (every next state copies an unknown), and faults on the clear
/// path are classic multiple-observation-time detections.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn johnson_counter(n: usize) -> Circuit {
    assert!(n > 0, "a Johnson counter needs at least one stage");
    let mut b = CircuitBuilder::new(format!("johnson{n}"));
    b.add_input("clr").expect("fresh builder");
    b.add_gate(GateKind::Not, "en", &["clr"]).expect("valid gate");
    b.add_gate(GateKind::Not, "tw", &[&format!("q{}", n - 1)])
        .expect("valid gate");
    for k in 0..n {
        let q = format!("q{k}");
        let d = format!("d{k}");
        b.add_flip_flop(&q, &d).expect("fresh net");
        let src = if k == 0 {
            "tw".to_owned()
        } else {
            format!("q{}", k - 1)
        };
        b.add_gate(GateKind::And, &d, &["en", &src]).expect("valid gate");
    }
    b.add_gate(GateKind::Buf, "z", &[&format!("q{}", n - 1)])
        .expect("valid gate");
    b.add_output("z");
    b.finish().expect("johnson counter is a valid circuit")
}

#[cfg(test)]
mod tests {
    use super::*;
    use moa_logic::V3;
    use moa_sim::{simulate, TestSequence};

    #[test]
    fn figure4_structure() {
        let c = figure4();
        assert_eq!(c.num_inputs(), 1);
        assert_eq!(c.num_flip_flops(), 1);
        assert_eq!(c.num_gates(), 6);
    }

    #[test]
    fn toggle_good_machine_resets() {
        let c = resettable_toggle();
        let seq = TestSequence::from_words(&["0", "1", "1"]).unwrap();
        let t = simulate(&c, &seq, None);
        // r=0 clears q; then r=1 toggles: q = x,0,1.
        assert_eq!(t.states[1], vec![V3::Zero]);
        assert_eq!(t.states[2], vec![V3::One]);
        assert_eq!(t.states[3], vec![V3::Zero]);
    }

    #[test]
    fn shift_register_initializes_in_n_cycles() {
        let n = 4;
        let c = shift_register(n);
        let seq = TestSequence::from_words(&["1", "0", "1", "0", "1"]).unwrap();
        let t = simulate(&c, &seq, None);
        // After k patterns, the first k stages are specified.
        for k in 0..=n {
            assert_eq!(
                t.states[k].iter().filter(|v| v.is_specified()).count(),
                k,
                "after {k} cycles"
            );
        }
        // The last output equals the input delayed by n.
        assert_eq!(t.outputs[4], vec![V3::One]);
    }

    #[test]
    fn counter_counts_after_clear() {
        let c = counter(3);
        let seq =
            TestSequence::from_words(&["1", "0", "0", "0", "0"]).unwrap();
        let t = simulate(&c, &seq, None);
        // After the clear, states count 0,1,2,3 (LSB first).
        assert_eq!(t.states[1], vec![V3::Zero, V3::Zero, V3::Zero]);
        assert_eq!(t.states[2], vec![V3::One, V3::Zero, V3::Zero]);
        assert_eq!(t.states[3], vec![V3::Zero, V3::One, V3::Zero]);
        assert_eq!(t.states[4], vec![V3::One, V3::One, V3::Zero]);
    }

    #[test]
    fn counter_never_initializes_without_clear() {
        let c = counter(3);
        let seq = TestSequence::from_words(&["0", "0", "0"]).unwrap();
        let t = simulate(&c, &seq, None);
        assert_eq!(t.num_unspecified_state_vars(3), 3);
    }

    #[test]
    fn expansion_demo_shape() {
        let c = expansion_demo();
        assert_eq!(c.num_outputs(), 3);
        assert_eq!(c.num_flip_flops(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn zero_stage_shift_register_panics() {
        shift_register(0);
    }

    #[test]
    fn johnson_counter_cycles_after_clear() {
        let c = johnson_counter(3);
        // clear, then run: 000 -> 100 -> 110 -> 111 -> 011 -> 001 -> 000 ...
        let seq = TestSequence::from_words(&["1", "0", "0", "0", "0"]).unwrap();
        let t = simulate(&c, &seq, None);
        assert_eq!(t.states[1], vec![V3::Zero, V3::Zero, V3::Zero]);
        assert_eq!(t.states[2], vec![V3::One, V3::Zero, V3::Zero]);
        assert_eq!(t.states[3], vec![V3::One, V3::One, V3::Zero]);
        assert_eq!(t.states[4], vec![V3::One, V3::One, V3::One]);
    }

    #[test]
    fn johnson_counter_never_initializes_without_clear() {
        let c = johnson_counter(3);
        let seq = TestSequence::from_words(&["0", "0", "0", "0"]).unwrap();
        let t = simulate(&c, &seq, None);
        assert_eq!(t.num_unspecified_state_vars(4), 3);
    }
}
