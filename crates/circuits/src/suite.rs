//! The paper's Table-2 circuit suite as synthetic stand-ins.
//!
//! The paper evaluates on ISCAS-89 circuits (s208 … s35932) and on three
//! circuits from Rudnick's thesis (am2910, mp1_16, mp2). Only `s27` (not in
//! Table 2) is small enough to embed exactly; the others are substituted by
//! seeded synthetic circuits with the original primary-input / primary-output
//! interface widths, and flip-flop/gate counts scaled down for the largest
//! circuits to keep a full campaign laptop-scale. Each entry records the
//! scaling and the paper's published numbers so the experiment harnesses can
//! print paper-vs-measured side by side (see EXPERIMENTS.md).

use crate::synth::{generate, SynthSpec};
use moa_netlist::Circuit;

/// The paper's published results for one circuit (Tables 2 and 3).
///
/// `None` entries correspond to the paper's "NA" (the procedure of \[4] could
/// not be applied to the largest circuits).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRow {
    /// Total faults (Table 2, "total faults").
    pub total_faults: usize,
    /// Faults detected by conventional simulation.
    pub conventional: usize,
    /// Total detected by the procedure of \[4], with its extra count.
    pub baseline: Option<(usize, usize)>,
    /// Total detected by the proposed procedure, with its extra count.
    pub proposed: (usize, usize),
    /// Table 3 averages (detect, conf, extra).
    pub table3: (f64, f64, f64),
}

/// One circuit of the experimental suite.
#[derive(Debug, Clone)]
pub struct SuiteEntry {
    /// The paper's circuit name (e.g. `"s5378"`).
    pub name: &'static str,
    /// Generator parameters of the synthetic stand-in.
    pub spec: SynthSpec,
    /// Random-sequence length used by the Table-2 harness.
    pub sequence_length: usize,
    /// How the stand-in relates to the original (interface and scaling).
    pub scale_note: &'static str,
    /// The paper's published numbers for shape comparison.
    pub paper: PaperRow,
}

impl SuiteEntry {
    /// Builds the stand-in circuit.
    pub fn build(&self) -> Circuit {
        generate(&self.spec)
    }
}

fn spec(
    name: &'static str,
    inputs: usize,
    outputs: usize,
    flip_flops: usize,
    gates: usize,
    seed: u64,
) -> SynthSpec {
    SynthSpec::new(name, inputs, outputs, flip_flops, gates, seed)
}

/// The full 13-circuit suite of the paper's Table 2, in table order.
///
/// # Example
///
/// ```
/// use moa_circuits::suite::suite;
///
/// let entries = suite();
/// assert_eq!(entries.len(), 13);
/// let s208 = &entries[0];
/// assert_eq!(s208.name, "s208");
/// let c = s208.build();
/// assert_eq!(c.num_flip_flops(), 8);
/// ```
pub fn suite() -> Vec<SuiteEntry> {
    vec![
        SuiteEntry {
            name: "s208",
            spec: spec("s208", 10, 1, 8, 96, 0xA216),
            sequence_length: 128,
            scale_note: "interface and size as original (10/1/8, 96 gates)",
            paper: PaperRow {
                total_faults: 215,
                conventional: 73,
                baseline: Some((86, 13)),
                proposed: (86, 13),
                table3: (19.54, 12.00, 54.54),
            },
        },
        SuiteEntry {
            name: "s298",
            spec: spec("s298", 3, 6, 14, 119, 0xA2A3),
            sequence_length: 128,
            scale_note: "interface and size as original (3/6/14, 119 gates)",
            paper: PaperRow {
                total_faults: 308,
                conventional: 143,
                baseline: Some((150, 7)),
                proposed: (150, 7),
                table3: (6.71, 36.57, 60.71),
            },
        },
        SuiteEntry {
            name: "s344",
            spec: spec("s344", 9, 11, 15, 160, 0xA34D),
            sequence_length: 128,
            scale_note: "interface and size as original (9/11/15, 160 gates)",
            paper: PaperRow {
                total_faults: 342,
                conventional: 314,
                baseline: Some((320, 6)),
                proposed: (320, 6),
                table3: (281.67, 0.00, 304.33),
            },
        },
        SuiteEntry {
            name: "s420",
            spec: {
                // The real s420 is a counter-like fractional divider: heavy
                // toggling feedback and weak initialization. The stand-in
                // gets matching generator knobs (chosen by the seed search).
                let mut s420 = spec("s420", 18, 1, 16, 196, 0xB422);
                s420.xor_permille = 40;
                s420.init_permille = 650;
                s420.feedback_permille = 400;
                s420
            },
            sequence_length: 128,
            scale_note: "interface and size as original (18/1/16, 196 gates)",
            paper: PaperRow {
                total_faults: 430,
                conventional: 125,
                baseline: Some((150, 25)),
                proposed: (150, 25),
                table3: (24.88, 7.60, 57.60),
            },
        },
        SuiteEntry {
            name: "s641",
            spec: spec("s641", 35, 24, 19, 379, 0xA648),
            sequence_length: 128,
            scale_note: "interface and size as original (35/24/19, 379 gates)",
            paper: PaperRow {
                total_faults: 467,
                conventional: 343,
                baseline: Some((347, 4)),
                proposed: (347, 4),
                table3: (234.25, 0.00, 400.75),
            },
        },
        SuiteEntry {
            name: "s713",
            spec: spec("s713", 35, 23, 19, 393, 0xA71E),
            sequence_length: 128,
            scale_note: "interface and size as original (35/23/19, 393 gates)",
            paper: PaperRow {
                total_faults: 581,
                conventional: 415,
                baseline: Some((419, 4)),
                proposed: (419, 4),
                table3: (178.75, 0.00, 219.75),
            },
        },
        SuiteEntry {
            name: "s1423",
            spec: spec("s1423", 17, 5, 74, 657, 0x1429),
            sequence_length: 96,
            scale_note: "interface and size as original (17/5/74, 657 gates)",
            paper: PaperRow {
                total_faults: 1515,
                conventional: 331,
                baseline: Some((338, 7)),
                proposed: (338, 7),
                table3: (10.29, 91.71, 195.71),
            },
        },
        SuiteEntry {
            name: "s5378",
            spec: spec("s5378", 35, 49, 60, 900, 0x5382),
            sequence_length: 96,
            scale_note: "interface as original (35/49); 179 FF / 2779 gates scaled to 60 / 900 (≈1/3)",
            paper: PaperRow {
                total_faults: 4603,
                conventional: 2352,
                baseline: Some((2352, 0)),
                proposed: (2363, 11),
                table3: (616.18, 142.00, 1082.27),
            },
        },
        SuiteEntry {
            name: "s15850",
            spec: spec("s15850", 77, 150, 100, 1100, 0x15855),
            sequence_length: 64,
            scale_note: "interface as original (77/150); 534 FF / 9772 gates scaled to 100 / 1100 (≈1/9)",
            paper: PaperRow {
                total_faults: 11725,
                conventional: 85,
                baseline: None,
                proposed: (87, 2),
                table3: (114.00, 89.00, 264.50),
            },
        },
        SuiteEntry {
            name: "s35932",
            spec: spec("s35932", 35, 320, 120, 1300, 0x3593C),
            sequence_length: 64,
            scale_note: "interface as original (35/320); 1728 FF / 16065 gates scaled to 120 / 1300 (≈1/13)",
            paper: PaperRow {
                total_faults: 39094,
                conventional: 22357,
                baseline: None,
                proposed: (22367, 10),
                table3: (5958.00, 0.00, 6711.60),
            },
        },
        SuiteEntry {
            name: "am2910",
            spec: spec("am2910", 20, 16, 33, 700, 0x291B),
            sequence_length: 96,
            scale_note: "interface as Rudnick's am2910 (20/16/33); ~2000 gates scaled to 700",
            paper: PaperRow {
                total_faults: 2573,
                conventional: 1234,
                baseline: Some((1259, 25)),
                proposed: (1272, 38),
                table3: (225.79, 8.53, 331.29),
            },
        },
        SuiteEntry {
            name: "mp1_16",
            spec: spec("mp1_16", 18, 17, 16, 500, 0x1019),
            sequence_length: 96,
            scale_note: "Rudnick's mp1_16 stand-in (18/17/16, 500 gates; original size unpublished)",
            paper: PaperRow {
                total_faults: 1708,
                conventional: 1259,
                baseline: Some((1278, 19)),
                proposed: (1280, 21),
                table3: (2038.57, 25.38, 2096.05),
            },
        },
        SuiteEntry {
            name: "mp2",
            spec: spec("mp2", 20, 20, 60, 800, 0x222D),
            sequence_length: 96,
            scale_note: "Rudnick's mp2 stand-in (20/20/60, 800 gates; original size unpublished)",
            paper: PaperRow {
                total_faults: 10477,
                conventional: 666,
                baseline: Some((670, 4)),
                proposed: (676, 10),
                table3: (2996.50, 50.10, 3449.00),
            },
        },
    ]
}

/// Looks up a suite entry by name.
pub fn entry(name: &str) -> Option<SuiteEntry> {
    suite().into_iter().find(|e| e.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_entries_build() {
        for e in suite() {
            let c = e.build();
            assert_eq!(c.num_inputs(), e.spec.inputs, "{}", e.name);
            assert_eq!(c.num_outputs(), e.spec.outputs, "{}", e.name);
            assert_eq!(c.num_flip_flops(), e.spec.flip_flops, "{}", e.name);
            assert_eq!(c.num_gates(), e.spec.gates, "{}", e.name);
            assert!(e.sequence_length > 0);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(entry("s5378").is_some());
        assert!(entry("s9999").is_none());
        assert_eq!(entry("am2910").unwrap().paper.proposed, (1272, 38));
    }

    #[test]
    fn paper_rows_are_consistent() {
        for e in suite() {
            let p = e.paper;
            assert_eq!(
                p.proposed.0,
                p.conventional + p.proposed.1,
                "{}: proposed tot = conv + extra",
                e.name
            );
            if let Some((tot, extra)) = p.baseline {
                assert_eq!(tot, p.conventional + extra, "{}", e.name);
                assert!(p.proposed.0 >= tot, "{}: proposed ⊇ baseline", e.name);
            }
            assert!(p.total_faults >= p.proposed.0, "{}", e.name);
        }
    }
}
