//! Seeded synthetic sequential-circuit generation.
//!
//! The generator produces ISCAS-like circuits: NAND/NOR-heavy combinational
//! logic with reconvergent fan-out, cross-coupled flip-flop feedback and a
//! small XOR fraction. Each flip-flop gets a dedicated next-state gate; most
//! of them include a *direct primary-input* pin, so random patterns
//! initialize the good machine the way the ISCAS-89 circuits initialize
//! (partial reset / load paths), while stuck-at faults on those pins produce
//! exactly the phenomenon the paper studies: a faulty machine that never
//! initializes and escapes conventional three-valued simulation, yet
//! mismatches the fault-free response from every initial state. A
//! configurable fraction of flip-flops has no input-controlled update at all
//! and stays unknown, as in the hard-to-initialize ISCAS machines
//! (see DESIGN.md §5).

use moa_logic::GateKind;
use moa_netlist::{Circuit, CircuitBuilder};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Parameters of one synthetic circuit.
///
/// # Example
///
/// ```
/// use moa_circuits::synth::{generate, SynthSpec};
///
/// let spec = SynthSpec::new("demo", 4, 2, 3, 30, 7);
/// let c = generate(&spec);
/// assert_eq!(c.num_inputs(), 4);
/// assert_eq!(c.num_flip_flops(), 3);
/// assert_eq!(c.num_gates(), 30);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthSpec {
    /// Circuit name.
    pub name: String,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Flip-flops.
    pub flip_flops: usize,
    /// Combinational gates.
    pub gates: usize,
    /// RNG seed — the same spec always yields the same circuit.
    pub seed: u64,
    /// Per-mille probability that a body gate is an XOR/XNOR (default 40‰).
    /// Higher values make initialization harder.
    pub xor_permille: u32,
    /// Per-mille probability that a gate input taps a flip-flop output
    /// (default 250‰) — feedback density.
    pub feedback_permille: u32,
    /// Per-mille probability that a flip-flop's next-state gate includes a
    /// direct primary-input pin (default 750‰). Such flip-flops initialize
    /// under random patterns; the rest stay unknown.
    pub init_permille: u32,
}

impl SynthSpec {
    /// Creates a spec with the default XOR/feedback densities.
    ///
    /// # Panics
    ///
    /// Panics if any of `inputs`, `outputs` or `gates` is zero, or if
    /// `gates < outputs` (outputs are chosen among gate outputs).
    pub fn new(
        name: impl Into<String>,
        inputs: usize,
        outputs: usize,
        flip_flops: usize,
        gates: usize,
        seed: u64,
    ) -> Self {
        assert!(inputs > 0, "at least one primary input");
        assert!(outputs > 0, "at least one primary output");
        assert!(
            gates > flip_flops + outputs,
            "each flip-flop and each output needs a dedicated gate plus body logic"
        );
        SynthSpec {
            name: name.into(),
            inputs,
            outputs,
            flip_flops,
            gates,
            seed,
            xor_permille: 40,
            feedback_permille: 250,
            init_permille: 750,
        }
    }

    /// Number of body gates (gates that are neither dedicated next-state
    /// gates nor dedicated observation gates).
    pub fn body_gates(&self) -> usize {
        self.gates - self.flip_flops - self.outputs
    }
}

/// Generates the circuit described by `spec` (deterministically per seed).
pub fn generate(spec: &SynthSpec) -> Circuit {
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x6d6f_615f_7379_6e74);
    let mut b = CircuitBuilder::new(spec.name.clone());

    let mut pis: Vec<String> = Vec::new();
    for i in 0..spec.inputs {
        let name = format!("i{i}");
        b.add_input(&name).expect("unique input names");
        pis.push(name);
    }
    let mut sources: Vec<String> = pis.clone(); // PIs + flip-flop outputs
    for f in 0..spec.flip_flops {
        // Flip-flop f's next state is the dedicated gate after the body.
        b.add_flip_flop(&format!("q{f}"), &format!("g{}", spec.body_gates() + f))
            .expect("unique flip-flop names");
        sources.push(format!("q{f}"));
    }

    // Body gates. `used[g]` tracks whether gate g's output is read by later
    // logic; unused outputs are preferred as inputs and as primary outputs so
    // that every fault site is observable.
    let mut gates = Gates {
        names: Vec::with_capacity(spec.gates),
        used: Vec::with_capacity(spec.gates),
    };
    let mut read_signals: std::collections::HashSet<String> = std::collections::HashSet::new();
    for g in 0..spec.body_gates() {
        let name = format!("g{g}");
        let kind = pick_kind(&mut rng, spec);
        let arity = if kind.is_unary() {
            1
        } else {
            // Mostly 2-input, some 3- and 4-input gates.
            match rng.random_range(0..10) {
                0..=6 => 2,
                7 | 8 => 3,
                _ => 4,
            }
        };
        let inputs = pick_inputs(&mut rng, spec, &sources, &mut gates, arity);
        read_signals.extend(inputs.iter().cloned());
        let refs: Vec<&str> = inputs.iter().map(String::as_str).collect();
        b.add_gate(kind, &name, &refs).expect("unique gate names");
        gates.names.push(name);
        gates.used.push(false);
    }

    // Primary inputs nothing reads yet: distributed over the dedicated gates
    // below so every input is observable.
    let mut unread_pis: Vec<String> = pis
        .iter()
        .filter(|p| !read_signals.contains(*p))
        .cloned()
        .collect();

    // Dedicated next-state gates: AND/NAND/OR/NOR so a controlling input can
    // force the flip-flop; most get a direct primary-input pin (an
    // initialization path under random patterns). Inverting kinds dominate:
    // a faulty machine whose initialization is broken must *toggle* (not
    // hold) to mismatch the good response from every initial state, and
    // NAND/NOR feedback toggles.
    for f in 0..spec.flip_flops {
        let name = format!("g{}", spec.body_gates() + f);
        let kind = match rng.random_range(0..10) {
            0..=3 => GateKind::Nand,
            4..=7 => GateKind::Nor,
            8 => GateKind::And,
            _ => GateKind::Or,
        };
        let mut inputs: Vec<String> = Vec::new();
        if rng.random_range(0..1000) < spec.init_permille {
            inputs.push(pis[rng.random_range(0..pis.len())].clone());
        }
        // Feedback: state gates read a state bit directly about half the
        // time — the ring neighbour (a structural path toward the observed
        // flip-flops) or themselves (a toggle loop under an inverting kind).
        // Unconditional ring feedback would spread `X` between flip-flops so
        // aggressively that conventional coverage collapses; the probabilistic
        // ring keeps the fault-free machine crisp while still leaving
        // hard-to-initialize islands for the multiple observation time
        // approach to recover (isolated state islands are reported by the
        // observability analysis and mirror the never-initialized portions of
        // the real ISCAS-89 machines).
        if rng.random_range(0..1000) < 550 {
            let q = if rng.random::<bool>() {
                format!("q{f}")
            } else {
                format!("q{}", (f + 1) % spec.flip_flops)
            };
            if !inputs.contains(&q) {
                inputs.push(q);
            }
        }
        let extra = 1 + rng.random_range(0..2);
        for _ in 0..extra {
            let picked = pick_unused_or_any(&mut rng, spec, &sources, &mut gates);
            if !inputs.contains(&picked) {
                inputs.push(picked);
            }
        }
        // Absorber quota: spread the still-unused gate outputs and unread
        // inputs over the remaining dedicated gates so nothing dangles
        // unobservably.
        let remaining = spec.flip_flops + spec.outputs - f;
        absorb_quota(&mut rng, &mut gates, &mut inputs, remaining);
        absorb_pis(&mut rng, &mut unread_pis, &mut inputs, remaining);
        let refs: Vec<&str> = inputs.iter().map(String::as_str).collect();
        b.add_gate(kind, &name, &refs).expect("unique gate names");
        gates.names.push(name);
        gates.used.push(true); // read by the flip-flop
    }

    // Dedicated observation gates: each primary output observes a fresh gate
    // that aggregates state bits and deep (preferably otherwise-unused) body
    // logic, so faults reaching the state are observable even on circuits
    // with a single output.
    for o in 0..spec.outputs {
        let name = format!("g{}", spec.body_gates() + spec.flip_flops + o);
        let kind = match rng.random_range(0..4) {
            0 => GateKind::And,
            1 => GateKind::Nand,
            2 => GateKind::Or,
            _ => GateKind::Nor,
        };
        let mut inputs: Vec<String> = Vec::new();
        if spec.flip_flops > 0 {
            // Cycle through the flip-flops so every state ring is observed.
            inputs.push(format!("q{}", o % spec.flip_flops));
        }
        for _ in 0..2 {
            let picked = pick_unused_or_any(&mut rng, spec, &sources, &mut gates);
            if !inputs.contains(&picked) {
                inputs.push(picked);
            }
        }
        absorb_quota(&mut rng, &mut gates, &mut inputs, spec.outputs - o);
        absorb_pis(&mut rng, &mut unread_pis, &mut inputs, spec.outputs - o);
        let refs: Vec<&str> = inputs.iter().map(String::as_str).collect();
        b.add_gate(kind, &name, &refs).expect("unique gate names");
        b.add_output(&name);
        gates.names.push(name);
        gates.used.push(true);
    }

    b.finish().expect("generated circuits are valid by construction")
}

/// Generated gates plus their is-read-by-anything flags.
struct Gates {
    names: Vec<String>,
    used: Vec<bool>,
}

/// Picks up to `arity` distinct input signals for a new gate, marking chosen
/// gates as used.
fn pick_inputs(
    rng: &mut StdRng,
    spec: &SynthSpec,
    sources: &[String],
    gates: &mut Gates,
    arity: usize,
) -> Vec<String> {
    let mut inputs: Vec<String> = Vec::with_capacity(arity);
    for _ in 0..arity {
        for _attempt in 0..8 {
            let candidate = pick_signal(rng, spec, sources, gates);
            if !inputs.contains(&gates_name(gates, sources, &candidate)) {
                if let Picked::Gate(g) = candidate {
                    gates.used[g] = true;
                }
                inputs.push(gates_name(gates, sources, &candidate));
                break;
            }
        }
        // After 8 collisions just accept a duplicate-free prefix.
    }
    if inputs.is_empty() {
        inputs.push(sources[rng.random_range(0..sources.len())].clone());
    }
    inputs
}

/// Appends `ceil(unused / remaining_absorbers)` still-unused gate outputs to
/// `inputs`, marking them used. Dedicated state/observation gates call this
/// so that, by the time the last one is built, no gate output dangles.
fn absorb_quota(
    rng: &mut StdRng,
    gates: &mut Gates,
    inputs: &mut Vec<String>,
    remaining_absorbers: usize,
) {
    let mut unused: Vec<usize> = (0..gates.names.len()).filter(|&g| !gates.used[g]).collect();
    let quota = unused.len().div_ceil(remaining_absorbers.max(1));
    for _ in 0..quota {
        if unused.is_empty() {
            break;
        }
        let k = rng.random_range(0..unused.len());
        let g = unused.swap_remove(k);
        gates.used[g] = true;
        let name = gates.names[g].clone();
        if !inputs.contains(&name) {
            inputs.push(name);
        }
    }
}

/// Like [`absorb_quota`], for primary inputs no body gate read.
fn absorb_pis(
    rng: &mut StdRng,
    unread: &mut Vec<String>,
    inputs: &mut Vec<String>,
    remaining_absorbers: usize,
) {
    let quota = unread.len().div_ceil(remaining_absorbers.max(1));
    for _ in 0..quota {
        if unread.is_empty() {
            break;
        }
        let k = rng.random_range(0..unread.len());
        let pi = unread.swap_remove(k);
        if !inputs.contains(&pi) {
            inputs.push(pi);
        }
    }
}

/// Picks a globally-unused body gate if one exists (absorbing dangling
/// logic into the state/observation gates), otherwise any signal.
fn pick_unused_or_any(
    rng: &mut StdRng,
    spec: &SynthSpec,
    sources: &[String],
    gates: &mut Gates,
) -> String {
    let unused: Vec<usize> = (0..gates.names.len()).filter(|&g| !gates.used[g]).collect();
    if !unused.is_empty() {
        let g = unused[rng.random_range(0..unused.len())];
        gates.used[g] = true;
        return gates.names[g].clone();
    }
    let picked = pick_signal(rng, spec, sources, gates);
    if let Picked::Gate(g) = picked {
        gates.used[g] = true;
    }
    gates_name(gates, sources, &picked)
}

enum Picked {
    Source(usize),
    Gate(usize),
}

fn gates_name(gates: &Gates, sources: &[String], picked: &Picked) -> String {
    match picked {
        Picked::Source(i) => sources[*i].clone(),
        Picked::Gate(g) => gates.names[*g].clone(),
    }
}

fn pick_kind(rng: &mut StdRng, spec: &SynthSpec) -> GateKind {
    if rng.random_range(0..1000) < spec.xor_permille {
        return if rng.random::<bool>() {
            GateKind::Xor
        } else {
            GateKind::Xnor
        };
    }
    match rng.random_range(0..100) {
        0..=29 => GateKind::Nand,
        30..=59 => GateKind::Nor,
        60..=74 => GateKind::And,
        75..=89 => GateKind::Or,
        90..=95 => GateKind::Not,
        _ => GateKind::Buf,
    }
}

/// Chooses an input signal for the gate currently being created.
///
/// Locality bias: recent gates are preferred (depth), with some probability
/// of a flip-flop output (feedback), a primary input, or a uniformly random
/// earlier gate (long-range reconvergence). Within the recent window, unused
/// gate outputs are taken first so little logic dangles unobservably.
fn pick_signal(rng: &mut StdRng, spec: &SynthSpec, sources: &[String], gates: &Gates) -> Picked {
    if gates.names.is_empty() || rng.random_range(0..1000) < spec.feedback_permille {
        return Picked::Source(rng.random_range(0..sources.len()));
    }
    let r = rng.random_range(0..100);
    if r < 60 {
        // Recent window of up to 12 gates; unused outputs first.
        let window = gates.names.len().min(12);
        let base = gates.names.len() - window;
        let unused: Vec<usize> = (base..gates.names.len()).filter(|&g| !gates.used[g]).collect();
        if unused.is_empty() {
            Picked::Gate(base + rng.random_range(0..window))
        } else {
            Picked::Gate(unused[rng.random_range(0..unused.len())])
        }
    } else if r < 80 {
        Picked::Gate(rng.random_range(0..gates.names.len()))
    } else {
        Picked::Source(rng.random_range(0..sources.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moa_netlist::CircuitStats;

    #[test]
    fn deterministic_per_seed() {
        let spec = SynthSpec::new("t", 5, 3, 4, 40, 11);
        let a = generate(&spec);
        let b = generate(&spec);
        assert!(moa_netlist::structurally_equal(&a, &b));
        let spec2 = SynthSpec {
            seed: 12,
            ..spec.clone()
        };
        let c = generate(&spec2);
        assert!(!moa_netlist::structurally_equal(&a, &c), "seeds differ");
    }

    #[test]
    fn respects_interface_counts() {
        for seed in 0..5 {
            let spec = SynthSpec::new("t", 7, 4, 6, 80, seed);
            let c = generate(&spec);
            assert_eq!(c.num_inputs(), 7);
            assert_eq!(c.num_outputs(), 4);
            assert_eq!(c.num_flip_flops(), 6);
            assert_eq!(c.num_gates(), 80);
        }
    }

    #[test]
    fn has_depth_and_feedback() {
        let spec = SynthSpec::new("t", 6, 3, 8, 120, 3);
        let c = generate(&spec);
        let stats = CircuitStats::of(&c);
        assert!(stats.depth >= 4, "locality bias produces depth, got {}", stats.depth);
        assert!(stats.max_fanout >= 2, "reconvergent fan-out exists");
        // At least one flip-flop output is actually read by logic.
        let fed_back = c
            .flip_flops()
            .iter()
            .any(|ff| c.fanout_count(ff.q()) > 0);
        assert!(fed_back);
    }

    #[test]
    fn tiny_specs_work() {
        let spec = SynthSpec::new("tiny", 1, 1, 1, 3, 0);
        let c = generate(&spec);
        assert_eq!(c.num_gates(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one primary input")]
    fn zero_inputs_panics() {
        SynthSpec::new("bad", 0, 1, 1, 4, 0);
    }

    #[test]
    fn bench_round_trip() {
        let spec = SynthSpec::new("rt", 4, 2, 3, 25, 9);
        let c = generate(&spec);
        let text = moa_netlist::write_bench(&c);
        let c2 = moa_netlist::parse_bench(&text).unwrap();
        assert!(moa_netlist::structurally_equal(&c, &c2));
    }
}
