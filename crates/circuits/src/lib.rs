//! Benchmark circuits for the multiple-observation-time fault simulator.
//!
//! Three families:
//!
//! - [`iscas`] — the ISCAS-89 benchmark `s27`, embedded exactly. It is the
//!   circuit of the paper's Figures 1–3, and the walkthrough example
//!   reproduces those figures' specified-value counts on it.
//! - [`teaching`] — small hand-built circuits illustrating specific
//!   phenomena: the Figure-4 conflict circuit, the resettable toggle whose
//!   reset-line fault needs the multiple observation time approach, a
//!   Table-1-style expansion demo, shift registers and counters.
//! - [`synth`] / [`suite`] — a seeded synthetic sequential-circuit generator
//!   and the paper's Table-2 circuit list as synthetic stand-ins (the
//!   original netlists beyond s27 are not redistributable; see DESIGN.md §5
//!   for the substitution rationale).
//!
//! # Example
//!
//! ```
//! use moa_circuits::iscas::s27;
//!
//! let c = s27();
//! assert_eq!(c.num_inputs(), 4);
//! assert_eq!(c.num_flip_flops(), 3);
//! assert_eq!(c.num_outputs(), 1);
//! ```

pub mod iscas;
pub mod suite;
pub mod synth;
pub mod teaching;
