//! Embedded ISCAS-89 benchmark circuits.
//!
//! Only `s27` is embedded: it is small enough to reproduce exactly and it is
//! the running example of the paper's Section 2. The larger ISCAS-89 /
//! Rudnick-thesis circuits of the paper's Table 2 are replaced by synthetic
//! stand-ins (see [`crate::suite`] and DESIGN.md §5).

use moa_netlist::{parse_bench, Circuit};

/// The ISCAS-89 `s27` netlist in `.bench` format: 4 primary inputs, 1 primary
/// output, 3 D flip-flops and 10 gates.
pub const S27_BENCH: &str = "\
# s27
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
";

/// Builds the `s27` circuit.
///
/// Flip-flop order is declaration order: `G5` (the paper's state variable 5),
/// `G6` (6), `G7` (7) — so state-variable index 0 is the paper's line 5, etc.
///
/// # Panics
///
/// Never panics: the embedded netlist is valid (covered by tests).
///
/// # Example
///
/// ```
/// use moa_circuits::iscas::s27;
///
/// let c = s27();
/// assert_eq!(c.name(), "s27");
/// assert_eq!(c.num_gates(), 10);
/// ```
pub fn s27() -> Circuit {
    parse_bench(S27_BENCH).expect("embedded s27 netlist is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use moa_logic::V3;
    use moa_netlist::{CircuitStats, Driver};
    use moa_sim::compute_frame;

    #[test]
    fn interface_counts() {
        let c = s27();
        assert_eq!(c.num_inputs(), 4);
        assert_eq!(c.num_outputs(), 1);
        assert_eq!(c.num_flip_flops(), 3);
        assert_eq!(c.num_gates(), 10);
        assert_eq!(c.num_nets(), 17);
        let stats = CircuitStats::of(&c);
        assert_eq!(stats.kind_histogram["NOR"], 3);
        assert_eq!(stats.kind_histogram["NAND"], 2);
        assert_eq!(stats.kind_histogram["NOT"], 2);
    }

    #[test]
    fn flip_flop_wiring() {
        let c = s27();
        let names: Vec<(&str, &str)> = c
            .flip_flops()
            .iter()
            .map(|ff| (c.net_name(ff.q()), c.net_name(ff.d())))
            .collect();
        assert_eq!(names, vec![("G5", "G10"), ("G6", "G11"), ("G7", "G13")]);
        let g17 = c.outputs()[0];
        assert_eq!(c.net_name(g17), "G17");
        assert!(matches!(c.driver(g17), Driver::Gate(_)));
    }

    /// The paper's Figure 1: under the all-unspecified state and the pattern
    /// that leaves the circuit uninitialized, all next-state variables and
    /// the primary output are X. (The paper writes the pattern as (1001) in
    /// its own line numbering; in the G0–G3 input order of the standard
    /// netlist the equivalent pattern is 1011.)
    #[test]
    fn figure_1_all_unspecified() {
        let c = s27();
        let pattern = [V3::One, V3::Zero, V3::One, V3::One];
        let state = [V3::X, V3::X, V3::X];
        let frame = compute_frame(&c, &pattern, &state, None);
        for name in ["G10", "G11", "G13", "G17"] {
            assert_eq!(frame[c.find_net(name).unwrap()], V3::X, "{name}");
        }
    }
}
