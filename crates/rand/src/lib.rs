//! Minimal vendored stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the small slice of the `rand` API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods [`Rng::random`] / [`Rng::random_range`] (also exported
//! under the `RngExt` alias). Everything is deterministic per seed — the
//! property the workspace's frozen benchmark seeds rely on — and the
//! generator (xoshiro256** seeded via SplitMix64) is a published, well-mixed
//! design, though not the same stream as crates.io `rand`.

use std::ops::Range;

/// The core of a random number generator: a source of `u64` words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-distributed type (`bool`, the
    /// unsigned integers, `f64` in `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range` (which must be non-empty).
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Samples `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Alias of [`Rng`] kept for source compatibility with callers that import
/// the extension-trait spelling.
pub use Rng as RngExt;

/// Types samplable uniformly over their whole domain (or `[0, 1)` for
/// floats), mirroring `rand`'s `Standard` distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 significand bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize);

/// Types supporting uniform sampling from a half-open range.
pub trait SampleUniform: Sized {
    /// Draws one value from `range`; panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample from empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Modulo bias is < span / 2^64 — negligible for the small
                // spans this workspace draws, and determinism is what the
                // frozen seeds actually require.
                let offset = (rng.next_u64() as u128 % span) as i128;
                (range.start as i128 + offset) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded through SplitMix64 (the seeding procedure recommended by the
    /// xoshiro authors).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3..10);
            assert!((3..10).contains(&v));
            let u = rng.random_range(0usize..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn bool_and_float_sampling() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut trues = 0;
        for _ in 0..1000 {
            if rng.random::<bool>() {
                trues += 1;
            }
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
        assert!((300..700).contains(&trues), "unbiased-ish: {trues}");
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw(rng: &mut (dyn RngCore + '_)) -> bool {
            rng.random::<bool>()
        }
        let mut rng = StdRng::seed_from_u64(1);
        let _ = draw(&mut rng);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.random_range(5..5);
    }
}
