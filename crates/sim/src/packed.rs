//! 64-way bit-parallel binary simulation.
//!
//! The exact restricted-MOA checker enumerates all binary initial states of
//! the faulty machine; this module simulates 64 of them per pass, one per bit
//! position ("slot"). Inputs are shared across slots (the same test sequence
//! drives every initial state); present-state bits differ per slot.

use std::ops::{Index, IndexMut};

use moa_netlist::{Circuit, Fault, FaultSite, FlipFlopId, NetId};

/// One 64-slot binary value per net: bit `k` of `values[net]` is the value of
/// `net` in scenario `k`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedValues {
    values: Vec<u64>,
}

impl PackedValues {
    /// An all-zero packed frame for `circuit`.
    pub fn new(circuit: &Circuit) -> Self {
        PackedValues {
            values: vec![0; circuit.num_nets()],
        }
    }
}

impl Index<NetId> for PackedValues {
    type Output = u64;

    #[inline]
    fn index(&self, net: NetId) -> &u64 {
        &self.values[net.index()]
    }
}

impl IndexMut<NetId> for PackedValues {
    #[inline]
    fn index_mut(&mut self, net: NetId) -> &mut u64 {
        &mut self.values[net.index()]
    }
}

#[inline]
fn broadcast(b: bool) -> u64 {
    if b {
        u64::MAX
    } else {
        0
    }
}

/// Evaluates one time frame for 64 scenarios at once.
///
/// `pattern[i]` drives primary input `i` identically in all slots;
/// `present_state[i]` gives flip-flop `i`'s per-slot values. `fault` (if any)
/// is injected in every slot.
///
/// # Panics
///
/// Panics if `pattern` or `present_state` have the wrong length.
pub fn run_packed_frame(
    circuit: &Circuit,
    pattern: &[bool],
    present_state: &[u64],
    fault: Option<&Fault>,
) -> PackedValues {
    assert_eq!(pattern.len(), circuit.num_inputs(), "pattern length");
    assert_eq!(
        present_state.len(),
        circuit.num_flip_flops(),
        "present-state length"
    );

    let mut values = PackedValues::new(circuit);
    for (i, &net) in circuit.inputs().iter().enumerate() {
        values[net] = broadcast(pattern[i]);
    }
    for (i, ff) in circuit.flip_flops().iter().enumerate() {
        values[ff.q()] = present_state[i];
    }
    if let Some(f) = fault {
        if let FaultSite::Net(net) = f.site {
            values[net] = broadcast(f.stuck);
        }
    }

    for &gid in circuit.topo_order() {
        let gate = circuit.gate(gid);
        let pin = |pin_index: usize| -> u64 {
            if let Some(f) = fault {
                if let FaultSite::GateInput { gate: fg, pin: fp } = f.site {
                    if fg == gid && fp == pin_index {
                        return broadcast(f.stuck);
                    }
                }
            }
            values[gate.inputs()[pin_index]]
        };
        use moa_logic::GateKind::{And, Nand, Or, Nor, Xor, Xnor, Not, Buf};
        let n = gate.inputs().len();
        let mut out = match gate.kind() {
            And | Nand => {
                let mut acc = u64::MAX;
                for i in 0..n {
                    acc &= pin(i);
                }
                acc
            }
            Or | Nor => {
                let mut acc = 0;
                for i in 0..n {
                    acc |= pin(i);
                }
                acc
            }
            Xor | Xnor => {
                let mut acc = 0;
                for i in 0..n {
                    acc ^= pin(i);
                }
                acc
            }
            Not | Buf => pin(0),
        };
        if gate.kind().inverting() {
            out = !out;
        }
        if let Some(f) = fault {
            if f.site == FaultSite::Net(gate.output()) {
                out = broadcast(f.stuck);
            }
        }
        values[gate.output()] = out;
    }
    values
}

/// Reads the packed next state, applying a flip-flop-input branch fault.
pub fn packed_next_state(
    circuit: &Circuit,
    values: &PackedValues,
    fault: Option<&Fault>,
) -> Vec<u64> {
    circuit
        .flip_flops()
        .iter()
        .enumerate()
        .map(|(i, ff)| {
            if let Some(f) = fault {
                if f.site == FaultSite::FlipFlopInput(FlipFlopId::new(i)) {
                    return broadcast(f.stuck);
                }
            }
            values[ff.d()]
        })
        .collect()
}

/// Reads the packed primary-output values.
pub fn packed_outputs(circuit: &Circuit, values: &PackedValues) -> Vec<u64> {
    circuit.outputs().iter().map(|&net| values[net]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use moa_logic::{GateKind, V3};
    use moa_netlist::CircuitBuilder;

    use crate::frame::{compute_frame, frame_next_state, frame_outputs};

    fn c1() -> Circuit {
        let mut b = CircuitBuilder::new("c1");
        b.add_input("a").unwrap();
        b.add_input("b").unwrap();
        b.add_flip_flop("q0", "d0").unwrap();
        b.add_flip_flop("q1", "d1").unwrap();
        b.add_gate(GateKind::Nand, "w", &["a", "q0"]).unwrap();
        b.add_gate(GateKind::Xor, "d0", &["w", "q1"]).unwrap();
        b.add_gate(GateKind::Nor, "d1", &["b", "q0"]).unwrap();
        b.add_gate(GateKind::Not, "z", &["w"]).unwrap();
        b.add_output("z");
        b.finish().unwrap()
    }

    /// The packed simulator must agree with the scalar simulator on every
    /// slot, for all 4 initial states packed into the low bits.
    #[test]
    fn packed_agrees_with_scalar() {
        let c = c1();
        for (a, b) in [(false, false), (true, false), (false, true), (true, true)] {
            // Slot k encodes initial state (k & 1, k >> 1).
            let state = vec![0b1010u64, 0b1100u64];
            let packed = run_packed_frame(&c, &[a, b], &state, None);
            let p_outs = packed_outputs(&c, &packed);
            let p_next = packed_next_state(&c, &packed, None);
            for slot in 0..4u32 {
                let s0 = V3::from_bool(state[0] >> slot & 1 == 1);
                let s1 = V3::from_bool(state[1] >> slot & 1 == 1);
                let frame = compute_frame(
                    &c,
                    &[V3::from_bool(a), V3::from_bool(b)],
                    &[s0, s1],
                    None,
                );
                let s_outs = frame_outputs(&c, &frame);
                let s_next = frame_next_state(&c, &frame, None);
                for (o, &word) in p_outs.iter().enumerate() {
                    assert_eq!(
                        V3::from_bool(word >> slot & 1 == 1),
                        s_outs[o],
                        "output {o} slot {slot} inputs {a}{b}"
                    );
                }
                for (i, &word) in p_next.iter().enumerate() {
                    assert_eq!(
                        V3::from_bool(word >> slot & 1 == 1),
                        s_next[i],
                        "next-state {i} slot {slot}"
                    );
                }
            }
        }
    }

    /// Fault injection must also agree slot-by-slot with the scalar path.
    #[test]
    fn packed_fault_injection_agrees_with_scalar() {
        let c = c1();
        let w = c.find_net("w").unwrap();
        let faults = [
            Fault::stem(w, false),
            Fault::stem(c.find_net("a").unwrap(), true),
            Fault::flip_flop_input(FlipFlopId::new(0), true),
        ];
        for fault in &faults {
            let state = vec![0b0110u64, 0b0011u64];
            let packed = run_packed_frame(&c, &[true, false], &state, Some(fault));
            let p_next = packed_next_state(&c, &packed, Some(fault));
            let p_outs = packed_outputs(&c, &packed);
            for slot in 0..4u32 {
                let s: Vec<V3> = state
                    .iter()
                    .map(|word| V3::from_bool(word >> slot & 1 == 1))
                    .collect();
                let frame = compute_frame(&c, &[V3::One, V3::Zero], &s, Some(fault));
                let s_outs = frame_outputs(&c, &frame);
                let s_next = frame_next_state(&c, &frame, Some(fault));
                for (o, &word) in p_outs.iter().enumerate() {
                    assert_eq!(V3::from_bool(word >> slot & 1 == 1), s_outs[o]);
                }
                for (i, &word) in p_next.iter().enumerate() {
                    assert_eq!(V3::from_bool(word >> slot & 1 == 1), s_next[i]);
                }
            }
        }
    }
}
