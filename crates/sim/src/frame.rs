//! Single time-frame evaluation with stuck-at fault injection.

use std::ops::{Index, IndexMut};

use moa_logic::V3;
use moa_netlist::{Circuit, Fault, FaultSite, NetId};

/// The three-valued value of every net in one time frame.
///
/// Indexable by [`NetId`]. Freshly created frames hold `X` everywhere.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetValues {
    values: Vec<V3>,
}

impl NetValues {
    /// An all-`X` frame for `circuit`.
    pub fn new(circuit: &Circuit) -> Self {
        NetValues {
            values: vec![V3::X; circuit.num_nets()],
        }
    }

    /// Number of nets.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when the frame has no nets (only for degenerate circuits).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The raw values slice.
    pub fn as_slice(&self) -> &[V3] {
        &self.values
    }

    /// Number of nets currently specified (binary).
    pub fn num_specified(&self) -> usize {
        self.values.iter().filter(|v| v.is_specified()).count()
    }

    /// Overwrites this frame with `other`'s values, reusing the allocation.
    pub fn copy_from(&mut self, other: &NetValues) {
        self.values.clear();
        self.values.extend_from_slice(&other.values);
    }
}

impl Index<NetId> for NetValues {
    type Output = V3;

    #[inline]
    fn index(&self, net: NetId) -> &V3 {
        &self.values[net.index()]
    }
}

impl IndexMut<NetId> for NetValues {
    #[inline]
    fn index_mut(&mut self, net: NetId) -> &mut V3 {
        &mut self.values[net.index()]
    }
}

/// Reads the value seen by input pin `pin` of the gate with id `gate_index`,
/// applying a gate-input branch fault if one is injected there.
#[inline]
pub(crate) fn pin_value(
    values: &NetValues,
    net: NetId,
    gate_index: usize,
    pin: usize,
    fault: Option<&Fault>,
) -> V3 {
    if let Some(f) = fault {
        if let FaultSite::GateInput { gate, pin: fpin } = f.site {
            if gate.index() == gate_index && fpin == pin {
                return V3::from_bool(f.stuck);
            }
        }
    }
    values[net]
}

/// Evaluates one time frame of `circuit`.
///
/// `pattern` gives the primary-input values (in `circuit.inputs()` order) and
/// `present_state` the flip-flop output values (in `circuit.flip_flops()`
/// order — the paper's `y_i`). The returned frame holds the value of every
/// net, with `fault` (if any) injected: a stem fault pins the value of its
/// net, a branch fault pins only the reading pin (and therefore is *not*
/// visible in the returned net values — use [`frame_next_state`] to read
/// flip-flop data pins with branch faults applied).
///
/// # Panics
///
/// Panics if `pattern` or `present_state` have the wrong length.
///
/// # Example
///
/// ```
/// use moa_logic::V3;
/// use moa_netlist::parse_bench;
/// use moa_sim::compute_frame;
///
/// let c = parse_bench("INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n")?;
/// let frame = compute_frame(&c, &[V3::One], &[], None);
/// assert_eq!(frame[c.find_net("z").unwrap()], V3::Zero);
/// # Ok::<(), moa_netlist::NetlistError>(())
/// ```
pub fn compute_frame(
    circuit: &Circuit,
    pattern: &[V3],
    present_state: &[V3],
    fault: Option<&Fault>,
) -> NetValues {
    assert_eq!(pattern.len(), circuit.num_inputs(), "pattern length");
    assert_eq!(
        present_state.len(),
        circuit.num_flip_flops(),
        "present-state length"
    );

    let mut values = NetValues::new(circuit);
    for (i, &net) in circuit.inputs().iter().enumerate() {
        values[net] = pattern[i];
    }
    for (i, ff) in circuit.flip_flops().iter().enumerate() {
        values[ff.q()] = present_state[i];
    }
    // A stem fault on a source net (PI or flip-flop output) overrides it
    // before any gate reads it.
    if let Some(f) = fault {
        if let FaultSite::Net(net) = f.site {
            values[net] = V3::from_bool(f.stuck);
        }
    }

    let mut input_buffer: Vec<V3> = Vec::with_capacity(8);
    for &gid in circuit.topo_order() {
        let gate = circuit.gate(gid);
        input_buffer.clear();
        for (pin, &net) in gate.inputs().iter().enumerate() {
            input_buffer.push(pin_value(&values, net, gid.index(), pin, fault));
        }
        let mut out = gate.kind().eval(&input_buffer);
        if let Some(f) = fault {
            if f.site == FaultSite::Net(gate.output()) {
                out = V3::from_bool(f.stuck);
            }
        }
        values[gate.output()] = out;
    }
    values
}

/// Reads the next state (flip-flop data pins, the paper's `Y_i`) from a
/// computed frame, applying a flip-flop-input branch fault if injected.
pub fn frame_next_state(circuit: &Circuit, values: &NetValues, fault: Option<&Fault>) -> Vec<V3> {
    circuit
        .flip_flops()
        .iter()
        .enumerate()
        .map(|(i, ff)| {
            if let Some(f) = fault {
                if f.site == FaultSite::FlipFlopInput(moa_netlist::FlipFlopId::new(i)) {
                    return V3::from_bool(f.stuck);
                }
            }
            values[ff.d()]
        })
        .collect()
}

/// Reads the primary-output values from a computed frame.
pub fn frame_outputs(circuit: &Circuit, values: &NetValues) -> Vec<V3> {
    circuit.outputs().iter().map(|&net| values[net]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use moa_logic::GateKind;
    use moa_netlist::{CircuitBuilder, FlipFlopId, GateId};

    fn c1() -> Circuit {
        let mut b = CircuitBuilder::new("c1");
        b.add_input("a").unwrap();
        b.add_input("b").unwrap();
        b.add_flip_flop("q", "d").unwrap();
        b.add_gate(GateKind::And, "w", &["a", "q"]).unwrap();
        b.add_gate(GateKind::Or, "d", &["w", "b"]).unwrap();
        b.add_gate(GateKind::Not, "z", &["w"]).unwrap();
        b.add_output("z");
        b.finish().unwrap()
    }

    #[test]
    fn fault_free_evaluation() {
        let c = c1();
        let f = compute_frame(&c, &[V3::One, V3::Zero], &[V3::One], None);
        assert_eq!(f[c.find_net("w").unwrap()], V3::One);
        assert_eq!(f[c.find_net("d").unwrap()], V3::One);
        assert_eq!(f[c.find_net("z").unwrap()], V3::Zero);
        assert_eq!(frame_outputs(&c, &f), vec![V3::Zero]);
        assert_eq!(frame_next_state(&c, &f, None), vec![V3::One]);
    }

    #[test]
    fn unknown_state_propagates() {
        let c = c1();
        let f = compute_frame(&c, &[V3::One, V3::Zero], &[V3::X], None);
        assert_eq!(f[c.find_net("w").unwrap()], V3::X);
        assert_eq!(f[c.find_net("z").unwrap()], V3::X);
    }

    #[test]
    fn stem_fault_on_gate_output() {
        let c = c1();
        let w = c.find_net("w").unwrap();
        let fault = Fault::stem(w, true); // w stuck-at-1
        let f = compute_frame(&c, &[V3::Zero, V3::Zero], &[V3::Zero], Some(&fault));
        assert_eq!(f[w], V3::One, "stem fault pins the net");
        assert_eq!(f[c.find_net("z").unwrap()], V3::Zero);
        assert_eq!(f[c.find_net("d").unwrap()], V3::One);
    }

    #[test]
    fn stem_fault_on_primary_input() {
        let c = c1();
        let a = c.find_net("a").unwrap();
        let fault = Fault::stem(a, true);
        let f = compute_frame(&c, &[V3::Zero, V3::Zero], &[V3::One], Some(&fault));
        assert_eq!(f[c.find_net("w").unwrap()], V3::One);
    }

    #[test]
    fn stem_fault_on_flip_flop_output() {
        let c = c1();
        let q = c.find_net("q").unwrap();
        let fault = Fault::stem(q, false);
        let f = compute_frame(&c, &[V3::One, V3::Zero], &[V3::One], Some(&fault));
        assert_eq!(f[c.find_net("w").unwrap()], V3::Zero);
    }

    #[test]
    fn branch_fault_affects_only_its_pin() {
        let mut b = CircuitBuilder::new("br");
        b.add_input("a").unwrap();
        b.add_gate(GateKind::Buf, "u", &["a"]).unwrap();
        b.add_gate(GateKind::Buf, "v", &["a"]).unwrap();
        b.add_output("u");
        b.add_output("v");
        let c = b.finish().unwrap();
        // Branch fault on v's pin only.
        let moa_netlist::Driver::Gate(v_gate) = c.driver(c.find_net("v").unwrap()) else {
            unreachable!()
        };
        let fault = Fault::gate_input(v_gate, 0, true);
        let f = compute_frame(&c, &[V3::Zero], &[], Some(&fault));
        assert_eq!(f[c.find_net("u").unwrap()], V3::Zero, "u unaffected");
        assert_eq!(f[c.find_net("v").unwrap()], V3::One, "v sees stuck pin");
        // The net `a` itself is unaffected by the branch fault.
        assert_eq!(f[c.find_net("a").unwrap()], V3::Zero);
    }

    #[test]
    fn ff_input_branch_fault_applies_at_next_state() {
        let c = c1();
        let fault = Fault::flip_flop_input(FlipFlopId::new(0), false);
        let f = compute_frame(&c, &[V3::One, V3::One], &[V3::One], Some(&fault));
        // The d-net computes 1, but the flip-flop latches the stuck 0.
        assert_eq!(f[c.find_net("d").unwrap()], V3::One);
        assert_eq!(frame_next_state(&c, &f, Some(&fault)), vec![V3::Zero]);
    }

    #[test]
    fn pin_value_helper_only_matches_its_site() {
        let c = c1();
        let fault = Fault::gate_input(GateId::new(0), 1, true);
        let values = NetValues::new(&c);
        let net = c.gate(GateId::new(0)).inputs()[1];
        assert_eq!(pin_value(&values, net, 0, 1, Some(&fault)), V3::One);
        assert_eq!(pin_value(&values, net, 0, 0, Some(&fault)), V3::X);
        assert_eq!(pin_value(&values, net, 1, 1, Some(&fault)), V3::X);
    }

    #[test]
    fn num_specified_counts() {
        let c = c1();
        let mut values = NetValues::new(&c);
        assert_eq!(values.num_specified(), 0);
        values[c.find_net("a").unwrap()] = V3::One;
        assert_eq!(values.num_specified(), 1);
        assert_eq!(values.len(), c.num_nets());
        assert!(!values.is_empty());
    }
}
