//! Input test sequences.

use std::fmt;

use moa_logic::{parse_word, V3};
use rand::Rng;

/// A test sequence `T`: one input pattern per time unit.
///
/// Pattern `u` (the paper's `T[u]`) assigns a value to every primary input of
/// the target circuit, in the circuit's input order. Patterns may contain `X`
/// values, although all sequences produced by this workspace are binary, as in
/// the paper.
///
/// # Example
///
/// ```
/// use moa_sim::TestSequence;
///
/// let seq = TestSequence::from_words(&["10", "01", "11"])?;
/// assert_eq!(seq.len(), 3);
/// assert_eq!(seq.num_inputs(), 2);
/// # Ok::<(), moa_sim::ParseSequenceError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestSequence {
    num_inputs: usize,
    patterns: Vec<Vec<V3>>,
}

impl TestSequence {
    /// Creates a sequence from explicit patterns.
    ///
    /// # Panics
    ///
    /// Panics if the patterns do not all have length `num_inputs`.
    pub fn new(num_inputs: usize, patterns: Vec<Vec<V3>>) -> Self {
        for (u, p) in patterns.iter().enumerate() {
            assert_eq!(
                p.len(),
                num_inputs,
                "pattern {u} has wrong width (expected {num_inputs})"
            );
        }
        TestSequence {
            num_inputs,
            patterns,
        }
    }

    /// Parses patterns from words over `{0, 1, x}`, e.g. `["10x", "011"]`.
    ///
    /// # Errors
    ///
    /// Returns [`ParseSequenceError`] on invalid characters or ragged widths.
    pub fn from_words(words: &[&str]) -> Result<Self, ParseSequenceError> {
        let mut patterns = Vec::with_capacity(words.len());
        let mut width = None;
        for (index, word) in words.iter().enumerate() {
            let p = parse_word(word).map_err(|source| ParseSequenceError {
                index,
                kind: ParseSequenceErrorKind::Word(source),
            })?;
            if *width.get_or_insert(p.len()) != p.len() {
                return Err(ParseSequenceError {
                    index,
                    kind: ParseSequenceErrorKind::RaggedWidth {
                        expected: width.unwrap(),
                        found: p.len(),
                    },
                });
            }
            patterns.push(p);
        }
        Ok(TestSequence {
            num_inputs: width.unwrap_or(0),
            patterns,
        })
    }

    /// Generates a uniformly random *binary* sequence of `len` patterns over
    /// `num_inputs` inputs, as used by the paper's random-pattern experiments.
    pub fn random<R: Rng + ?Sized>(num_inputs: usize, len: usize, rng: &mut R) -> Self {
        let patterns = (0..len)
            .map(|_| {
                (0..num_inputs)
                    .map(|_| V3::from_bool(rng.random::<bool>()))
                    .collect()
            })
            .collect();
        TestSequence {
            num_inputs,
            patterns,
        }
    }

    /// Sequence length `L` in time units.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// `true` for the empty sequence.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Number of primary inputs each pattern drives.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// The input pattern at time unit `u` (the paper's `T[u]`).
    ///
    /// # Panics
    ///
    /// Panics if `u >= self.len()`.
    pub fn pattern(&self, u: usize) -> &[V3] {
        &self.patterns[u]
    }

    /// Iterates over the patterns in time order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[V3]> {
        self.patterns.iter().map(Vec::as_slice)
    }

    /// Appends a pattern.
    ///
    /// # Panics
    ///
    /// Panics if the pattern width differs from [`TestSequence::num_inputs`].
    pub fn push(&mut self, pattern: Vec<V3>) {
        assert_eq!(pattern.len(), self.num_inputs, "pattern width");
        self.patterns.push(pattern);
    }

    /// Truncates to the first `len` patterns.
    pub fn truncate(&mut self, len: usize) {
        self.patterns.truncate(len);
    }

    /// `true` if every value of every pattern is binary.
    pub fn is_fully_specified(&self) -> bool {
        self.patterns
            .iter()
            .all(|p| p.iter().all(|v| v.is_specified()))
    }
}

/// Error from [`TestSequence::from_words`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSequenceError {
    index: usize,
    kind: ParseSequenceErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ParseSequenceErrorKind {
    Word(moa_logic::ParseWordError),
    RaggedWidth { expected: usize, found: usize },
}

impl ParseSequenceError {
    /// Index of the offending pattern.
    pub fn index(&self) -> usize {
        self.index
    }
}

impl fmt::Display for ParseSequenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ParseSequenceErrorKind::Word(e) => {
                write!(f, "pattern {}: {e}", self.index)
            }
            ParseSequenceErrorKind::RaggedWidth { expected, found } => write!(
                f,
                "pattern {} has width {found}, expected {expected}",
                self.index
            ),
        }
    }
}

impl std::error::Error for ParseSequenceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.kind {
            ParseSequenceErrorKind::Word(e) => Some(e),
            ParseSequenceErrorKind::RaggedWidth { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn from_words_and_accessors() {
        let seq = TestSequence::from_words(&["10", "x1"]).unwrap();
        assert_eq!(seq.len(), 2);
        assert_eq!(seq.num_inputs(), 2);
        assert_eq!(seq.pattern(1), &[V3::X, V3::One]);
        assert!(!seq.is_fully_specified());
        assert!(!seq.is_empty());
    }

    #[test]
    fn ragged_width_rejected() {
        let err = TestSequence::from_words(&["10", "011"]).unwrap_err();
        assert_eq!(err.index(), 1);
        assert!(err.to_string().contains("width 3"));
    }

    #[test]
    fn bad_character_rejected() {
        let err = TestSequence::from_words(&["10", "0?"]).unwrap_err();
        assert_eq!(err.index(), 1);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let mut rng1 = StdRng::seed_from_u64(7);
        let mut rng2 = StdRng::seed_from_u64(7);
        let a = TestSequence::random(5, 20, &mut rng1);
        let b = TestSequence::random(5, 20, &mut rng2);
        assert_eq!(a, b);
        assert!(a.is_fully_specified());
        assert_eq!(a.len(), 20);
    }

    #[test]
    fn push_and_truncate() {
        let mut seq = TestSequence::from_words(&["10"]).unwrap();
        seq.push(vec![V3::One, V3::One]);
        assert_eq!(seq.len(), 2);
        seq.truncate(1);
        assert_eq!(seq.len(), 1);
    }

    #[test]
    #[should_panic(expected = "pattern width")]
    fn push_wrong_width_panics() {
        let mut seq = TestSequence::from_words(&["10"]).unwrap();
        seq.push(vec![V3::One]);
    }

    #[test]
    fn empty_sequence() {
        let seq = TestSequence::from_words(&[]).unwrap();
        assert!(seq.is_empty());
        assert_eq!(seq.num_inputs(), 0);
    }
}
