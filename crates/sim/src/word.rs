//! The machine-word abstraction under every packed kernel.
//!
//! The bit-parallel simulators carry one scenario (or one fault) per bit
//! *lane* of a word. [`Word`] abstracts the word itself so the same kernel
//! source instantiates at 64 lanes (`u64`), 128 lanes (`[u64; 2]`) or 256
//! lanes (`[u64; 4]`): every operation a kernel needs — the bitwise algebra
//! of the dual-rail encoding, single-lane access, lane masks and set-lane
//! iteration — is expressed here once, lane-for-lane identical to the `u64`
//! original. Block words are plain fixed-size arrays evaluated element-wise;
//! the compiler auto-vectorizes the loops (SSE2 folds `[u64; 2]` into one
//! 128-bit operation, AVX2 folds `[u64; 4]`), so widening the word amortizes
//! the per-gate bookkeeping of a kernel pass over more lanes without any
//! platform-specific code.
//!
//! Lane numbering is global and little-endian: lane `k` of a block word
//! lives in block `k / 64`, bit `k % 64`, so lane `k`'s scenario is the same
//! scenario the `u64` kernel would place at bit `k` of word `k / 64` — the
//! property that makes wide and narrow kernels bit-identical per lane.

/// A fixed-width machine word of [`LANES`](Word::LANES) independent bit
/// lanes.
///
/// All operations are lane-wise and lanes never interact, which is the
/// invariant every packed kernel relies on: lane `k` of a wide simulation is
/// exactly the scalar simulation of scenario `k`.
pub trait Word:
    Copy + Clone + PartialEq + Eq + Default + Send + Sync + std::fmt::Debug + 'static
{
    /// Number of bit lanes (64 × blocks).
    const LANES: usize;
    /// All lanes clear.
    const ZERO: Self;
    /// All lanes set.
    const ONES: Self;

    /// Broadcasts one bit to every lane.
    #[inline]
    fn splat(bit: bool) -> Self {
        if bit {
            Self::ONES
        } else {
            Self::ZERO
        }
    }

    /// Lane-wise AND.
    #[must_use]
    fn and(self, rhs: Self) -> Self;
    /// Lane-wise OR.
    #[must_use]
    fn or(self, rhs: Self) -> Self;
    /// Lane-wise XOR.
    #[must_use]
    fn xor(self, rhs: Self) -> Self;
    /// Lane-wise NOT.
    #[must_use]
    fn not(self) -> Self;
    /// `self & !mask` — clears the lanes set in `mask`.
    #[inline]
    #[must_use]
    fn and_not(self, mask: Self) -> Self {
        self.and(mask.not())
    }
    /// `true` when no lane is set.
    fn is_zero(self) -> bool;

    /// The word with only lane `lane` set.
    fn lane_bit(lane: usize) -> Self;
    /// Reads lane `lane`.
    fn test_lane(self, lane: usize) -> bool;
    /// Sets lane `lane`.
    fn set_lane(&mut self, lane: usize);
    /// The word with the `n` lowest lanes set (`n <= LANES`).
    fn low_mask(n: usize) -> Self;
    /// Calls `f` with the index of every set lane, in ascending order.
    fn for_each_set_lane(self, f: impl FnMut(usize));
}

impl Word for u64 {
    const LANES: usize = 64;
    const ZERO: Self = 0;
    const ONES: Self = u64::MAX;

    #[inline]
    fn and(self, rhs: Self) -> Self {
        self & rhs
    }
    #[inline]
    fn or(self, rhs: Self) -> Self {
        self | rhs
    }
    #[inline]
    fn xor(self, rhs: Self) -> Self {
        self ^ rhs
    }
    #[inline]
    fn not(self) -> Self {
        !self
    }
    #[inline]
    fn is_zero(self) -> bool {
        self == 0
    }
    #[inline]
    fn lane_bit(lane: usize) -> Self {
        1u64 << lane
    }
    #[inline]
    fn test_lane(self, lane: usize) -> bool {
        self >> lane & 1 == 1
    }
    #[inline]
    fn set_lane(&mut self, lane: usize) {
        *self |= 1u64 << lane;
    }
    #[inline]
    fn low_mask(n: usize) -> Self {
        debug_assert!(n <= 64);
        if n == 64 {
            u64::MAX
        } else {
            (1u64 << n) - 1
        }
    }
    #[inline]
    fn for_each_set_lane(self, mut f: impl FnMut(usize)) {
        let mut bits = self;
        while bits != 0 {
            f(bits.trailing_zeros() as usize);
            bits &= bits - 1;
        }
    }
}

/// Implements [`Word`] for `[u64; N]` block words. Plain element-wise loops
/// over fixed-size arrays: the compiler unrolls and vectorizes them.
macro_rules! impl_word_for_blocks {
    ($blocks:literal) => {
        impl Word for [u64; $blocks] {
            const LANES: usize = 64 * $blocks;
            const ZERO: Self = [0; $blocks];
            const ONES: Self = [u64::MAX; $blocks];

            #[inline]
            fn and(self, rhs: Self) -> Self {
                let mut out = [0u64; $blocks];
                for i in 0..$blocks {
                    out[i] = self[i] & rhs[i];
                }
                out
            }
            #[inline]
            fn or(self, rhs: Self) -> Self {
                let mut out = [0u64; $blocks];
                for i in 0..$blocks {
                    out[i] = self[i] | rhs[i];
                }
                out
            }
            #[inline]
            fn xor(self, rhs: Self) -> Self {
                let mut out = [0u64; $blocks];
                for i in 0..$blocks {
                    out[i] = self[i] ^ rhs[i];
                }
                out
            }
            #[inline]
            fn not(self) -> Self {
                let mut out = [0u64; $blocks];
                for i in 0..$blocks {
                    out[i] = !self[i];
                }
                out
            }
            #[inline]
            fn is_zero(self) -> bool {
                let mut any = 0u64;
                for i in 0..$blocks {
                    any |= self[i];
                }
                any == 0
            }
            #[inline]
            fn lane_bit(lane: usize) -> Self {
                let mut out = [0u64; $blocks];
                out[lane / 64] = 1u64 << (lane % 64);
                out
            }
            #[inline]
            fn test_lane(self, lane: usize) -> bool {
                self[lane / 64] >> (lane % 64) & 1 == 1
            }
            #[inline]
            fn set_lane(&mut self, lane: usize) {
                self[lane / 64] |= 1u64 << (lane % 64);
            }
            #[inline]
            fn low_mask(n: usize) -> Self {
                debug_assert!(n <= Self::LANES);
                let mut out = [0u64; $blocks];
                for (i, block) in out.iter_mut().enumerate() {
                    let filled = n.saturating_sub(i * 64).min(64);
                    *block = <u64 as Word>::low_mask(filled);
                }
                out
            }
            #[inline]
            fn for_each_set_lane(self, mut f: impl FnMut(usize)) {
                for (i, &block) in self.iter().enumerate() {
                    block.for_each_set_lane(|lane| f(i * 64 + lane));
                }
            }
        }
    };
}

impl_word_for_blocks!(2);
impl_word_for_blocks!(4);

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<W: Word>() {
        // Lane accessors agree with lane_bit across the whole width.
        for lane in 0..W::LANES {
            let bit = W::lane_bit(lane);
            assert!(bit.test_lane(lane));
            assert!(!bit.is_zero());
            let mut w = W::ZERO;
            w.set_lane(lane);
            assert_eq!(w, bit);
            for other in 0..W::LANES {
                assert_eq!(bit.test_lane(other), other == lane);
            }
            let mut seen = Vec::new();
            bit.for_each_set_lane(|k| seen.push(k));
            assert_eq!(seen, vec![lane]);
        }
        // low_mask(n) sets exactly the n lowest lanes.
        for n in [0, 1, 63, 64, W::LANES - 1, W::LANES] {
            let mask = W::low_mask(n);
            for lane in 0..W::LANES {
                assert_eq!(mask.test_lane(lane), lane < n, "n={n} lane={lane}");
            }
        }
        assert_eq!(W::low_mask(W::LANES), W::ONES);
        assert_eq!(W::low_mask(0), W::ZERO);
        // The algebra matches u64 lane-for-lane on a pseudo-random pattern.
        let mut a = W::ZERO;
        let mut b = W::ZERO;
        for lane in 0..W::LANES {
            if lane % 3 == 0 {
                a.set_lane(lane);
            }
            if lane % 5 != 1 {
                b.set_lane(lane);
            }
        }
        for lane in 0..W::LANES {
            let (x, y) = (a.test_lane(lane), b.test_lane(lane));
            assert_eq!(a.and(b).test_lane(lane), x & y);
            assert_eq!(a.or(b).test_lane(lane), x | y);
            assert_eq!(a.xor(b).test_lane(lane), x ^ y);
            assert_eq!(a.not().test_lane(lane), !x);
            assert_eq!(a.and_not(b).test_lane(lane), x && !y);
        }
        assert!(W::ZERO.is_zero());
        assert!(!W::ONES.is_zero());
        assert_eq!(W::splat(true), W::ONES);
        assert_eq!(W::splat(false), W::ZERO);
    }

    #[test]
    fn u64_word() {
        roundtrip::<u64>();
    }

    #[test]
    fn two_block_word() {
        roundtrip::<[u64; 2]>();
    }

    #[test]
    fn four_block_word() {
        roundtrip::<[u64; 4]>();
    }

    /// Set lanes enumerate in ascending global order across block
    /// boundaries — the order the screening kernel relies on when recording
    /// earliest detections.
    #[test]
    fn set_lane_iteration_is_ascending_across_blocks() {
        let mut w = <[u64; 4]>::ZERO;
        for lane in [0, 63, 64, 127, 128, 200, 255] {
            w.set_lane(lane);
        }
        let mut seen = Vec::new();
        w.for_each_set_lane(|k| seen.push(k));
        assert_eq!(seen, vec![0, 63, 64, 127, 128, 200, 255]);
    }
}
