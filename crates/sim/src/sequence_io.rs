//! Plain-text serialization of test sequences.
//!
//! The format is one pattern per line over `{0, 1, x}`, with `#` comments and
//! blank lines ignored — the same shape classic ATPG tools exchange pattern
//! files in:
//!
//! ```text
//! # s27, 4 inputs
//! 1011
//! 0000
//! ```

use moa_logic::format_word;

use crate::sequence::{ParseSequenceError, TestSequence};

impl TestSequence {
    /// Serializes the sequence as one pattern word per line.
    ///
    /// # Example
    ///
    /// ```
    /// use moa_sim::TestSequence;
    ///
    /// let seq = TestSequence::from_words(&["10", "x1"])?;
    /// assert_eq!(seq.to_text(), "10\nx1\n");
    /// # Ok::<(), moa_sim::ParseSequenceError>(())
    /// ```
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for p in self.iter() {
            out.push_str(&format_word(p));
            out.push('\n');
        }
        out
    }

    /// Parses the one-pattern-per-line format (see the module docs).
    ///
    /// # Errors
    ///
    /// Returns [`ParseSequenceError`] on invalid characters or ragged pattern
    /// widths; the reported index counts patterns, not file lines.
    ///
    /// # Example
    ///
    /// ```
    /// use moa_sim::TestSequence;
    ///
    /// let seq = TestSequence::parse_text("# two patterns\n10\n01\n")?;
    /// assert_eq!(seq.len(), 2);
    /// # Ok::<(), moa_sim::ParseSequenceError>(())
    /// ```
    pub fn parse_text(text: &str) -> Result<Self, ParseSequenceError> {
        let words: Vec<&str> = text
            .lines()
            .map(|line| match line.find('#') {
                Some(pos) => line[..pos].trim(),
                None => line.trim(),
            })
            .filter(|line| !line.is_empty())
            .collect();
        TestSequence::from_words(&words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let seq = TestSequence::from_words(&["101", "01x", "000"]).unwrap();
        let text = seq.to_text();
        assert_eq!(TestSequence::parse_text(&text).unwrap(), seq);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let seq = TestSequence::parse_text("\n# header\n10  # trailing\n\n01\n").unwrap();
        assert_eq!(seq.len(), 2);
        assert_eq!(seq.num_inputs(), 2);
    }

    #[test]
    fn ragged_lines_error() {
        assert!(TestSequence::parse_text("10\n011\n").is_err());
    }

    #[test]
    fn empty_text_is_empty_sequence() {
        let seq = TestSequence::parse_text("# nothing\n").unwrap();
        assert!(seq.is_empty());
    }
}
