//! Whole-sequence simulation traces.

use moa_logic::V3;
use moa_netlist::{Circuit, Fault};

use crate::frame::{compute_frame, frame_next_state, frame_outputs};
use crate::TestSequence;

/// The result of simulating a test sequence: the state and output sequences
/// of Table 1 of the paper.
///
/// For a sequence of length `L`:
///
/// - `states` has `L + 1` entries; `states[u]` is the present state at time
///   unit `u` (`states[0]` is the initial state, `states[L]` the state after
///   the whole sequence — the paper's "time unit `L`"),
/// - `outputs` has `L` entries; `outputs[u]` is the primary-output pattern at
///   time unit `u`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimTrace {
    /// Present state per time unit (`L + 1` entries of `num_flip_flops` each).
    pub states: Vec<Vec<V3>>,
    /// Output pattern per time unit (`L` entries of `num_outputs` each).
    pub outputs: Vec<Vec<V3>>,
}

impl SimTrace {
    /// Sequence length `L`.
    pub fn len(&self) -> usize {
        self.outputs.len()
    }

    /// `true` for a zero-length trace.
    pub fn is_empty(&self) -> bool {
        self.outputs.is_empty()
    }

    /// The paper's `N_sv(u)`: number of unspecified state variables at time
    /// unit `u` (valid for `0 <= u <= L`).
    pub fn num_unspecified_state_vars(&self, u: usize) -> usize {
        self.states[u].iter().filter(|v| !v.is_specified()).count()
    }
}

/// Simulates `circuit` under `seq` with an optional fault injected, starting
/// from `initial_state` (all-`X` when `None`).
///
/// This is conventional three-valued simulation: the machinery behind both
/// the fault-free reference response and the faulty-circuit state/output
/// sequences that the expansion procedure starts from.
///
/// # Panics
///
/// Panics if `seq` width or `initial_state` length do not match the circuit.
///
/// # Example
///
/// ```
/// use moa_netlist::parse_bench;
/// use moa_sim::{simulate, TestSequence};
///
/// let c = parse_bench("INPUT(a)\nOUTPUT(q)\nq = DFF(d)\nd = AND(a, a)\n")?;
/// let trace = simulate(&c, &TestSequence::from_words(&["1", "0"])?, None);
/// // After the first pattern the flip-flop holds 1.
/// assert_eq!(trace.states[1][0], moa_logic::V3::One);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn simulate(circuit: &Circuit, seq: &TestSequence, fault: Option<&Fault>) -> SimTrace {
    simulate_from(circuit, seq, fault, None)
}

/// Like [`simulate`], but from an explicit initial state.
pub fn simulate_from(
    circuit: &Circuit,
    seq: &TestSequence,
    fault: Option<&Fault>,
    initial_state: Option<&[V3]>,
) -> SimTrace {
    assert_eq!(seq.num_inputs(), circuit.num_inputs(), "sequence width");
    let state0: Vec<V3> = match initial_state {
        Some(s) => {
            assert_eq!(s.len(), circuit.num_flip_flops(), "initial state length");
            s.to_vec()
        }
        None => vec![V3::X; circuit.num_flip_flops()],
    };

    let mut states = Vec::with_capacity(seq.len() + 1);
    let mut outputs = Vec::with_capacity(seq.len());
    states.push(state0);
    for u in 0..seq.len() {
        let frame = compute_frame(circuit, seq.pattern(u), &states[u], fault);
        outputs.push(frame_outputs(circuit, &frame));
        states.push(frame_next_state(circuit, &frame, fault));
    }
    SimTrace { states, outputs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moa_logic::GateKind;
    use moa_netlist::CircuitBuilder;

    /// A resettable set/hold register: d = OR(set, AND(hold, q)).
    fn set_hold() -> Circuit {
        let mut b = CircuitBuilder::new("sethold");
        b.add_input("set").unwrap();
        b.add_input("hold").unwrap();
        b.add_flip_flop("q", "d").unwrap();
        b.add_gate(GateKind::And, "w", &["hold", "q"]).unwrap();
        b.add_gate(GateKind::Or, "d", &["set", "w"]).unwrap();
        b.add_gate(GateKind::Buf, "z", &["q"]).unwrap();
        b.add_output("z");
        b.finish().unwrap()
    }

    #[test]
    fn initialization_by_controlling_inputs() {
        let c = set_hold();
        // set=1 initializes q to 1 regardless of the unknown start state.
        let seq = TestSequence::from_words(&["10", "01", "01"]).unwrap();
        let t = simulate(&c, &seq, None);
        assert_eq!(t.states[0], vec![V3::X]);
        assert_eq!(t.outputs[0], vec![V3::X]);
        assert_eq!(t.states[1], vec![V3::One]);
        assert_eq!(t.outputs[1], vec![V3::One]);
        assert_eq!(t.states[2], vec![V3::One], "hold keeps the value");
        assert_eq!(t.num_unspecified_state_vars(0), 1);
        assert_eq!(t.num_unspecified_state_vars(1), 0);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn x_state_persists_without_initialization() {
        let c = set_hold();
        // set=0, hold=1 → q stays whatever it was: X forever.
        let seq = TestSequence::from_words(&["01", "01"]).unwrap();
        let t = simulate(&c, &seq, None);
        assert_eq!(t.states[2], vec![V3::X]);
    }

    #[test]
    fn explicit_initial_state() {
        let c = set_hold();
        let seq = TestSequence::from_words(&["01"]).unwrap();
        let t = simulate_from(&c, &seq, None, Some(&[V3::One]));
        assert_eq!(t.outputs[0], vec![V3::One]);
        assert_eq!(t.states[1], vec![V3::One]);
    }

    #[test]
    fn fault_changes_the_trace() {
        let c = set_hold();
        let q = c.find_net("q").unwrap();
        let fault = Fault::stem(q, false);
        let seq = TestSequence::from_words(&["10", "01"]).unwrap();
        let good = simulate(&c, &seq, None);
        let bad = simulate(&c, &seq, Some(&fault));
        assert_eq!(good.outputs[1], vec![V3::One]);
        assert_eq!(bad.outputs[1], vec![V3::Zero]);
    }
}
