//! 64-way bit-parallel *three-valued* simulation (dual-rail encoding).
//!
//! Each net carries two words: bit `k` of `ones` means "value 1 in slot `k`",
//! bit `k` of `zeros` means "value 0 in slot `k`", and neither bit set means
//! `X`. Gate evaluation is a handful of bitwise operations per gate for 64
//! scenarios — the paper's `N_STATES = 64` expanded state sequences fit one
//! machine word exactly, which is what `moa-core`'s packed resimulation
//! exploits.

use moa_logic::{GateKind, V3};
use moa_netlist::{Circuit, Fault, FaultSite, FlipFlopId, GateId, NetId};

use crate::frame::NetValues;

/// A 64-slot three-valued value (dual-rail).
///
/// Invariant: `ones & zeros == 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Packed3 {
    /// Bit `k` set: slot `k` holds 1.
    pub ones: u64,
    /// Bit `k` set: slot `k` holds 0.
    pub zeros: u64,
}

impl Packed3 {
    /// All slots `X`.
    pub const ALL_X: Packed3 = Packed3 { ones: 0, zeros: 0 };

    /// Broadcasts one scalar value to all slots.
    pub fn broadcast(v: V3) -> Packed3 {
        match v {
            V3::One => Packed3 {
                ones: u64::MAX,
                zeros: 0,
            },
            V3::Zero => Packed3 {
                ones: 0,
                zeros: u64::MAX,
            },
            V3::X => Packed3::ALL_X,
        }
    }

    /// Reads one slot.
    #[inline]
    pub fn get(self, slot: u32) -> V3 {
        debug_assert!(self.ones & self.zeros == 0, "dual-rail invariant");
        if self.ones >> slot & 1 == 1 {
            V3::One
        } else if self.zeros >> slot & 1 == 1 {
            V3::Zero
        } else {
            V3::X
        }
    }

    /// Writes one slot.
    #[inline]
    pub fn set(&mut self, slot: u32, v: V3) {
        let bit = 1u64 << slot;
        self.ones &= !bit;
        self.zeros &= !bit;
        match v {
            V3::One => self.ones |= bit,
            V3::Zero => self.zeros |= bit,
            V3::X => {}
        }
    }

    /// Slots holding a binary value.
    #[inline]
    pub fn specified(self) -> u64 {
        self.ones | self.zeros
    }

    #[inline]
    pub(crate) fn not(self) -> Packed3 {
        Packed3 {
            ones: self.zeros,
            zeros: self.ones,
        }
    }

    #[inline]
    pub(crate) fn and(self, rhs: Packed3) -> Packed3 {
        Packed3 {
            ones: self.ones & rhs.ones,
            zeros: self.zeros | rhs.zeros,
        }
    }

    #[inline]
    pub(crate) fn or(self, rhs: Packed3) -> Packed3 {
        Packed3 {
            ones: self.ones | rhs.ones,
            zeros: self.zeros & rhs.zeros,
        }
    }

    #[inline]
    pub(crate) fn xor(self, rhs: Packed3) -> Packed3 {
        Packed3 {
            ones: (self.ones & rhs.zeros) | (self.zeros & rhs.ones),
            zeros: (self.ones & rhs.ones) | (self.zeros & rhs.zeros),
        }
    }
}

/// One dual-rail value per net of a time frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packed3Values {
    values: Vec<Packed3>,
}

impl Packed3Values {
    /// An all-`X` packed frame.
    pub fn new(circuit: &Circuit) -> Self {
        Packed3Values {
            values: vec![Packed3::ALL_X; circuit.num_nets()],
        }
    }

    /// The packed value of a net.
    #[inline]
    pub fn get(&self, net: NetId) -> Packed3 {
        self.values[net.index()]
    }

    /// Sets the packed value of a net.
    #[inline]
    pub fn set(&mut self, net: NetId, v: Packed3) {
        self.values[net.index()] = v;
    }

    /// Overwrites every net with the broadcast of its scalar value in
    /// `base`, reusing the allocation — the starting point of a differential
    /// packed evaluation.
    pub fn broadcast_from(&mut self, base: &NetValues) {
        self.values.clear();
        self.values
            .extend(base.as_slice().iter().map(|&v| Packed3::broadcast(v)));
    }
}

/// Evaluates one time frame for 64 three-valued scenarios at once.
///
/// `pattern[i]` drives primary input `i` identically in all slots (as in the
/// experiments: the same test sequence for every expanded state sequence);
/// `present_state[i]` gives flip-flop `i`'s per-slot dual-rail values.
/// `fault` is injected in every slot.
///
/// # Panics
///
/// Panics if `pattern` or `present_state` have the wrong length.
pub fn run_packed3_frame(
    circuit: &Circuit,
    pattern: &[V3],
    present_state: &[Packed3],
    fault: Option<&Fault>,
) -> Packed3Values {
    assert_eq!(pattern.len(), circuit.num_inputs(), "pattern length");
    assert_eq!(
        present_state.len(),
        circuit.num_flip_flops(),
        "present-state length"
    );

    let mut values = Packed3Values::new(circuit);
    for (i, &net) in circuit.inputs().iter().enumerate() {
        values.set(net, Packed3::broadcast(pattern[i]));
    }
    for (i, ff) in circuit.flip_flops().iter().enumerate() {
        values.set(ff.q(), present_state[i]);
    }
    if let Some(f) = fault {
        if let FaultSite::Net(net) = f.site {
            values.set(net, Packed3::broadcast(V3::from_bool(f.stuck)));
        }
    }

    run_packed3_gates(circuit, &mut values, circuit.topo_order(), fault);
    values
}

/// Evaluates `gates` over `values` in the given order, injecting `fault`
/// exactly as [`run_packed3_frame`] does (branch faults pin the reading pin,
/// a stem fault pins the gate's output). Callers restricting evaluation to a
/// cone must pass its gates in topological order; every other net keeps its
/// current value.
pub fn run_packed3_gates(
    circuit: &Circuit,
    values: &mut Packed3Values,
    gates: &[GateId],
    fault: Option<&Fault>,
) {
    for &gid in gates {
        let gate = circuit.gate(gid);
        let pin = |pin_index: usize| -> Packed3 {
            if let Some(f) = fault {
                if let FaultSite::GateInput { gate: fg, pin: fp } = f.site {
                    if fg == gid && fp == pin_index {
                        return Packed3::broadcast(V3::from_bool(f.stuck));
                    }
                }
            }
            values.get(gate.inputs()[pin_index])
        };
        let n = gate.inputs().len();
        let mut out = pin(0);
        match gate.kind() {
            GateKind::And | GateKind::Nand => {
                for i in 1..n {
                    out = out.and(pin(i));
                }
            }
            GateKind::Or | GateKind::Nor => {
                for i in 1..n {
                    out = out.or(pin(i));
                }
            }
            GateKind::Xor | GateKind::Xnor => {
                for i in 1..n {
                    out = out.xor(pin(i));
                }
            }
            GateKind::Not | GateKind::Buf => {}
        }
        if gate.kind().inverting() {
            out = out.not();
        }
        if let Some(f) = fault {
            if f.site == FaultSite::Net(gate.output()) {
                out = Packed3::broadcast(V3::from_bool(f.stuck));
            }
        }
        values.set(gate.output(), out);
    }
}

/// Reads the packed next state, applying a flip-flop-input branch fault.
pub fn packed3_next_state(
    circuit: &Circuit,
    values: &Packed3Values,
    fault: Option<&Fault>,
) -> Vec<Packed3> {
    circuit
        .flip_flops()
        .iter()
        .enumerate()
        .map(|(i, ff)| {
            if let Some(f) = fault {
                if f.site == FaultSite::FlipFlopInput(FlipFlopId::new(i)) {
                    return Packed3::broadcast(V3::from_bool(f.stuck));
                }
            }
            values.get(ff.d())
        })
        .collect()
}

/// Reads the packed primary-output values.
pub fn packed3_outputs(circuit: &Circuit, values: &Packed3Values) -> Vec<Packed3> {
    circuit
        .outputs()
        .iter()
        .map(|&net| values.get(net))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{compute_frame, frame_next_state, frame_outputs};
    use moa_logic::GateKind;
    use moa_netlist::CircuitBuilder;

    fn c1() -> Circuit {
        let mut b = CircuitBuilder::new("c1");
        b.add_input("a").unwrap();
        b.add_input("b").unwrap();
        b.add_flip_flop("q0", "d0").unwrap();
        b.add_flip_flop("q1", "d1").unwrap();
        b.add_gate(GateKind::Nand, "w", &["a", "q0"]).unwrap();
        b.add_gate(GateKind::Xnor, "d0", &["w", "q1"]).unwrap();
        b.add_gate(GateKind::Nor, "d1", &["b", "q0"]).unwrap();
        b.add_gate(GateKind::Or, "v", &["w", "q1"]).unwrap();
        b.add_gate(GateKind::Not, "z", &["v"]).unwrap();
        b.add_output("z");
        b.finish().unwrap()
    }

    #[test]
    fn packed3_round_trip_accessors() {
        let mut p = Packed3::ALL_X;
        p.set(3, V3::One);
        p.set(7, V3::Zero);
        assert_eq!(p.get(3), V3::One);
        assert_eq!(p.get(7), V3::Zero);
        assert_eq!(p.get(0), V3::X);
        p.set(3, V3::X);
        assert_eq!(p.get(3), V3::X);
        assert_eq!(p.specified(), 1 << 7);
    }

    /// Slot-by-slot agreement with the scalar three-valued simulator, over
    /// all 9 combinations of two three-valued state variables.
    #[test]
    fn packed3_agrees_with_scalar() {
        let c = c1();
        let vals = [V3::Zero, V3::One, V3::X];
        for (pa, pb) in [(V3::One, V3::Zero), (V3::X, V3::One), (V3::Zero, V3::X)] {
            // Pack the 9 state combinations into slots 0..9.
            let mut s0 = Packed3::ALL_X;
            let mut s1 = Packed3::ALL_X;
            for (slot, (i, j)) in (0..3)
                .flat_map(|i| (0..3).map(move |j| (i, j)))
                .enumerate()
            {
                s0.set(slot as u32, vals[i]);
                s1.set(slot as u32, vals[j]);
            }
            let packed = run_packed3_frame(&c, &[pa, pb], &[s0, s1], None);
            let p_out = packed3_outputs(&c, &packed);
            let p_next = packed3_next_state(&c, &packed, None);
            for (slot, (i, j)) in (0..3)
                .flat_map(|i| (0..3).map(move |j| (i, j)))
                .enumerate()
            {
                let frame = compute_frame(&c, &[pa, pb], &[vals[i], vals[j]], None);
                let s_out = frame_outputs(&c, &frame);
                let s_next = frame_next_state(&c, &frame, None);
                for (o, &p) in p_out.iter().enumerate() {
                    assert_eq!(p.get(slot as u32), s_out[o], "slot {slot} out {o}");
                }
                for (k, &p) in p_next.iter().enumerate() {
                    assert_eq!(p.get(slot as u32), s_next[k], "slot {slot} next {k}");
                }
            }
        }
    }

    #[test]
    fn packed3_fault_injection_agrees_with_scalar() {
        let c = c1();
        let faults = [
            Fault::stem(c.find_net("w").unwrap(), true),
            Fault::stem(c.find_net("a").unwrap(), false),
            Fault::flip_flop_input(FlipFlopId::new(1), false),
        ];
        let vals = [V3::Zero, V3::One, V3::X];
        for fault in &faults {
            let mut s0 = Packed3::ALL_X;
            let mut s1 = Packed3::ALL_X;
            for slot in 0..9u32 {
                s0.set(slot, vals[(slot % 3) as usize]);
                s1.set(slot, vals[(slot / 3) as usize]);
            }
            let packed = run_packed3_frame(&c, &[V3::One, V3::X], &[s0, s1], Some(fault));
            let p_next = packed3_next_state(&c, &packed, Some(fault));
            let p_out = packed3_outputs(&c, &packed);
            for slot in 0..9u32 {
                let st = [vals[(slot % 3) as usize], vals[(slot / 3) as usize]];
                let frame = compute_frame(&c, &[V3::One, V3::X], &st, Some(fault));
                let s_out = frame_outputs(&c, &frame);
                let s_next = frame_next_state(&c, &frame, Some(fault));
                for (o, &p) in p_out.iter().enumerate() {
                    assert_eq!(p.get(slot), s_out[o], "{fault} slot {slot} out {o}");
                }
                for (k, &p) in p_next.iter().enumerate() {
                    assert_eq!(p.get(slot), s_next[k], "{fault} slot {slot} next {k}");
                }
            }
        }
    }

    #[test]
    fn dual_rail_invariant_is_preserved() {
        let c = c1();
        let packed = run_packed3_frame(
            &c,
            &[V3::X, V3::One],
            &[Packed3::broadcast(V3::X), Packed3::broadcast(V3::One)],
            None,
        );
        for net in c.net_ids() {
            let v = packed.get(net);
            assert_eq!(v.ones & v.zeros, 0, "net {}", c.net_name(net));
        }
    }
}
