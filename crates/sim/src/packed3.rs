//! Bit-parallel *three-valued* simulation (dual-rail encoding).
//!
//! Each net carries two words: lane `k` of `ones` means "value 1 in slot
//! `k`", lane `k` of `zeros` means "value 0 in slot `k`", and neither bit set
//! means `X`. Gate evaluation is a handful of bitwise operations per gate for
//! a whole word of scenarios at once.
//!
//! The value type is generic over the [`Word`] carrying the lanes:
//! [`PackedV3<u64>`] is the paper's configuration — its `N_STATES = 64`
//! expanded state sequences fit one machine word exactly, which is what
//! `moa-core`'s packed resimulation exploits — and the [`Packed3`] alias
//! keeps that 64-lane shape as the default vocabulary. The wide-word
//! screening kernel ([`crate::screen_faults_wide`]) instantiates the same
//! dual-rail algebra at 128 and 256 lanes.

use moa_logic::{GateKind, V3};
use moa_netlist::{Circuit, Fault, FaultSite, FlipFlopId, GateId, NetId};

use crate::frame::NetValues;
use crate::word::Word;

/// A dual-rail three-valued value with one slot per lane of `W`.
///
/// Invariant: `ones & zeros == 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PackedV3<W: Word = u64> {
    /// Lane `k` set: slot `k` holds 1.
    pub ones: W,
    /// Lane `k` set: slot `k` holds 0.
    pub zeros: W,
}

/// The 64-slot dual-rail word of the paper's `N_STATES = 64` configuration.
pub type Packed3 = PackedV3<u64>;

impl<W: Word> PackedV3<W> {
    /// All slots `X`.
    pub const ALL_X: PackedV3<W> = PackedV3 {
        ones: W::ZERO,
        zeros: W::ZERO,
    };

    /// Broadcasts one scalar value to all slots.
    pub fn broadcast(v: V3) -> PackedV3<W> {
        match v {
            V3::One => PackedV3 {
                ones: W::ONES,
                zeros: W::ZERO,
            },
            V3::Zero => PackedV3 {
                ones: W::ZERO,
                zeros: W::ONES,
            },
            V3::X => PackedV3::ALL_X,
        }
    }

    /// Reads one slot.
    #[inline]
    pub fn get(self, slot: u32) -> V3 {
        debug_assert!(self.ones.and(self.zeros).is_zero(), "dual-rail invariant");
        if self.ones.test_lane(slot as usize) {
            V3::One
        } else if self.zeros.test_lane(slot as usize) {
            V3::Zero
        } else {
            V3::X
        }
    }

    /// Writes one slot.
    #[inline]
    pub fn set(&mut self, slot: u32, v: V3) {
        let bit = W::lane_bit(slot as usize);
        self.ones = self.ones.and_not(bit);
        self.zeros = self.zeros.and_not(bit);
        match v {
            V3::One => self.ones = self.ones.or(bit),
            V3::Zero => self.zeros = self.zeros.or(bit),
            V3::X => {}
        }
    }

    /// Slots holding a binary value.
    #[inline]
    pub fn specified(self) -> W {
        self.ones.or(self.zeros)
    }

    #[inline]
    pub(crate) fn not(self) -> PackedV3<W> {
        PackedV3 {
            ones: self.zeros,
            zeros: self.ones,
        }
    }

    #[inline]
    pub(crate) fn and(self, rhs: PackedV3<W>) -> PackedV3<W> {
        PackedV3 {
            ones: self.ones.and(rhs.ones),
            zeros: self.zeros.or(rhs.zeros),
        }
    }

    #[inline]
    pub(crate) fn or(self, rhs: PackedV3<W>) -> PackedV3<W> {
        PackedV3 {
            ones: self.ones.or(rhs.ones),
            zeros: self.zeros.and(rhs.zeros),
        }
    }

    #[inline]
    pub(crate) fn xor(self, rhs: PackedV3<W>) -> PackedV3<W> {
        PackedV3 {
            ones: self.ones.and(rhs.zeros).or(self.zeros.and(rhs.ones)),
            zeros: self.ones.and(rhs.ones).or(self.zeros.and(rhs.zeros)),
        }
    }
}

/// One dual-rail value per net of a time frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedV3Values<W: Word = u64> {
    values: Vec<PackedV3<W>>,
}

/// The 64-slot frame of values matching [`Packed3`].
pub type Packed3Values = PackedV3Values<u64>;

impl<W: Word> PackedV3Values<W> {
    /// An all-`X` packed frame.
    pub fn new(circuit: &Circuit) -> Self {
        PackedV3Values {
            values: vec![PackedV3::ALL_X; circuit.num_nets()],
        }
    }

    /// Resets every net to `X`, (re)sizing for `circuit` while reusing the
    /// allocation — the cheap per-frame starting point of a kernel that owns
    /// its scratch buffer.
    pub fn reset(&mut self, circuit: &Circuit) {
        self.values.clear();
        self.values.resize(circuit.num_nets(), PackedV3::ALL_X);
    }

    /// The packed value of a net.
    #[inline]
    pub fn get(&self, net: NetId) -> PackedV3<W> {
        self.values[net.index()]
    }

    /// Sets the packed value of a net.
    #[inline]
    pub fn set(&mut self, net: NetId, v: PackedV3<W>) {
        self.values[net.index()] = v;
    }

    /// Overwrites every net with the broadcast of its scalar value in
    /// `base`, reusing the allocation — the starting point of a differential
    /// packed evaluation.
    pub fn broadcast_from(&mut self, base: &NetValues) {
        self.values.clear();
        self.values
            .extend(base.as_slice().iter().map(|&v| PackedV3::broadcast(v)));
    }
}

/// Evaluates one time frame for 64 three-valued scenarios at once.
///
/// `pattern[i]` drives primary input `i` identically in all slots (as in the
/// experiments: the same test sequence for every expanded state sequence);
/// `present_state[i]` gives flip-flop `i`'s per-slot dual-rail values.
/// `fault` is injected in every slot.
///
/// # Panics
///
/// Panics if `pattern` or `present_state` have the wrong length.
pub fn run_packed3_frame(
    circuit: &Circuit,
    pattern: &[V3],
    present_state: &[Packed3],
    fault: Option<&Fault>,
) -> Packed3Values {
    assert_eq!(pattern.len(), circuit.num_inputs(), "pattern length");
    assert_eq!(
        present_state.len(),
        circuit.num_flip_flops(),
        "present-state length"
    );

    let mut values = Packed3Values::new(circuit);
    for (i, &net) in circuit.inputs().iter().enumerate() {
        values.set(net, Packed3::broadcast(pattern[i]));
    }
    for (i, ff) in circuit.flip_flops().iter().enumerate() {
        values.set(ff.q(), present_state[i]);
    }
    if let Some(f) = fault {
        if let FaultSite::Net(net) = f.site {
            values.set(net, Packed3::broadcast(V3::from_bool(f.stuck)));
        }
    }

    run_packed3_gates(circuit, &mut values, circuit.topo_order(), fault);
    values
}

/// Evaluates `gates` over `values` in the given order, injecting `fault`
/// exactly as [`run_packed3_frame`] does (branch faults pin the reading pin,
/// a stem fault pins the gate's output). Callers restricting evaluation to a
/// cone must pass its gates in topological order; every other net keeps its
/// current value.
pub fn run_packed3_gates(
    circuit: &Circuit,
    values: &mut Packed3Values,
    gates: &[GateId],
    fault: Option<&Fault>,
) {
    for &gid in gates {
        let gate = circuit.gate(gid);
        let pin = |pin_index: usize| -> Packed3 {
            if let Some(f) = fault {
                if let FaultSite::GateInput { gate: fg, pin: fp } = f.site {
                    if fg == gid && fp == pin_index {
                        return Packed3::broadcast(V3::from_bool(f.stuck));
                    }
                }
            }
            values.get(gate.inputs()[pin_index])
        };
        let n = gate.inputs().len();
        let mut out = pin(0);
        match gate.kind() {
            GateKind::And | GateKind::Nand => {
                for i in 1..n {
                    out = out.and(pin(i));
                }
            }
            GateKind::Or | GateKind::Nor => {
                for i in 1..n {
                    out = out.or(pin(i));
                }
            }
            GateKind::Xor | GateKind::Xnor => {
                for i in 1..n {
                    out = out.xor(pin(i));
                }
            }
            GateKind::Not | GateKind::Buf => {}
        }
        if gate.kind().inverting() {
            out = out.not();
        }
        if let Some(f) = fault {
            if f.site == FaultSite::Net(gate.output()) {
                out = Packed3::broadcast(V3::from_bool(f.stuck));
            }
        }
        values.set(gate.output(), out);
    }
}

/// Reads the packed next state, applying a flip-flop-input branch fault.
pub fn packed3_next_state(
    circuit: &Circuit,
    values: &Packed3Values,
    fault: Option<&Fault>,
) -> Vec<Packed3> {
    circuit
        .flip_flops()
        .iter()
        .enumerate()
        .map(|(i, ff)| {
            if let Some(f) = fault {
                if f.site == FaultSite::FlipFlopInput(FlipFlopId::new(i)) {
                    return Packed3::broadcast(V3::from_bool(f.stuck));
                }
            }
            values.get(ff.d())
        })
        .collect()
}

/// Reads the packed primary-output values.
pub fn packed3_outputs(circuit: &Circuit, values: &Packed3Values) -> Vec<Packed3> {
    circuit
        .outputs()
        .iter()
        .map(|&net| values.get(net))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{compute_frame, frame_next_state, frame_outputs};
    use moa_logic::GateKind;
    use moa_netlist::CircuitBuilder;

    fn c1() -> Circuit {
        let mut b = CircuitBuilder::new("c1");
        b.add_input("a").unwrap();
        b.add_input("b").unwrap();
        b.add_flip_flop("q0", "d0").unwrap();
        b.add_flip_flop("q1", "d1").unwrap();
        b.add_gate(GateKind::Nand, "w", &["a", "q0"]).unwrap();
        b.add_gate(GateKind::Xnor, "d0", &["w", "q1"]).unwrap();
        b.add_gate(GateKind::Nor, "d1", &["b", "q0"]).unwrap();
        b.add_gate(GateKind::Or, "v", &["w", "q1"]).unwrap();
        b.add_gate(GateKind::Not, "z", &["v"]).unwrap();
        b.add_output("z");
        b.finish().unwrap()
    }

    #[test]
    fn packed3_round_trip_accessors() {
        let mut p = Packed3::ALL_X;
        p.set(3, V3::One);
        p.set(7, V3::Zero);
        assert_eq!(p.get(3), V3::One);
        assert_eq!(p.get(7), V3::Zero);
        assert_eq!(p.get(0), V3::X);
        p.set(3, V3::X);
        assert_eq!(p.get(3), V3::X);
        assert_eq!(p.specified(), 1 << 7);
    }

    /// The wide instantiations run the same dual-rail algebra per lane:
    /// every slot of a 256-lane value round-trips and the gate ops agree
    /// with the 64-lane word slot-for-slot.
    #[test]
    fn wide_dual_rail_algebra_matches_u64_per_slot() {
        let vals = [V3::Zero, V3::One, V3::X];
        let mut wide_a: PackedV3<[u64; 4]> = PackedV3::ALL_X;
        let mut wide_b: PackedV3<[u64; 4]> = PackedV3::ALL_X;
        let mut narrow_a = Packed3::ALL_X;
        let mut narrow_b = Packed3::ALL_X;
        // Drive the low 64 slots of both widths with the same 3x3 pattern
        // and a different pattern in the upper lanes of the wide word.
        for slot in 0..256u32 {
            let a = vals[(slot % 3) as usize];
            let b = vals[(slot / 3 % 3) as usize];
            wide_a.set(slot, a);
            wide_b.set(slot, b);
            if slot < 64 {
                narrow_a.set(slot, a);
                narrow_b.set(slot, b);
            }
        }
        for slot in 0..256u32 {
            let (a, b) = (wide_a.get(slot), wide_b.get(slot));
            assert_eq!(wide_a.and(wide_b).get(slot), a & b, "and slot {slot}");
            assert_eq!(wide_a.or(wide_b).get(slot), a | b, "or slot {slot}");
            assert_eq!(wide_a.xor(wide_b).get(slot), a ^ b, "xor slot {slot}");
            assert_eq!(wide_a.not().get(slot), !a, "not slot {slot}");
            if slot < 64 {
                assert_eq!(narrow_a.and(narrow_b).get(slot), wide_a.and(wide_b).get(slot));
                assert_eq!(narrow_a.xor(narrow_b).get(slot), wide_a.xor(wide_b).get(slot));
            }
        }
    }

    /// Slot-by-slot agreement with the scalar three-valued simulator, over
    /// all 9 combinations of two three-valued state variables.
    #[test]
    fn packed3_agrees_with_scalar() {
        let c = c1();
        let vals = [V3::Zero, V3::One, V3::X];
        for (pa, pb) in [(V3::One, V3::Zero), (V3::X, V3::One), (V3::Zero, V3::X)] {
            // Pack the 9 state combinations into slots 0..9.
            let mut s0 = Packed3::ALL_X;
            let mut s1 = Packed3::ALL_X;
            for (slot, (i, j)) in (0..3)
                .flat_map(|i| (0..3).map(move |j| (i, j)))
                .enumerate()
            {
                s0.set(slot as u32, vals[i]);
                s1.set(slot as u32, vals[j]);
            }
            let packed = run_packed3_frame(&c, &[pa, pb], &[s0, s1], None);
            let p_out = packed3_outputs(&c, &packed);
            let p_next = packed3_next_state(&c, &packed, None);
            for (slot, (i, j)) in (0..3)
                .flat_map(|i| (0..3).map(move |j| (i, j)))
                .enumerate()
            {
                let frame = compute_frame(&c, &[pa, pb], &[vals[i], vals[j]], None);
                let s_out = frame_outputs(&c, &frame);
                let s_next = frame_next_state(&c, &frame, None);
                for (o, &p) in p_out.iter().enumerate() {
                    assert_eq!(p.get(slot as u32), s_out[o], "slot {slot} out {o}");
                }
                for (k, &p) in p_next.iter().enumerate() {
                    assert_eq!(p.get(slot as u32), s_next[k], "slot {slot} next {k}");
                }
            }
        }
    }

    #[test]
    fn packed3_fault_injection_agrees_with_scalar() {
        let c = c1();
        let faults = [
            Fault::stem(c.find_net("w").unwrap(), true),
            Fault::stem(c.find_net("a").unwrap(), false),
            Fault::flip_flop_input(FlipFlopId::new(1), false),
        ];
        let vals = [V3::Zero, V3::One, V3::X];
        for fault in &faults {
            let mut s0 = Packed3::ALL_X;
            let mut s1 = Packed3::ALL_X;
            for slot in 0..9u32 {
                s0.set(slot, vals[(slot % 3) as usize]);
                s1.set(slot, vals[(slot / 3) as usize]);
            }
            let packed = run_packed3_frame(&c, &[V3::One, V3::X], &[s0, s1], Some(fault));
            let p_next = packed3_next_state(&c, &packed, Some(fault));
            let p_out = packed3_outputs(&c, &packed);
            for slot in 0..9u32 {
                let st = [vals[(slot % 3) as usize], vals[(slot / 3) as usize]];
                let frame = compute_frame(&c, &[V3::One, V3::X], &st, Some(fault));
                let s_out = frame_outputs(&c, &frame);
                let s_next = frame_next_state(&c, &frame, Some(fault));
                for (o, &p) in p_out.iter().enumerate() {
                    assert_eq!(p.get(slot), s_out[o], "{fault} slot {slot} out {o}");
                }
                for (k, &p) in p_next.iter().enumerate() {
                    assert_eq!(p.get(slot), s_next[k], "{fault} slot {slot} next {k}");
                }
            }
        }
    }

    #[test]
    fn dual_rail_invariant_is_preserved() {
        let c = c1();
        let packed = run_packed3_frame(
            &c,
            &[V3::X, V3::One],
            &[Packed3::broadcast(V3::X), Packed3::broadcast(V3::One)],
            None,
        );
        for net in c.net_ids() {
            let v = packed.get(net);
            assert_eq!(v.ones & v.zeros, 0, "net {}", c.net_name(net));
        }
    }
}
