//! VCD (Value Change Dump) export of simulation traces.
//!
//! Dumps every net of every time frame in the IEEE-1364 VCD text format, so
//! a trace — fault-free or faulty — can be inspected in any waveform viewer
//! (GTKWave etc.). Three-valued `X` maps to the VCD `x` state; one VCD time
//! step corresponds to one clock cycle (time frame).

use std::fmt::Write as _;

use moa_logic::V3;
use moa_netlist::{Circuit, Fault};

use crate::frame::{compute_frame, frame_next_state};
use crate::TestSequence;

/// Simulates `seq` (with `fault` injected, if any) and renders the values of
/// every net at every time unit as VCD text.
///
/// # Panics
///
/// Panics if `seq` width does not match the circuit.
///
/// # Example
///
/// ```
/// use moa_netlist::parse_bench;
/// use moa_sim::{vcd_dump, TestSequence};
///
/// let c = parse_bench("INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n")?;
/// let seq = TestSequence::from_words(&["1", "0"])?;
/// let vcd = vcd_dump(&c, &seq, None);
/// assert!(vcd.contains("$var wire 1"));
/// assert!(vcd.contains("#0"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn vcd_dump(circuit: &Circuit, seq: &TestSequence, fault: Option<&Fault>) -> String {
    assert_eq!(seq.num_inputs(), circuit.num_inputs(), "sequence width");
    let mut out = String::new();
    let _ = writeln!(out, "$date reproduced-moa-faultsim $end");
    let _ = writeln!(out, "$version moa-sim vcd_dump $end");
    let _ = writeln!(out, "$timescale 1 ns $end");
    let _ = writeln!(out, "$scope module {} $end", sanitize(circuit.name()));
    for net in circuit.net_ids() {
        let _ = writeln!(
            out,
            "$var wire 1 {} {} $end",
            identifier(net.index()),
            sanitize(circuit.net_name(net))
        );
    }
    let _ = writeln!(out, "$upscope $end");
    let _ = writeln!(out, "$enddefinitions $end");

    let mut state = vec![V3::X; circuit.num_flip_flops()];
    let mut last: Vec<Option<V3>> = vec![None; circuit.num_nets()];
    for u in 0..seq.len() {
        let frame = compute_frame(circuit, seq.pattern(u), &state, fault);
        let _ = writeln!(out, "#{u}");
        if u == 0 {
            let _ = writeln!(out, "$dumpvars");
        }
        for net in circuit.net_ids() {
            let v = frame[net];
            if last[net.index()] != Some(v) {
                let _ = writeln!(out, "{}{}", v.as_char(), identifier(net.index()));
                last[net.index()] = Some(v);
            }
        }
        if u == 0 {
            let _ = writeln!(out, "$end");
        }
        state = frame_next_state(circuit, &frame, fault);
    }
    let _ = writeln!(out, "#{}", seq.len());
    out
}

/// Short printable VCD identifier for a net index (base-94 over `!`..`~`).
fn identifier(mut index: usize) -> String {
    let mut id = String::new();
    loop {
        id.push((b'!' + (index % 94) as u8) as char);
        index /= 94;
        if index == 0 {
            break;
        }
    }
    id
}

/// VCD identifiers must not contain whitespace; circuit names are already
/// identifier-like but guard anyway.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_whitespace() { '_' } else { c })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use moa_logic::GateKind;
    use moa_netlist::CircuitBuilder;

    fn toggle() -> Circuit {
        let mut b = CircuitBuilder::new("toggle");
        b.add_input("r").unwrap();
        b.add_flip_flop("q", "d").unwrap();
        b.add_gate(GateKind::Not, "nq", &["q"]).unwrap();
        b.add_gate(GateKind::And, "d", &["r", "nq"]).unwrap();
        b.add_gate(GateKind::Buf, "z", &["q"]).unwrap();
        b.add_output("z");
        b.finish().unwrap()
    }

    #[test]
    fn header_declares_every_net() {
        let c = toggle();
        let seq = TestSequence::from_words(&["0", "1"]).unwrap();
        let vcd = vcd_dump(&c, &seq, None);
        for net in c.net_ids() {
            assert!(
                vcd.contains(&format!(" {} $end", c.net_name(net))),
                "{} declared",
                c.net_name(net)
            );
        }
        assert!(vcd.starts_with("$date"));
        assert!(vcd.contains("$enddefinitions $end"));
        assert!(vcd.contains("$dumpvars"));
    }

    #[test]
    fn values_change_only_when_they_change() {
        let c = toggle();
        // r = 0,0: q clears at time 1 and stays 0 — the q identifier must
        // appear exactly twice (x at #0, 0 at #1, nothing at later times).
        let seq = TestSequence::from_words(&["0", "0", "0"]).unwrap();
        let vcd = vcd_dump(&c, &seq, None);
        let q_index = c.find_net("q").unwrap().index();
        let id = identifier(q_index);
        let value_lines = vcd
            .lines()
            .filter(|l| {
                (l.starts_with('0') || l.starts_with('1') || l.starts_with('x'))
                    && l[1..] == *id
            })
            .count();
        assert_eq!(value_lines, 2, "x@0 then 0@1");
    }

    #[test]
    fn faulty_dump_differs_from_good() {
        let c = toggle();
        let seq = TestSequence::from_words(&["0", "0"]).unwrap();
        let fault = Fault::stem(c.find_net("r").unwrap(), true);
        let good = vcd_dump(&c, &seq, None);
        let bad = vcd_dump(&c, &seq, Some(&fault));
        assert_ne!(good, bad);
    }

    #[test]
    fn identifiers_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            let id = identifier(i);
            assert!(id.chars().all(|c| ('!'..='~').contains(&c)));
            assert!(seen.insert(id), "identifier {i} collided");
        }
    }
}
