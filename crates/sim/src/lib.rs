//! Three-valued time-frame simulation of synchronous sequential circuits.
//!
//! This crate provides the simulation substrate of the multiple-observation-
//! time fault simulator:
//!
//! - [`NetValues`] — one three-valued value per net of a time frame,
//! - [`compute_frame`] / [`frame_next_state`] / [`frame_outputs`] — single
//!   time-frame evaluation with optional stuck-at fault injection,
//! - [`TestSequence`] — input sequences (including seeded random generation),
//! - [`SimTrace`], [`simulate`] — good- or faulty-machine simulation of a whole
//!   sequence from the all-`X` initial state (or any given state),
//! - [`conventional_detection`] — single-observation-time detection,
//! - [`PackedValues`] and the `packed_*` helpers — 64-way bit-parallel
//!   *binary* simulation used by the exact restricted-MOA checker,
//! - [`screen_faults`] / [`FaultBatch`] — 64-way *parallel-fault* screening
//!   (one distinct fault per bit slot) used by the campaign's conventional
//!   pre-pass,
//! - [`Word`] / [`ScreenLanes`] / [`screen_faults_wide`] — the machine-word
//!   abstraction that instantiates the same kernels at 64, 128 or 256 lanes
//!   per word, and the widened multi-threaded screening driver built on it.
//!
//! # Example
//!
//! ```
//! use moa_netlist::parse_bench;
//! use moa_sim::{simulate, TestSequence};
//!
//! let c = parse_bench("INPUT(a)\nOUTPUT(z)\nq = DFF(d)\nd = NOT(q)\nz = AND(a, q)\n")?;
//! let seq = TestSequence::from_words(&["1", "1"])?;
//! let trace = simulate(&c, &seq, None);
//! // The flip-flop never initializes: everything stays unknown.
//! assert!(trace.outputs[0].iter().all(|v| !v.is_specified()));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod conventional;
mod differential;
mod event;
mod frame;
mod packed;
mod packed3;
mod packed_faults;
mod sequence;
mod sequence_io;
mod trace;
mod vcd;
mod word;

pub use conventional::{conventional_detection, run_conventional, Detection};
pub use differential::{simulate_differential, simulate_differential_counted, GoodFrames};
pub use event::EventSim;
pub use frame::{compute_frame, frame_next_state, frame_outputs, NetValues};
pub use packed::{packed_next_state, packed_outputs, run_packed_frame, PackedValues};
pub use packed3::{
    packed3_next_state, packed3_outputs, run_packed3_frame, run_packed3_gates, Packed3,
    Packed3Values, PackedV3, PackedV3Values,
};
pub use packed_faults::{
    screen_faults, screen_faults_wide, FaultBatch, ScreenLanes, ScreenOutcome, SCREEN_LANES,
};
pub use sequence::{ParseSequenceError, TestSequence};
pub use trace::{simulate, simulate_from, SimTrace};
pub use vcd::vcd_dump;
pub use word::Word;
