//! Parallel-fault screening: one *distinct* fault per bit lane.
//!
//! [`packed3`](crate::packed3) injects a single fault into all slots of a
//! word (many scenarios, one faulty machine). This module is the transpose:
//! each bit lane carries a *different* faulty machine under the *same* input
//! sequence and the same all-`X` initial state, so one pass over the sequence
//! conventionally screens a whole word of faults at the cost of roughly one
//! scalar simulation. The campaign uses it as a pre-pass that detects and
//! drops faults in batches before the expensive per-fault MOA procedure runs.
//!
//! The kernel is generic over the [`Word`] carrying the lanes: `u64` packs
//! 64 faults per word (the original configuration, kept verbatim behind
//! [`screen_faults`] and [`SCREEN_LANES`]), `[u64; 2]` packs 128 and
//! `[u64; 4]` packs 256. A wider word amortizes the per-gate bookkeeping of
//! a kernel pass — topological iteration, mask lookups, output scanning —
//! over more faults, and its block operations auto-vectorize. On top of the
//! lane axis, [`screen_faults_wide`] adds a thread axis: pending faults are
//! chunked into word-sized batches, the batches are partitioned across
//! worker threads (each with its own scratch buffers), and the per-batch
//! results are merged positionally. Because every lane's verdict depends
//! only on its own fault (lanes never interact, and batch membership is a
//! pure function of fault-list order and lane width), the merged detections
//! are bit-identical for every lane width and thread count — the tests
//! assert this against the scalar simulation fault by fault.
//!
//! Fault injection is expressed as per-lane masks. For a net whose lane-`k`
//! fault pins it to 1 (`f1` mask bit) or 0 (`f0` mask bit), every write of a
//! dual-rail value `v` to that net is filtered through
//!
//! ```text
//! m = f1 | f0
//! v.ones  = (v.ones  & !m) | f1
//! v.zeros = (v.zeros & !m) | f0
//! ```
//!
//! which leaves all healthy lanes untouched. Because every dual-rail gate
//! operation is lane-wise (lane columns never interact), lane `k` of the
//! packed run is exactly the scalar three-valued simulation of fault `k`'s
//! machine — the verdicts are bit-identical to [`conventional_detection`] on
//! a scalar [`simulate`](crate::simulate) trace, which the tests assert
//! fault by fault.
//!
//! [`conventional_detection`]: crate::conventional_detection

use moa_logic::{GateKind, V3};
use moa_netlist::{Circuit, Fault, FaultSite};

use crate::conventional::Detection;
use crate::packed3::{PackedV3, PackedV3Values};
use crate::sequence::TestSequence;
use crate::trace::SimTrace;
use crate::word::Word;

/// The number of faults screened per `u64` packed word — the width of the
/// default [`screen_faults`] kernel. Wider kernels screen
/// [`ScreenLanes::lanes`] faults per word.
pub const SCREEN_LANES: usize = 64;

/// The lane widths the screening kernel instantiates at.
///
/// Only these three widths exist: each is a monomorphized kernel over one
/// machine-word shape (`u64`, `[u64; 2]`, `[u64; 4]`). The width is an
/// execution knob, never a semantic one — verdicts are bit-identical across
/// all of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ScreenLanes {
    /// 64 faults per word (`u64`) — the original kernel.
    #[default]
    L64,
    /// 128 faults per word (`[u64; 2]`).
    L128,
    /// 256 faults per word (`[u64; 4]`).
    L256,
}

impl ScreenLanes {
    /// Every instantiated width, narrowest first.
    pub const ALL: [ScreenLanes; 3] = [ScreenLanes::L64, ScreenLanes::L128, ScreenLanes::L256];

    /// The number of faults per word.
    pub const fn lanes(self) -> usize {
        match self {
            ScreenLanes::L64 => 64,
            ScreenLanes::L128 => 128,
            ScreenLanes::L256 => 256,
        }
    }

    /// The width screening `lanes` faults per word, if instantiated.
    pub const fn from_lanes(lanes: usize) -> Option<ScreenLanes> {
        match lanes {
            64 => Some(ScreenLanes::L64),
            128 => Some(ScreenLanes::L128),
            256 => Some(ScreenLanes::L256),
            _ => None,
        }
    }
}

impl std::fmt::Display for ScreenLanes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.lanes())
    }
}

/// Per-lane dual-rail stuck masks: lane `k` of `ones` pins slot `k` to 1,
/// lane `k` of `zeros` pins it to 0.
#[derive(Debug, Clone, Copy, Default)]
struct StuckMask<W: Word> {
    ones: W,
    zeros: W,
}

impl<W: Word> StuckMask<W> {
    #[inline]
    fn add(&mut self, slot: usize, stuck: bool) {
        if stuck {
            self.ones.set_lane(slot);
        } else {
            self.zeros.set_lane(slot);
        }
    }

    /// Filters a written value through the stuck lanes.
    #[inline]
    fn apply(self, v: PackedV3<W>) -> PackedV3<W> {
        let m = self.ones.or(self.zeros);
        PackedV3 {
            ones: v.ones.and_not(m).or(self.ones),
            zeros: v.zeros.and_not(m).or(self.zeros),
        }
    }

    #[inline]
    fn is_empty(self) -> bool {
        self.ones.or(self.zeros).is_zero()
    }
}

/// A branch (gate-input) fault's per-lane mask, applied to the pin's *view*
/// of its net without disturbing the net itself.
#[derive(Debug, Clone, Copy)]
struct BranchMask<W: Word> {
    gate: usize,
    pin: usize,
    mask: StuckMask<W>,
}

/// Up to `W::LANES` distinct faults compiled into per-lane injection masks
/// over one circuit. The default word keeps the original 64-fault shape.
#[derive(Debug, Clone)]
pub struct FaultBatch<W: Word = u64> {
    /// Number of occupied slots.
    width: usize,
    /// Per-net stem masks, applied after every write to the net.
    stem: Vec<StuckMask<W>>,
    /// Nets with a nonempty stem mask (fast guard: at most `W::LANES` nets
    /// are faulted per batch, so almost every write skips the mask loads).
    stem_active: Vec<bool>,
    /// Gates with at least one branch-faulted input pin (fast guard).
    has_branch: Vec<bool>,
    /// Sparse branch-fault masks.
    branches: Vec<BranchMask<W>>,
    /// Per-flip-flop input masks, applied when the next state is read.
    ff_input: Vec<StuckMask<W>>,
}

impl<W: Word> FaultBatch<W> {
    /// Compiles `faults` (at most `W::LANES`) into lane masks; fault `k`
    /// occupies bit lane `k`.
    ///
    /// # Panics
    ///
    /// Panics if more than `W::LANES` faults are given or a fault references
    /// a net/gate/flip-flop outside `circuit`.
    pub fn new(circuit: &Circuit, faults: &[Fault]) -> Self {
        assert!(
            faults.len() <= W::LANES,
            "at most {} faults per batch (got {})",
            W::LANES,
            faults.len()
        );
        let mut batch = FaultBatch {
            width: faults.len(),
            stem: vec![StuckMask::default(); circuit.num_nets()],
            stem_active: vec![false; circuit.num_nets()],
            has_branch: vec![false; circuit.num_gates()],
            branches: Vec::new(),
            ff_input: vec![StuckMask::default(); circuit.num_flip_flops()],
        };
        for (slot, fault) in faults.iter().enumerate() {
            match fault.site {
                FaultSite::Net(net) => {
                    batch.stem[net.index()].add(slot, fault.stuck);
                    batch.stem_active[net.index()] = true;
                }
                FaultSite::GateInput { gate, pin } => {
                    assert!(
                        pin < circuit.gate(gate).inputs().len(),
                        "branch fault pin out of range"
                    );
                    batch.has_branch[gate.index()] = true;
                    let existing = batch
                        .branches
                        .iter_mut()
                        .find(|b| b.gate == gate.index() && b.pin == pin);
                    if let Some(b) = existing { b.mask.add(slot, fault.stuck) } else {
                        let mut mask = StuckMask::default();
                        mask.add(slot, fault.stuck);
                        batch.branches.push(BranchMask {
                            gate: gate.index(),
                            pin,
                            mask,
                        });
                    }
                }
                FaultSite::FlipFlopInput(ff) => {
                    batch.ff_input[ff.index()].add(slot, fault.stuck);
                }
            }
        }
        batch
    }

    /// Number of faults in the batch.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Mask with one bit per occupied slot.
    pub fn valid_mask(&self) -> W {
        W::low_mask(self.width)
    }

    /// The branch mask for a pin, if any (slow path behind `has_branch`).
    #[inline]
    fn branch_mask(&self, gate: usize, pin: usize) -> Option<StuckMask<W>> {
        self.branches
            .iter()
            .find(|b| b.gate == gate && b.pin == pin)
            .map(|b| b.mask)
    }

    /// Applies the stem mask of `net` to a freshly computed value —
    /// a one-byte guard load on the (overwhelmingly common) unfaulted nets.
    #[inline]
    fn stem_filter(&self, net: usize, v: PackedV3<W>) -> PackedV3<W> {
        if self.stem_active[net] {
            self.stem[net].apply(v)
        } else {
            v
        }
    }

    /// Evaluates one time frame with every lane's own fault injected, into a
    /// caller-owned scratch frame (reset here — callers only provide the
    /// allocation).
    ///
    /// Mirrors [`run_packed3_frame`](crate::run_packed3_frame) /
    /// [`compute_frame`](crate::compute_frame): primary inputs are broadcast
    /// from `pattern`, present state comes from `present_state` per lane, and
    /// every net write passes through that net's stem mask.
    ///
    /// # Panics
    ///
    /// Panics if `pattern` or `present_state` have the wrong length.
    pub fn run_frame_into(
        &self,
        circuit: &Circuit,
        pattern: &[V3],
        present_state: &[PackedV3<W>],
        values: &mut PackedV3Values<W>,
    ) {
        assert_eq!(pattern.len(), circuit.num_inputs(), "pattern length");
        assert_eq!(
            present_state.len(),
            circuit.num_flip_flops(),
            "present-state length"
        );

        values.reset(circuit);
        for (i, &net) in circuit.inputs().iter().enumerate() {
            values.set(
                net,
                self.stem_filter(net.index(), PackedV3::broadcast(pattern[i])),
            );
        }
        for (i, ff) in circuit.flip_flops().iter().enumerate() {
            values.set(ff.q(), self.stem_filter(ff.q().index(), present_state[i]));
        }

        for &gid in circuit.topo_order() {
            let gate = circuit.gate(gid);
            let branched = self.has_branch[gid.index()];
            let pin = |pin_index: usize| -> PackedV3<W> {
                let v = values.get(gate.inputs()[pin_index]);
                if branched {
                    if let Some(mask) = self.branch_mask(gid.index(), pin_index) {
                        return mask.apply(v);
                    }
                }
                v
            };
            let n = gate.inputs().len();
            let mut out = pin(0);
            match gate.kind() {
                GateKind::And | GateKind::Nand => {
                    for i in 1..n {
                        out = out.and(pin(i));
                    }
                }
                GateKind::Or | GateKind::Nor => {
                    for i in 1..n {
                        out = out.or(pin(i));
                    }
                }
                GateKind::Xor | GateKind::Xnor => {
                    for i in 1..n {
                        out = out.xor(pin(i));
                    }
                }
                GateKind::Not | GateKind::Buf => {}
            }
            if gate.kind().inverting() {
                out = out.not();
            }
            values.set(
                gate.output(),
                self.stem_filter(gate.output().index(), out),
            );
        }
    }

    /// Evaluates one time frame, allocating a fresh frame of values.
    pub fn run_frame(
        &self,
        circuit: &Circuit,
        pattern: &[V3],
        present_state: &[PackedV3<W>],
    ) -> PackedV3Values<W> {
        let mut values = PackedV3Values::new(circuit);
        self.run_frame_into(circuit, pattern, present_state, &mut values);
        values
    }

    /// Reads the packed next state, applying flip-flop-input masks.
    pub fn next_state_into(
        &self,
        circuit: &Circuit,
        values: &PackedV3Values<W>,
        state: &mut [PackedV3<W>],
    ) {
        for (i, ff) in circuit.flip_flops().iter().enumerate() {
            let v = values.get(ff.d());
            state[i] = if self.ff_input[i].is_empty() {
                v
            } else {
                self.ff_input[i].apply(v)
            };
        }
    }
}

/// The result of screening a fault list against one test sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScreenOutcome {
    /// Per fault (in input order), the earliest conventional detection —
    /// bit-identical to `conventional_detection(good, &simulate(..))`.
    pub detections: Vec<Option<Detection>>,
    /// Packed gate-word evaluations spent: one per gate per frame per
    /// *word pass*, regardless of lane width (see
    /// `moa_core::PerfCounters::gate_evals` for the convention). A wider
    /// word does the same screening in fewer passes and therefore reports
    /// proportionally fewer evaluations for the same fault list.
    pub gate_evaluations: u64,
}

/// Screens one word-sized chunk of faults from the all-`X` initial state,
/// reusing the caller's scratch buffers across frames.
fn screen_chunk<W: Word>(
    circuit: &Circuit,
    seq: &TestSequence,
    good: &SimTrace,
    chunk: &[Fault],
    state: &mut Vec<PackedV3<W>>,
    values: &mut PackedV3Values<W>,
    gate_evaluations: &mut u64,
) -> Vec<Option<Detection>> {
    let batch = FaultBatch::<W>::new(circuit, chunk);
    let valid = batch.valid_mask();
    let mut detections: Vec<Option<Detection>> = vec![None; chunk.len()];
    let mut resolved = W::ZERO;
    state.clear();
    state.resize(circuit.num_flip_flops(), PackedV3::ALL_X);
    for u in 0..seq.len() {
        if resolved == valid {
            break;
        }
        batch.run_frame_into(circuit, seq.pattern(u), state, values);
        *gate_evaluations += circuit.num_gates() as u64;
        // Scan outputs in ascending order so each lane records the same
        // earliest (time, output) conflict as the scalar path.
        for (o, &net) in circuit.outputs().iter().enumerate() {
            let out = values.get(net);
            let mismatch = match good.outputs[u][o].to_bool() {
                Some(true) => out.zeros,
                Some(false) => out.ones,
                None => W::ZERO,
            };
            let newly = mismatch.and(valid).and_not(resolved);
            resolved = resolved.or(newly);
            newly.for_each_set_lane(|slot| {
                detections[slot] = Some(Detection { time: u, output: o });
            });
        }
        batch.next_state_into(circuit, values, state);
    }
    detections
}

/// Conventionally screens `faults` a word at a time from the all-`X` initial
/// state, returning each fault's earliest conventional [`Detection`] —
/// generic driver shared by every lane width.
fn screen_faults_generic<W: Word>(
    circuit: &Circuit,
    seq: &TestSequence,
    good: &SimTrace,
    faults: &[Fault],
    threads: usize,
) -> ScreenOutcome {
    assert_eq!(good.outputs.len(), seq.len(), "good trace length");
    let chunks: Vec<&[Fault]> = faults.chunks(W::LANES).collect();
    // Spawning a scoped worker costs more than screening a word-sized batch
    // on a small circuit, so never hand a worker fewer than two chunks —
    // short fault lists stay on the calling thread. Verdicts are unaffected:
    // the partition never changes what any chunk computes.
    let threads = threads.max(1).min((chunks.len() / 2).max(1));
    let mut outcome = ScreenOutcome {
        detections: Vec::with_capacity(faults.len()),
        gate_evaluations: 0,
    };
    if threads <= 1 {
        let mut state = Vec::new();
        let mut values = PackedV3Values::<W>::new(circuit);
        for chunk in chunks {
            let detections = screen_chunk(
                circuit,
                seq,
                good,
                chunk,
                &mut state,
                &mut values,
                &mut outcome.gate_evaluations,
            );
            outcome.detections.extend(detections);
        }
        return outcome;
    }

    // Thread axis: contiguous ranges of chunks per worker, each worker
    // reusing its own scratch across its chunks. Chunk membership is a pure
    // function of fault order and lane width — the partition never affects
    // what any chunk computes — and the results are merged back positionally
    // (chunk-major, then lane order), so the outcome is bit-identical to the
    // single-threaded pass for every thread count.
    let per_worker = chunks.len().div_ceil(threads);
    let parts: Vec<(usize, Vec<Option<Detection>>, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .chunks(per_worker)
            .enumerate()
            .map(|(part, mine)| {
                scope.spawn(move || {
                    let mut state = Vec::new();
                    let mut values = PackedV3Values::<W>::new(circuit);
                    let mut evals = 0u64;
                    let mut detections = Vec::new();
                    for chunk in mine {
                        detections.extend(screen_chunk(
                            circuit, seq, good, chunk, &mut state, &mut values, &mut evals,
                        ));
                    }
                    (part, detections, evals)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("screening worker panicked"))
            .collect()
    });
    let mut parts = parts;
    parts.sort_by_key(|&(part, _, _)| part);
    for (_, detections, evals) in parts {
        outcome.detections.extend(detections);
        outcome.gate_evaluations += evals;
    }
    outcome
}

/// Conventionally screens `faults` 64 at a time from the all-`X` initial
/// state, returning each fault's earliest conventional [`Detection`] — the
/// original single-threaded `u64` kernel.
///
/// `good` must be the fault-free trace of `seq` (`simulate(circuit, seq,
/// None)`). A batch stops early once every slot has resolved; verdicts are
/// unaffected because a detection records only the *earliest* conflict.
///
/// # Panics
///
/// Panics if `good` does not have one output frame per pattern of `seq`.
pub fn screen_faults(
    circuit: &Circuit,
    seq: &TestSequence,
    good: &SimTrace,
    faults: &[Fault],
) -> ScreenOutcome {
    screen_faults_generic::<u64>(circuit, seq, good, faults, 1)
}

/// Conventionally screens `faults` with the kernel instantiated at `lanes`
/// faults per word, partitioning the word-sized batches across `threads`
/// worker threads (`0` or `1` runs on the calling thread; the count is
/// capped at the number of batches).
///
/// The outcome is bit-identical to [`screen_faults`] — and therefore to the
/// scalar conventional simulation — for every `(lanes, threads)` pair; only
/// the wall time differs. See the module docs for why.
///
/// # Panics
///
/// Panics if `good` does not have one output frame per pattern of `seq`.
pub fn screen_faults_wide(
    circuit: &Circuit,
    seq: &TestSequence,
    good: &SimTrace,
    faults: &[Fault],
    lanes: ScreenLanes,
    threads: usize,
) -> ScreenOutcome {
    match lanes {
        ScreenLanes::L64 => screen_faults_generic::<u64>(circuit, seq, good, faults, threads),
        ScreenLanes::L128 => {
            screen_faults_generic::<[u64; 2]>(circuit, seq, good, faults, threads)
        }
        ScreenLanes::L256 => {
            screen_faults_generic::<[u64; 4]>(circuit, seq, good, faults, threads)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conventional::conventional_detection;
    use crate::trace::simulate;
    use moa_netlist::{full_fault_list, CircuitBuilder};

    fn c1() -> Circuit {
        let mut b = CircuitBuilder::new("c1");
        b.add_input("a").unwrap();
        b.add_input("b").unwrap();
        b.add_flip_flop("q0", "d0").unwrap();
        b.add_flip_flop("q1", "d1").unwrap();
        b.add_gate(GateKind::Nand, "w", &["a", "q0"]).unwrap();
        b.add_gate(GateKind::Xnor, "d0", &["w", "q1"]).unwrap();
        b.add_gate(GateKind::Nor, "d1", &["b", "q0"]).unwrap();
        b.add_gate(GateKind::Or, "v", &["w", "q1"]).unwrap();
        b.add_gate(GateKind::Not, "z", &["v"]).unwrap();
        b.add_output("z");
        b.finish().unwrap()
    }

    fn assert_screen_matches_scalar(circuit: &Circuit, seq: &TestSequence) {
        let good = simulate(circuit, seq, None);
        let faults = full_fault_list(circuit);
        let outcome = screen_faults(circuit, seq, &good, &faults);
        assert_eq!(outcome.detections.len(), faults.len());
        for (fault, packed) in faults.iter().zip(&outcome.detections) {
            let faulty = simulate(circuit, seq, Some(fault));
            let scalar = conventional_detection(&good, &faulty);
            assert_eq!(
                *packed,
                scalar,
                "{} under {:?}",
                fault.describe(circuit),
                seq
            );
        }
    }

    /// Every stem, branch, and flip-flop-input fault of the test circuit
    /// screens to exactly the scalar conventional verdict.
    #[test]
    fn screen_matches_scalar_for_every_fault() {
        let c = c1();
        let seq = TestSequence::from_words(&["10", "01", "11", "00", "1X", "X1"]).unwrap();
        assert_screen_matches_scalar(&c, &seq);
    }

    /// More faults than one word: the chunked driver covers every slot.
    #[test]
    fn chunking_covers_more_than_64_faults() {
        let c = c1();
        let seq = TestSequence::from_words(&["10", "01", "11"]).unwrap();
        let good = simulate(&c, &seq, None);
        // 5x the fault list: 70 faults, two chunks, duplicates must agree.
        let base = full_fault_list(&c);
        let mut faults = Vec::new();
        for _ in 0..5 {
            faults.extend(base.iter().copied());
        }
        let outcome = screen_faults(&c, &seq, &good, &faults);
        assert!(faults.len() > SCREEN_LANES);
        assert_eq!(outcome.detections.len(), faults.len());
        for i in base.len()..faults.len() {
            assert_eq!(outcome.detections[i], outcome.detections[i % base.len()]);
        }
    }

    /// An empty fault list is a no-op.
    #[test]
    fn empty_batch() {
        let c = c1();
        let seq = TestSequence::from_words(&["10"]).unwrap();
        let good = simulate(&c, &seq, None);
        let outcome = screen_faults(&c, &seq, &good, &[]);
        assert!(outcome.detections.is_empty());
        assert_eq!(outcome.gate_evaluations, 0);
    }

    /// Early exit (all slots resolved) never changes a verdict.
    #[test]
    fn early_exit_preserves_verdicts() {
        let c = c1();
        let long = TestSequence::from_words(&["10"; 40]).unwrap();
        assert_screen_matches_scalar(&c, &long);
    }

    /// Two faults on the same net with opposite polarities stay independent.
    #[test]
    fn opposite_polarities_share_a_net() {
        let c = c1();
        let net = c.find_net("w").unwrap();
        let seq = TestSequence::from_words(&["11", "11", "00"]).unwrap();
        let good = simulate(&c, &seq, None);
        let faults = [Fault::stem(net, true), Fault::stem(net, false)];
        let outcome = screen_faults(&c, &seq, &good, &faults);
        for (fault, packed) in faults.iter().zip(&outcome.detections) {
            let faulty = simulate(&c, &seq, Some(fault));
            assert_eq!(*packed, conventional_detection(&good, &faulty));
        }
    }

    /// Every wide instantiation, at several thread counts, reports verdicts
    /// bit-identical to the 64-lane single-threaded kernel — on a fault list
    /// large enough (5x duplication) to occupy upper lanes of every width.
    #[test]
    fn wide_kernels_match_the_64_lane_kernel() {
        let c = c1();
        let seq = TestSequence::from_words(&["10", "01", "11", "00", "1X", "X1"]).unwrap();
        let good = simulate(&c, &seq, None);
        let base = full_fault_list(&c);
        let mut faults = Vec::new();
        for _ in 0..20 {
            faults.extend(base.iter().copied());
        }
        assert!(faults.len() > 256, "need all lanes of the widest word");
        let reference = screen_faults(&c, &seq, &good, &faults);
        for lanes in ScreenLanes::ALL {
            for threads in [1, 2, 3, 8] {
                let wide = screen_faults_wide(&c, &seq, &good, &faults, lanes, threads);
                assert_eq!(
                    wide.detections, reference.detections,
                    "lanes={lanes} threads={threads}"
                );
            }
        }
    }

    /// Gate-eval accounting is lane-invariant per word pass: a fault list
    /// fitting one word of every width runs the same frames and charges the
    /// same evaluations at 64, 128 and 256 lanes; a list needing four 64-lane
    /// words never charges the 256-lane kernel more than the 64-lane one.
    #[test]
    fn gate_evals_charge_one_per_word_pass_regardless_of_lane_width() {
        let c = c1();
        let seq = TestSequence::from_words(&["10", "01", "11", "00"]).unwrap();
        let good = simulate(&c, &seq, None);
        let base = full_fault_list(&c);
        let small: Vec<Fault> = base.iter().copied().take(14).collect();
        let narrow = screen_faults_wide(&c, &seq, &good, &small, ScreenLanes::L64, 1);
        for lanes in [ScreenLanes::L128, ScreenLanes::L256] {
            let wide = screen_faults_wide(&c, &seq, &good, &small, lanes, 1);
            assert_eq!(
                wide.gate_evaluations, narrow.gate_evaluations,
                "one word pass must cost the same at {lanes} lanes"
            );
        }
        let mut big = Vec::new();
        for _ in 0..20 {
            big.extend(base.iter().copied());
        }
        let narrow = screen_faults_wide(&c, &seq, &good, &big, ScreenLanes::L64, 1);
        let wide = screen_faults_wide(&c, &seq, &good, &big, ScreenLanes::L256, 1);
        assert!(
            wide.gate_evaluations <= narrow.gate_evaluations,
            "wider words take fewer passes: {} vs {}",
            wide.gate_evaluations,
            narrow.gate_evaluations
        );
    }

    /// The thread axis never changes the evaluation count — work moves
    /// between workers, it is not duplicated or dropped.
    #[test]
    fn gate_evals_are_thread_invariant() {
        let c = c1();
        let seq = TestSequence::from_words(&["10", "01", "11"]).unwrap();
        let good = simulate(&c, &seq, None);
        let base = full_fault_list(&c);
        let mut faults = Vec::new();
        for _ in 0..20 {
            faults.extend(base.iter().copied());
        }
        let one = screen_faults_wide(&c, &seq, &good, &faults, ScreenLanes::L64, 1);
        for threads in [2, 4, 16] {
            let many = screen_faults_wide(&c, &seq, &good, &faults, ScreenLanes::L64, threads);
            assert_eq!(many.gate_evaluations, one.gate_evaluations);
            assert_eq!(many.detections, one.detections);
        }
    }

    /// `ScreenLanes` round-trips through its numeric width and rejects
    /// anything that is not an instantiated kernel.
    #[test]
    fn screen_lanes_round_trip() {
        for lanes in ScreenLanes::ALL {
            assert_eq!(ScreenLanes::from_lanes(lanes.lanes()), Some(lanes));
        }
        for n in [0, 1, 32, 63, 65, 127, 192, 512] {
            assert_eq!(ScreenLanes::from_lanes(n), None, "{n}");
        }
        assert_eq!(ScreenLanes::default(), ScreenLanes::L64);
        assert_eq!(ScreenLanes::L256.to_string(), "256");
    }
}
