//! Parallel-fault screening: one *distinct* fault per bit slot.
//!
//! [`packed3`](crate::packed3) injects a single fault into all 64 slots of a
//! word (64 scenarios, one faulty machine). This module is the transpose:
//! each bit slot carries a *different* faulty machine under the *same* input
//! sequence and the same all-`X` initial state, so one pass over the sequence
//! conventionally screens up to 64 faults at the cost of roughly one scalar
//! simulation. The campaign uses it as a pre-pass that detects and drops
//! faults in batches before the expensive per-fault MOA procedure runs.
//!
//! Fault injection is expressed as per-slot masks. For a net whose slot-`k`
//! fault pins it to 1 (`f1` mask bit) or 0 (`f0` mask bit), every write of a
//! dual-rail value `v` to that net is filtered through
//!
//! ```text
//! m = f1 | f0
//! v.ones  = (v.ones  & !m) | f1
//! v.zeros = (v.zeros & !m) | f0
//! ```
//!
//! which leaves all healthy slots untouched. Because every dual-rail gate
//! operation is bitwise (slot columns never interact), slot `k` of the packed
//! run is exactly the scalar three-valued simulation of fault `k`'s machine —
//! the verdicts are bit-identical to [`conventional_detection`] on a scalar
//! [`simulate`](crate::simulate) trace, which the tests assert fault by fault.
//!
//! [`conventional_detection`]: crate::conventional_detection

use moa_logic::{GateKind, V3};
use moa_netlist::{Circuit, Fault, FaultSite};

use crate::conventional::Detection;
use crate::packed3::{Packed3, Packed3Values};
use crate::sequence::TestSequence;
use crate::trace::SimTrace;

/// The number of faults screened per packed word.
pub const SCREEN_LANES: usize = 64;

/// Per-slot dual-rail stuck masks: bit `k` of `ones` pins slot `k` to 1, bit
/// `k` of `zeros` pins it to 0.
#[derive(Debug, Clone, Copy, Default)]
struct StuckMask {
    ones: u64,
    zeros: u64,
}

impl StuckMask {
    #[inline]
    fn add(&mut self, slot: usize, stuck: bool) {
        let bit = 1u64 << slot;
        if stuck {
            self.ones |= bit;
        } else {
            self.zeros |= bit;
        }
    }

    /// Filters a written value through the stuck slots.
    #[inline]
    fn apply(self, v: Packed3) -> Packed3 {
        let m = self.ones | self.zeros;
        Packed3 {
            ones: (v.ones & !m) | self.ones,
            zeros: (v.zeros & !m) | self.zeros,
        }
    }

    #[inline]
    fn is_empty(self) -> bool {
        self.ones | self.zeros == 0
    }
}

/// A branch (gate-input) fault's per-slot mask, applied to the pin's *view*
/// of its net without disturbing the net itself.
#[derive(Debug, Clone, Copy)]
struct BranchMask {
    gate: usize,
    pin: usize,
    mask: StuckMask,
}

/// Up to [`SCREEN_LANES`] distinct faults compiled into per-slot injection
/// masks over one circuit.
#[derive(Debug, Clone)]
pub struct FaultBatch {
    /// Number of occupied slots.
    width: usize,
    /// Per-net stem masks, applied after every write to the net.
    stem: Vec<StuckMask>,
    /// Gates with at least one branch-faulted input pin (fast guard).
    has_branch: Vec<bool>,
    /// Sparse branch-fault masks.
    branches: Vec<BranchMask>,
    /// Per-flip-flop input masks, applied when the next state is read.
    ff_input: Vec<StuckMask>,
}

impl FaultBatch {
    /// Compiles `faults` (at most [`SCREEN_LANES`]) into slot masks; fault
    /// `k` occupies bit slot `k`.
    ///
    /// # Panics
    ///
    /// Panics if more than [`SCREEN_LANES`] faults are given or a fault
    /// references a net/gate/flip-flop outside `circuit`.
    pub fn new(circuit: &Circuit, faults: &[Fault]) -> Self {
        assert!(
            faults.len() <= SCREEN_LANES,
            "at most {SCREEN_LANES} faults per batch (got {})",
            faults.len()
        );
        let mut batch = FaultBatch {
            width: faults.len(),
            stem: vec![StuckMask::default(); circuit.num_nets()],
            has_branch: vec![false; circuit.num_gates()],
            branches: Vec::new(),
            ff_input: vec![StuckMask::default(); circuit.num_flip_flops()],
        };
        for (slot, fault) in faults.iter().enumerate() {
            match fault.site {
                FaultSite::Net(net) => batch.stem[net.index()].add(slot, fault.stuck),
                FaultSite::GateInput { gate, pin } => {
                    assert!(
                        pin < circuit.gate(gate).inputs().len(),
                        "branch fault pin out of range"
                    );
                    batch.has_branch[gate.index()] = true;
                    let existing = batch
                        .branches
                        .iter_mut()
                        .find(|b| b.gate == gate.index() && b.pin == pin);
                    if let Some(b) = existing { b.mask.add(slot, fault.stuck) } else {
                        let mut mask = StuckMask::default();
                        mask.add(slot, fault.stuck);
                        batch.branches.push(BranchMask {
                            gate: gate.index(),
                            pin,
                            mask,
                        });
                    }
                }
                FaultSite::FlipFlopInput(ff) => {
                    batch.ff_input[ff.index()].add(slot, fault.stuck);
                }
            }
        }
        batch
    }

    /// Number of faults in the batch.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Mask with one bit per occupied slot.
    pub fn valid_mask(&self) -> u64 {
        if self.width == SCREEN_LANES {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        }
    }

    /// The branch mask for a pin, if any (slow path behind `has_branch`).
    #[inline]
    fn branch_mask(&self, gate: usize, pin: usize) -> Option<StuckMask> {
        self.branches
            .iter()
            .find(|b| b.gate == gate && b.pin == pin)
            .map(|b| b.mask)
    }

    /// Evaluates one time frame with every slot's own fault injected.
    ///
    /// Mirrors [`run_packed3_frame`](crate::run_packed3_frame) /
    /// [`compute_frame`](crate::compute_frame): primary inputs are broadcast
    /// from `pattern`, present state comes from `present_state` per slot, and
    /// every net write passes through that net's stem mask.
    ///
    /// # Panics
    ///
    /// Panics if `pattern` or `present_state` have the wrong length.
    pub fn run_frame(
        &self,
        circuit: &Circuit,
        pattern: &[V3],
        present_state: &[Packed3],
    ) -> Packed3Values {
        assert_eq!(pattern.len(), circuit.num_inputs(), "pattern length");
        assert_eq!(
            present_state.len(),
            circuit.num_flip_flops(),
            "present-state length"
        );

        let mut values = Packed3Values::new(circuit);
        for (i, &net) in circuit.inputs().iter().enumerate() {
            values.set(
                net,
                self.stem[net.index()].apply(Packed3::broadcast(pattern[i])),
            );
        }
        for (i, ff) in circuit.flip_flops().iter().enumerate() {
            values.set(ff.q(), self.stem[ff.q().index()].apply(present_state[i]));
        }

        for &gid in circuit.topo_order() {
            let gate = circuit.gate(gid);
            let branched = self.has_branch[gid.index()];
            let pin = |pin_index: usize| -> Packed3 {
                let v = values.get(gate.inputs()[pin_index]);
                if branched {
                    if let Some(mask) = self.branch_mask(gid.index(), pin_index) {
                        return mask.apply(v);
                    }
                }
                v
            };
            let n = gate.inputs().len();
            let mut out = pin(0);
            match gate.kind() {
                GateKind::And | GateKind::Nand => {
                    for i in 1..n {
                        out = out.and(pin(i));
                    }
                }
                GateKind::Or | GateKind::Nor => {
                    for i in 1..n {
                        out = out.or(pin(i));
                    }
                }
                GateKind::Xor | GateKind::Xnor => {
                    for i in 1..n {
                        out = out.xor(pin(i));
                    }
                }
                GateKind::Not | GateKind::Buf => {}
            }
            if gate.kind().inverting() {
                out = out.not();
            }
            values.set(gate.output(), self.stem[gate.output().index()].apply(out));
        }
        values
    }

    /// Reads the packed next state, applying flip-flop-input masks.
    pub fn next_state_into(
        &self,
        circuit: &Circuit,
        values: &Packed3Values,
        state: &mut [Packed3],
    ) {
        for (i, ff) in circuit.flip_flops().iter().enumerate() {
            let v = values.get(ff.d());
            state[i] = if self.ff_input[i].is_empty() {
                v
            } else {
                self.ff_input[i].apply(v)
            };
        }
    }
}

/// The result of screening a fault list against one test sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScreenOutcome {
    /// Per fault (in input order), the earliest conventional detection —
    /// bit-identical to `conventional_detection(good, &simulate(..))`.
    pub detections: Vec<Option<Detection>>,
    /// Packed gate-word evaluations spent (one per gate per frame per batch).
    pub gate_evaluations: u64,
}

/// Conventionally screens `faults` 64 at a time from the all-`X` initial
/// state, returning each fault's earliest conventional [`Detection`].
///
/// `good` must be the fault-free trace of `seq` (`simulate(circuit, seq,
/// None)`). A batch stops early once every slot has resolved; verdicts are
/// unaffected because a detection records only the *earliest* conflict.
///
/// # Panics
///
/// Panics if `good` does not have one output frame per pattern of `seq`.
pub fn screen_faults(
    circuit: &Circuit,
    seq: &TestSequence,
    good: &SimTrace,
    faults: &[Fault],
) -> ScreenOutcome {
    assert_eq!(good.outputs.len(), seq.len(), "good trace length");
    let mut outcome = ScreenOutcome {
        detections: Vec::with_capacity(faults.len()),
        gate_evaluations: 0,
    };
    let mut state = vec![Packed3::ALL_X; circuit.num_flip_flops()];
    for chunk in faults.chunks(SCREEN_LANES) {
        let batch = FaultBatch::new(circuit, chunk);
        let valid = batch.valid_mask();
        let mut detections: Vec<Option<Detection>> = vec![None; chunk.len()];
        let mut resolved = 0u64;
        state.fill(Packed3::ALL_X);
        for u in 0..seq.len() {
            if resolved == valid {
                break;
            }
            let values = batch.run_frame(circuit, seq.pattern(u), &state);
            outcome.gate_evaluations += circuit.num_gates() as u64;
            // Scan outputs in ascending order so each slot records the same
            // earliest (time, output) conflict as the scalar path.
            for (o, &net) in circuit.outputs().iter().enumerate() {
                let out = values.get(net);
                let mismatch = match good.outputs[u][o].to_bool() {
                    Some(true) => out.zeros,
                    Some(false) => out.ones,
                    None => 0,
                };
                let mut newly = mismatch & valid & !resolved;
                resolved |= newly;
                while newly != 0 {
                    let slot = newly.trailing_zeros() as usize;
                    newly &= newly - 1;
                    detections[slot] = Some(Detection { time: u, output: o });
                }
            }
            batch.next_state_into(circuit, &values, &mut state);
        }
        outcome.detections.append(&mut detections);
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conventional::conventional_detection;
    use crate::trace::simulate;
    use moa_netlist::{full_fault_list, CircuitBuilder};

    fn c1() -> Circuit {
        let mut b = CircuitBuilder::new("c1");
        b.add_input("a").unwrap();
        b.add_input("b").unwrap();
        b.add_flip_flop("q0", "d0").unwrap();
        b.add_flip_flop("q1", "d1").unwrap();
        b.add_gate(GateKind::Nand, "w", &["a", "q0"]).unwrap();
        b.add_gate(GateKind::Xnor, "d0", &["w", "q1"]).unwrap();
        b.add_gate(GateKind::Nor, "d1", &["b", "q0"]).unwrap();
        b.add_gate(GateKind::Or, "v", &["w", "q1"]).unwrap();
        b.add_gate(GateKind::Not, "z", &["v"]).unwrap();
        b.add_output("z");
        b.finish().unwrap()
    }

    fn assert_screen_matches_scalar(circuit: &Circuit, seq: &TestSequence) {
        let good = simulate(circuit, seq, None);
        let faults = full_fault_list(circuit);
        let outcome = screen_faults(circuit, seq, &good, &faults);
        assert_eq!(outcome.detections.len(), faults.len());
        for (fault, packed) in faults.iter().zip(&outcome.detections) {
            let faulty = simulate(circuit, seq, Some(fault));
            let scalar = conventional_detection(&good, &faulty);
            assert_eq!(
                *packed,
                scalar,
                "{} under {:?}",
                fault.describe(circuit),
                seq
            );
        }
    }

    /// Every stem, branch, and flip-flop-input fault of the test circuit
    /// screens to exactly the scalar conventional verdict.
    #[test]
    fn screen_matches_scalar_for_every_fault() {
        let c = c1();
        let seq = TestSequence::from_words(&["10", "01", "11", "00", "1X", "X1"]).unwrap();
        assert_screen_matches_scalar(&c, &seq);
    }

    /// More faults than one word: the chunked driver covers every slot.
    #[test]
    fn chunking_covers_more_than_64_faults() {
        let c = c1();
        let seq = TestSequence::from_words(&["10", "01", "11"]).unwrap();
        let good = simulate(&c, &seq, None);
        // 5x the fault list: 70 faults, two chunks, duplicates must agree.
        let base = full_fault_list(&c);
        let mut faults = Vec::new();
        for _ in 0..5 {
            faults.extend(base.iter().copied());
        }
        let outcome = screen_faults(&c, &seq, &good, &faults);
        assert!(faults.len() > SCREEN_LANES);
        assert_eq!(outcome.detections.len(), faults.len());
        for i in base.len()..faults.len() {
            assert_eq!(outcome.detections[i], outcome.detections[i % base.len()]);
        }
    }

    /// An empty fault list is a no-op.
    #[test]
    fn empty_batch() {
        let c = c1();
        let seq = TestSequence::from_words(&["10"]).unwrap();
        let good = simulate(&c, &seq, None);
        let outcome = screen_faults(&c, &seq, &good, &[]);
        assert!(outcome.detections.is_empty());
        assert_eq!(outcome.gate_evaluations, 0);
    }

    /// Early exit (all slots resolved) never changes a verdict.
    #[test]
    fn early_exit_preserves_verdicts() {
        let c = c1();
        let long = TestSequence::from_words(&["10"; 40]).unwrap();
        assert_screen_matches_scalar(&c, &long);
    }

    /// Two faults on the same net with opposite polarities stay independent.
    #[test]
    fn opposite_polarities_share_a_net() {
        let c = c1();
        let net = c.find_net("w").unwrap();
        let seq = TestSequence::from_words(&["11", "11", "00"]).unwrap();
        let good = simulate(&c, &seq, None);
        let faults = [Fault::stem(net, true), Fault::stem(net, false)];
        let outcome = screen_faults(&c, &seq, &good, &faults);
        for (fault, packed) in faults.iter().zip(&outcome.detections) {
            let faulty = simulate(&c, &seq, Some(fault));
            assert_eq!(*packed, conventional_detection(&good, &faulty));
        }
    }
}
