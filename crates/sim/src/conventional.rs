//! Conventional (single-observation-time) fault detection.

use moa_netlist::{Circuit, Fault};

use crate::trace::{simulate, SimTrace};
use crate::TestSequence;

/// A single-observation-time detection: at time unit `time`, primary output
/// `output` is specified to opposite binary values in the fault-free and
/// faulty circuits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Detection {
    /// Time unit of the detection.
    pub time: usize,
    /// Primary-output index (into `circuit.outputs()`).
    pub output: usize,
}

/// Finds the earliest conventional detection by comparing a fault-free and a
/// faulty trace, or `None` if the traces never conflict on a specified output.
///
/// # Example
///
/// ```
/// use moa_netlist::{parse_bench, Fault};
/// use moa_sim::{conventional_detection, simulate, TestSequence};
///
/// let c = parse_bench("INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n")?;
/// let seq = TestSequence::from_words(&["0"])?;
/// let good = simulate(&c, &seq, None);
/// let fault = Fault::stem(c.find_net("z").unwrap(), false);
/// let bad = simulate(&c, &seq, Some(&fault));
/// let det = conventional_detection(&good, &bad).unwrap();
/// assert_eq!((det.time, det.output), (0, 0));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn conventional_detection(good: &SimTrace, faulty: &SimTrace) -> Option<Detection> {
    debug_assert_eq!(good.len(), faulty.len());
    for (time, (g, f)) in good.outputs.iter().zip(&faulty.outputs).enumerate() {
        for (output, (&gv, &fv)) in g.iter().zip(f).enumerate() {
            if gv.conflicts(fv) {
                return Some(Detection { time, output });
            }
        }
    }
    None
}

/// Simulates `fault` under `seq` and reports the earliest conventional
/// detection together with the faulty trace (which the expansion procedure
/// reuses as its starting point).
pub fn run_conventional(
    circuit: &Circuit,
    seq: &TestSequence,
    good: &SimTrace,
    fault: &Fault,
) -> (Option<Detection>, SimTrace) {
    let faulty = simulate(circuit, seq, Some(fault));
    (conventional_detection(good, &faulty), faulty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use moa_logic::{GateKind, V3};
    use moa_netlist::CircuitBuilder;

    /// The motivating situation of the paper's introduction: the faulty
    /// output depends on the uninitialized state, so three-valued simulation
    /// sees X and conventional detection fails.
    #[test]
    fn conventional_misses_state_dependent_difference() {
        let mut b = CircuitBuilder::new("miss");
        b.add_input("a").unwrap();
        b.add_flip_flop("q", "d").unwrap();
        // d = XOR(a, q): the state never initializes; z = AND(a, q).
        b.add_gate(GateKind::Xor, "d", &["a", "q"]).unwrap();
        b.add_gate(GateKind::And, "z", &["a", "q"]).unwrap();
        b.add_output("z");
        let c = b.finish().unwrap();
        let seq = TestSequence::from_words(&["1", "1"]).unwrap();
        let good = simulate(&c, &seq, None);
        // z stuck-at-1: the good output is X (depends on q), faulty is 1.
        let fault = Fault::stem(c.find_net("z").unwrap(), true);
        let (det, faulty) = run_conventional(&c, &seq, &good, &fault);
        assert_eq!(det, None, "X vs 1 is not a conventional detection");
        assert_eq!(faulty.outputs[0], vec![V3::One]);
        assert_eq!(good.outputs[0], vec![V3::X]);
    }

    #[test]
    fn detection_reports_earliest_conflict() {
        let mut b = CircuitBuilder::new("hit");
        b.add_input("a").unwrap();
        b.add_gate(GateKind::Buf, "z", &["a"]).unwrap();
        b.add_output("z");
        let c = b.finish().unwrap();
        let seq = TestSequence::from_words(&["1", "0", "0"]).unwrap();
        let good = simulate(&c, &seq, None);
        let fault = Fault::stem(c.find_net("z").unwrap(), true);
        let (det, _) = run_conventional(&c, &seq, &good, &fault);
        // First conflict is at time 1 (good 0 vs stuck 1).
        assert_eq!(det, Some(Detection { time: 1, output: 0 }));
    }
}
