//! Differential fault simulation: faulty frames as deltas from the good
//! trace.
//!
//! Conventional per-fault simulation re-evaluates every gate of every time
//! frame. But a faulty frame differs from the corresponding *good* frame only
//! inside the fault's cone of difference (plus whatever state divergence has
//! accumulated), so starting each frame from the cached good values and
//! propagating only the differences — with the event-driven evaluator — does
//! a small fraction of the work on large circuits.
//!
//! The result is bit-for-bit identical to [`simulate`](crate::simulate) with
//! the fault injected (unit and property tested).

use moa_logic::V3;
use moa_netlist::{Circuit, Fault, FaultSite};

use crate::event::EventSim;
use crate::frame::{compute_frame, frame_next_state, frame_outputs, NetValues};
use crate::trace::SimTrace;
use crate::TestSequence;

/// The cached per-time-unit net values of the fault-free machine, shared by
/// every fault simulated under the same sequence.
#[derive(Debug, Clone)]
pub struct GoodFrames {
    frames: Vec<NetValues>,
    states: Vec<Vec<V3>>,
    outputs: Vec<Vec<V3>>,
}

impl GoodFrames {
    /// Simulates the fault-free machine and caches every frame.
    ///
    /// # Panics
    ///
    /// Panics if `seq` width does not match the circuit.
    pub fn compute(circuit: &Circuit, seq: &TestSequence) -> Self {
        assert_eq!(seq.num_inputs(), circuit.num_inputs(), "sequence width");
        let mut states = vec![vec![V3::X; circuit.num_flip_flops()]];
        let mut frames = Vec::with_capacity(seq.len());
        let mut outputs = Vec::with_capacity(seq.len());
        for u in 0..seq.len() {
            let frame = compute_frame(circuit, seq.pattern(u), &states[u], None);
            states.push(frame_next_state(circuit, &frame, None));
            outputs.push(frame_outputs(circuit, &frame));
            frames.push(frame);
        }
        GoodFrames {
            frames,
            states,
            outputs,
        }
    }

    /// The cached frame of time unit `u`.
    pub fn frame(&self, u: usize) -> &NetValues {
        &self.frames[u]
    }

    /// The fault-free trace (states and outputs) these frames produce.
    pub fn to_trace(&self) -> SimTrace {
        SimTrace {
            states: self.states.clone(),
            outputs: self.outputs.clone(),
        }
    }
}

/// Simulates `fault` under `seq`, frame-by-frame, as deltas from `good`.
///
/// Equivalent to `simulate(circuit, seq, Some(fault))` but each frame starts
/// from the cached good values and only the difference cone re-evaluates.
///
/// # Panics
///
/// Panics if `good` was computed for a different sequence length.
pub fn simulate_differential(
    circuit: &Circuit,
    seq: &TestSequence,
    good: &GoodFrames,
    fault: &Fault,
) -> SimTrace {
    simulate_differential_counted(circuit, seq, good, fault).0
}

/// [`simulate_differential`], also returning the number of gate evaluations
/// the event-driven propagation performed (for the campaign's perf tallies).
///
/// # Panics
///
/// Panics if `good` was computed for a different sequence length.
pub fn simulate_differential_counted(
    circuit: &Circuit,
    seq: &TestSequence,
    good: &GoodFrames,
    fault: &Fault,
) -> (SimTrace, u64) {
    assert_eq!(good.frames.len(), seq.len(), "good frames match sequence");
    let mut sim = EventSim::new(circuit, Some(fault));
    let mut states = vec![vec![V3::X; circuit.num_flip_flops()]];
    let mut outputs = Vec::with_capacity(seq.len());
    let mut state_changes: Vec<(moa_netlist::NetId, V3)> = Vec::new();

    for u in 0..seq.len() {
        // Start from the good frame, then replay the differences: the faulty
        // present state and the fault site itself.
        sim.load_from(good.frame(u));
        state_changes.clear();
        state_changes.extend(
            circuit
                .flip_flops()
                .iter()
                .zip(&states[u])
                .filter(|(ff, &v)| good.frame(u)[ff.q()] != v)
                .map(|(ff, &v)| (ff.q(), v)),
        );
        sim.update(&state_changes);
        sim.replay_fault();

        outputs.push(frame_outputs(circuit, sim.values()));
        states.push(frame_next_state(circuit, sim.values(), Some(fault)));
    }
    (SimTrace { states, outputs }, sim.evaluations())
}

impl EventSim<'_> {
    /// Replaces the current values wholesale (the caller provides a
    /// consistent frame, e.g. a cached good frame) without scheduling any
    /// events.
    pub fn load(&mut self, values: NetValues) {
        self.set_values(values);
    }

    /// Re-asserts the injected fault on top of loaded values: pins the stem
    /// site (scheduling its readers) and re-evaluates the gate behind a
    /// branch-faulted pin. Call after [`EventSim::load`] when the loaded
    /// frame was computed *without* the fault.
    pub fn replay_fault(&mut self) {
        let Some(fault) = self.fault() else { return };
        match fault.site {
            FaultSite::Net(net) => {
                let stuck = V3::from_bool(fault.stuck);
                self.force_value(net, stuck);
            }
            FaultSite::GateInput { gate, .. } => {
                self.schedule_gate(gate);
            }
            // Applied when the next state is read; nothing in-frame.
            FaultSite::FlipFlopInput(_) => {}
        }
        self.drain_events();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;
    use moa_logic::GateKind;
    use moa_netlist::{full_fault_list, CircuitBuilder, Driver, GateId};

    fn c1() -> Circuit {
        let mut b = CircuitBuilder::new("c1");
        b.add_input("a").unwrap();
        b.add_input("b").unwrap();
        b.add_flip_flop("q0", "d0").unwrap();
        b.add_flip_flop("q1", "d1").unwrap();
        b.add_gate(GateKind::Nand, "w", &["a", "q0"]).unwrap();
        b.add_gate(GateKind::Xor, "d0", &["w", "q1"]).unwrap();
        b.add_gate(GateKind::Nor, "d1", &["b", "q0"]).unwrap();
        b.add_gate(GateKind::Not, "z", &["w"]).unwrap();
        b.add_output("z");
        b.finish().unwrap()
    }

    #[test]
    fn differential_matches_full_simulation_for_every_fault() {
        let c = c1();
        let seq = TestSequence::from_words(&["10", "01", "11", "00", "10"]).unwrap();
        let good = GoodFrames::compute(&c, &seq);
        for fault in full_fault_list(&c) {
            let reference = simulate(&c, &seq, Some(&fault));
            let differential = simulate_differential(&c, &seq, &good, &fault);
            assert_eq!(reference, differential, "{}", fault.describe(&c));
        }
    }

    #[test]
    fn good_frames_reproduce_the_good_trace() {
        let c = c1();
        let seq = TestSequence::from_words(&["10", "01", "11"]).unwrap();
        let good = GoodFrames::compute(&c, &seq);
        assert_eq!(good.to_trace(), simulate(&c, &seq, None));
        assert_eq!(good.frame(0)[c.find_net("a").unwrap()], V3::One);
    }

    #[test]
    fn branch_fault_differential() {
        let c = c1();
        let seq = TestSequence::from_words(&["10", "11", "01"]).unwrap();
        let good = GoodFrames::compute(&c, &seq);
        // Branch fault on w's q0 pin.
        let Driver::Gate(w_gate) = c.driver(c.find_net("w").unwrap()) else {
            unreachable!()
        };
        for pin in 0..2 {
            for stuck in [false, true] {
                let fault = Fault::gate_input(GateId::new(w_gate.index()), pin, stuck);
                let reference = simulate(&c, &seq, Some(&fault));
                let differential = simulate_differential(&c, &seq, &good, &fault);
                assert_eq!(reference, differential, "{}", fault.describe(&c));
            }
        }
    }
}
