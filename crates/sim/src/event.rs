//! Event-driven (selective-trace) frame evaluation.
//!
//! [`compute_frame`](crate::compute_frame) re-evaluates every gate of a time
//! frame; during resimulation of expanded state sequences only a handful of
//! state variables change between closely related frames, so most gate
//! evaluations are redundant. [`EventSim`] keeps the last frame's values and
//! propagates *changes* level by level, touching only the affected cone.
//!
//! The results are bit-for-bit identical to full evaluation (covered by unit
//! and property tests).

use moa_logic::V3;
use moa_netlist::{Circuit, Driver, Fault, FaultSite, GateId, NetId};

use crate::frame::{compute_frame, NetValues};

/// An incremental, event-driven evaluator for one circuit/fault pair.
///
/// # Example
///
/// ```
/// use moa_logic::V3;
/// use moa_netlist::parse_bench;
/// use moa_sim::EventSim;
///
/// let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = AND(a, b)\n")?;
/// let mut sim = EventSim::new(&c, None);
/// sim.full_eval(&[V3::One, V3::One], &[]);
/// assert_eq!(sim.values()[c.find_net("z").unwrap()], V3::One);
/// // Flip one input: only the affected cone re-evaluates.
/// let b = c.find_net("b").unwrap();
/// sim.update(&[(b, V3::Zero)]);
/// assert_eq!(sim.values()[c.find_net("z").unwrap()], V3::Zero);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct EventSim<'a> {
    circuit: &'a Circuit,
    fault: Option<&'a Fault>,
    values: NetValues,
    /// Gates reading each net.
    readers: Vec<Vec<GateId>>,
    /// Topological level of each gate (0-based).
    level: Vec<u32>,
    /// Dirty gates per level (reused buckets).
    buckets: Vec<Vec<GateId>>,
    /// Per-gate dirty flag (avoids duplicate bucket entries).
    dirty: Vec<bool>,
    /// Gate evaluations performed since construction (for benchmarks/tests).
    evaluations: u64,
}

impl<'a> EventSim<'a> {
    /// Builds the evaluator (computes fan-out lists and gate levels).
    pub fn new(circuit: &'a Circuit, fault: Option<&'a Fault>) -> Self {
        let mut readers: Vec<Vec<GateId>> = vec![Vec::new(); circuit.num_nets()];
        for (gi, gate) in circuit.gates().iter().enumerate() {
            for &input in gate.inputs() {
                readers[input.index()].push(GateId::new(gi));
            }
        }
        let mut level = vec![0u32; circuit.num_gates()];
        let mut max_level = 0;
        for &gid in circuit.topo_order() {
            let gate = circuit.gate(gid);
            let l = gate
                .inputs()
                .iter()
                .map(|&n| match circuit.driver(n) {
                    Driver::Gate(g) => level[g.index()] + 1,
                    _ => 0,
                })
                .max()
                .unwrap_or(0);
            level[gid.index()] = l;
            max_level = max_level.max(l);
        }
        EventSim {
            circuit,
            fault,
            values: NetValues::new(circuit),
            readers,
            level,
            buckets: vec![Vec::new(); max_level as usize + 1],
            dirty: vec![false; circuit.num_gates()],
            evaluations: 0,
        }
    }

    /// The current frame values.
    pub fn values(&self) -> &NetValues {
        &self.values
    }

    /// Total gate evaluations performed so far.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Evaluates the whole frame from scratch (primary inputs and present
    /// state as in [`compute_frame`]).
    ///
    /// # Panics
    ///
    /// Panics if `pattern` or `present_state` have the wrong length.
    pub fn full_eval(&mut self, pattern: &[V3], present_state: &[V3]) {
        self.values = compute_frame(self.circuit, pattern, present_state, self.fault);
        self.evaluations += self.circuit.num_gates() as u64;
    }

    /// Applies source-value changes (primary inputs or flip-flop outputs) and
    /// propagates them through the affected cone only.
    ///
    /// A change to a stem-faulted net is ignored — the net stays pinned, as
    /// it would under full evaluation.
    ///
    /// # Panics
    ///
    /// Panics if a changed net is a gate output (only sources may be driven
    /// externally).
    pub fn update(&mut self, changes: &[(NetId, V3)]) -> &NetValues {
        for &(net, value) in changes {
            assert!(
                !matches!(self.circuit.driver(net), Driver::Gate(_)),
                "only primary inputs and flip-flop outputs may be set"
            );
            if let Some(f) = self.fault {
                if f.site == FaultSite::Net(net) {
                    continue; // pinned by the stem fault
                }
            }
            if self.values[net] != value {
                self.values[net] = value;
                self.schedule_readers(net);
            }
        }
        self.drain();
        &self.values
    }

    /// Replaces the value store (crate-internal; used by the differential
    /// simulator to start a frame from a cached good frame).
    pub(crate) fn set_values(&mut self, values: NetValues) {
        debug_assert_eq!(values.len(), self.values.len());
        debug_assert!(self.buckets.iter().all(Vec::is_empty), "no pending events");
        self.values = values;
    }

    /// Replaces the current values by *copying* from a cached frame, reusing
    /// the internal buffer (the allocation-free sibling of
    /// [`EventSim::load`]). No events are scheduled — the caller provides a
    /// consistent frame.
    ///
    /// # Panics
    ///
    /// Debug-panics if events are pending or the length differs.
    pub fn load_from(&mut self, values: &NetValues) {
        debug_assert_eq!(values.len(), self.values.len());
        debug_assert!(self.buckets.iter().all(Vec::is_empty), "no pending events");
        self.values.clone_from(values);
    }

    /// The injected fault, if any.
    pub(crate) fn fault(&self) -> Option<&'a Fault> {
        self.fault
    }

    /// Sets a net's value unconditionally (even a gate output), scheduling
    /// its readers when the value changes.
    pub(crate) fn force_value(&mut self, net: NetId, value: V3) {
        if self.values[net] != value {
            self.values[net] = value;
            self.schedule_readers(net);
        }
    }

    /// Schedules one gate for re-evaluation.
    pub(crate) fn schedule_gate(&mut self, gate: GateId) {
        if !self.dirty[gate.index()] {
            self.dirty[gate.index()] = true;
            self.buckets[self.level[gate.index()] as usize].push(gate);
        }
    }

    /// Processes all pending events (crate-internal companion of the
    /// scheduling helpers above).
    pub(crate) fn drain_events(&mut self) {
        self.drain();
    }

    fn schedule_readers(&mut self, net: NetId) {
        for k in 0..self.readers[net.index()].len() {
            let gid = self.readers[net.index()][k];
            if !self.dirty[gid.index()] {
                self.dirty[gid.index()] = true;
                self.buckets[self.level[gid.index()] as usize].push(gid);
            }
        }
    }

    fn drain(&mut self) {
        let mut input_buffer: Vec<V3> = Vec::with_capacity(8);
        for l in 0..self.buckets.len() {
            // Gates scheduled at this level; processing may schedule only
            // higher levels, so a single ascending pass suffices.
            let mut bucket = std::mem::take(&mut self.buckets[l]);
            for gid in bucket.drain(..) {
                self.dirty[gid.index()] = false;
                let gate = self.circuit.gate(gid);
                input_buffer.clear();
                for (pin, &net) in gate.inputs().iter().enumerate() {
                    input_buffer.push(crate::frame::pin_value(
                        &self.values,
                        net,
                        gid.index(),
                        pin,
                        self.fault,
                    ));
                }
                self.evaluations += 1;
                let mut out = gate.kind().eval(&input_buffer);
                if let Some(f) = self.fault {
                    if f.site == FaultSite::Net(gate.output()) {
                        out = V3::from_bool(f.stuck);
                    }
                }
                if self.values[gate.output()] != out {
                    self.values[gate.output()] = out;
                    self.schedule_readers(gate.output());
                }
            }
            // Return the (now empty) allocation to the bucket store.
            self.buckets[l] = bucket;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moa_logic::GateKind;
    use moa_netlist::CircuitBuilder;

    fn c1() -> Circuit {
        let mut b = CircuitBuilder::new("c1");
        b.add_input("a").unwrap();
        b.add_input("b").unwrap();
        b.add_flip_flop("q", "d").unwrap();
        b.add_gate(GateKind::Nand, "w", &["a", "q"]).unwrap();
        b.add_gate(GateKind::Xor, "d", &["w", "b"]).unwrap();
        b.add_gate(GateKind::Nor, "z", &["w", "q"]).unwrap();
        b.add_output("z");
        b.finish().unwrap()
    }

    #[test]
    fn update_matches_full_eval() {
        let c = c1();
        let mut sim = EventSim::new(&c, None);
        sim.full_eval(&[V3::One, V3::Zero], &[V3::X]);
        let q = c.find_net("q").unwrap();
        // Change the state bit and compare against a fresh full evaluation.
        for v in [V3::Zero, V3::One, V3::X, V3::One] {
            sim.update(&[(q, v)]);
            let reference = compute_frame(&c, &[V3::One, V3::Zero], &[v], None);
            assert_eq!(sim.values(), &reference, "state = {v}");
        }
    }

    #[test]
    fn update_touches_only_the_cone() {
        let c = c1();
        let mut sim = EventSim::new(&c, None);
        sim.full_eval(&[V3::One, V3::Zero], &[V3::Zero]);
        let before = sim.evaluations();
        // Changing `b` affects only the XOR gate.
        let b = c.find_net("b").unwrap();
        sim.update(&[(b, V3::One)]);
        assert_eq!(sim.evaluations() - before, 1, "only the XOR re-evaluates");
    }

    #[test]
    fn no_change_means_no_work() {
        let c = c1();
        let mut sim = EventSim::new(&c, None);
        sim.full_eval(&[V3::One, V3::Zero], &[V3::One]);
        let before = sim.evaluations();
        let a = c.find_net("a").unwrap();
        sim.update(&[(a, V3::One)]); // same value
        assert_eq!(sim.evaluations(), before);
    }

    #[test]
    fn faulted_updates_match_full_eval() {
        let c = c1();
        let w = c.find_net("w").unwrap();
        let fault = Fault::stem(w, false);
        let mut sim = EventSim::new(&c, Some(&fault));
        sim.full_eval(&[V3::Zero, V3::Zero], &[V3::X]);
        let q = c.find_net("q").unwrap();
        for v in [V3::One, V3::Zero, V3::X] {
            sim.update(&[(q, v)]);
            let reference = compute_frame(&c, &[V3::Zero, V3::Zero], &[v], Some(&fault));
            assert_eq!(sim.values(), &reference, "state = {v}");
        }
    }

    #[test]
    fn stem_fault_on_source_ignores_updates() {
        let c = c1();
        let a = c.find_net("a").unwrap();
        let fault = Fault::stem(a, true);
        let mut sim = EventSim::new(&c, Some(&fault));
        sim.full_eval(&[V3::Zero, V3::Zero], &[V3::Zero]);
        assert_eq!(sim.values()[a], V3::One, "pinned by the fault");
        sim.update(&[(a, V3::Zero)]);
        assert_eq!(sim.values()[a], V3::One, "still pinned");
    }

    #[test]
    #[should_panic(expected = "only primary inputs and flip-flop outputs")]
    fn driving_a_gate_output_panics() {
        let c = c1();
        let mut sim = EventSim::new(&c, None);
        sim.full_eval(&[V3::Zero, V3::Zero], &[V3::Zero]);
        let w = c.find_net("w").unwrap();
        sim.update(&[(w, V3::One)]);
    }

    /// Exhaustive equivalence on a deeper circuit: every single-source change
    /// from every binary base assignment matches full evaluation.
    #[test]
    fn exhaustive_single_change_equivalence() {
        let mut b = CircuitBuilder::new("deep");
        b.add_input("a").unwrap();
        b.add_input("b").unwrap();
        b.add_input("c").unwrap();
        b.add_gate(GateKind::Nand, "g1", &["a", "b"]).unwrap();
        b.add_gate(GateKind::Nor, "g2", &["g1", "c"]).unwrap();
        b.add_gate(GateKind::Xor, "g3", &["g2", "a"]).unwrap();
        b.add_gate(GateKind::And, "g4", &["g3", "g1"]).unwrap();
        b.add_gate(GateKind::Not, "z", &["g4"]).unwrap();
        b.add_output("z");
        let c = b.finish().unwrap();
        let nets: Vec<NetId> = ["a", "b", "c"].iter().map(|n| c.find_net(n).unwrap()).collect();
        for base in 0..27u32 {
            let vals: Vec<V3> = (0..3)
                .map(|i| [V3::Zero, V3::One, V3::X][(base / 3u32.pow(i)) as usize % 3])
                .collect();
            let mut sim = EventSim::new(&c, None);
            sim.full_eval(&vals, &[]);
            for (i, &net) in nets.iter().enumerate() {
                for new in [V3::Zero, V3::One, V3::X] {
                    let mut sim2 = sim.clone();
                    sim2.update(&[(net, new)]);
                    let mut v2 = vals.clone();
                    v2[i] = new;
                    let reference = compute_frame(&c, &v2, &[], None);
                    assert_eq!(sim2.values(), &reference);
                }
            }
        }
    }
}
