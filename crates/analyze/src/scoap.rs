//! SCOAP-style testability estimates: controllability and observability.
//!
//! Classic static testability measures (Goldstein's SCOAP): for every net,
//! the *0-controllability* `CC0` and *1-controllability* `CC1` estimate how
//! many line assignments it takes to drive the net to 0 or 1, and the
//! *observability* `CO` estimates how many it takes to propagate the net's
//! value to a primary output. Flip-flops add one unit per crossed frame
//! boundary, so sequential depth is priced in.
//!
//! These are **heuristics**, never proofs: a finite cost does not imply a
//! fault is detectable and [`UNREACHABLE`](Testability::UNREACHABLE) does not
//! replace the sound untestability screen
//! ([`UntestableScreen`](crate::UntestableScreen)). The campaign uses them
//! only to *order* faults (`--order scoap-hard-first` /
//! `scoap-cheap-first`), which cannot change any verdict — results are
//! stored by fault-list index.

use moa_netlist::{Circuit, Fault, FaultSite, GateKind, NetId};

/// Per-net controllability/observability estimates for one circuit.
///
/// # Example
///
/// ```
/// use moa_analyze::Testability;
/// use moa_netlist::parse_bench;
///
/// let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = AND(a, b)\n")?;
/// let t = Testability::build(&c);
/// let z = c.find_net("z").unwrap();
/// // Driving an AND output to 1 costs both inputs: CC1(z) = 1 + 1 + 1.
/// assert_eq!(t.cc1(z), 3);
/// assert_eq!(t.co(z), 0); // z is a primary output
/// # Ok::<(), moa_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Testability {
    cc0: Vec<u64>,
    cc1: Vec<u64>,
    co: Vec<u64>,
}

impl Testability {
    /// Cost assigned to a value no assignment can produce (and to nets from
    /// which no primary output is reachable). Large enough to dominate every
    /// finite cost, small enough that sums never wrap.
    pub const UNREACHABLE: u64 = u64::MAX / 4;

    /// Computes the measures by fixpoint iteration: controllabilities relax
    /// forward over the combinational logic and across flip-flops (`+1` per
    /// frame), observabilities relax backward. Feedback loops converge
    /// because costs only ever decrease and are bounded below.
    pub fn build(circuit: &Circuit) -> Self {
        let n = circuit.num_nets();
        let mut t = Testability {
            cc0: vec![Self::UNREACHABLE; n],
            cc1: vec![Self::UNREACHABLE; n],
            co: vec![Self::UNREACHABLE; n],
        };
        for &pi in circuit.inputs() {
            t.cc0[pi.index()] = 1;
            t.cc1[pi.index()] = 1;
        }
        // Controllability: forward passes until stable. Each pass relaxes in
        // topological order, then carries values across the frame boundary;
        // path lengths through state are bounded by the flip-flop count.
        let passes = circuit.num_flip_flops() + 2;
        for _ in 0..passes {
            let mut changed = false;
            for &gid in circuit.topo_order() {
                let gate = circuit.gate(gid);
                let (c0, c1) = gate_controllability(gate.kind(), gate.inputs(), &t.cc0, &t.cc1);
                let out = gate.output().index();
                if c0 < t.cc0[out] {
                    t.cc0[out] = c0;
                    changed = true;
                }
                if c1 < t.cc1[out] {
                    t.cc1[out] = c1;
                    changed = true;
                }
            }
            for ff in circuit.flip_flops() {
                let (d, q) = (ff.d().index(), ff.q().index());
                let c0 = cap(t.cc0[d].saturating_add(1));
                let c1 = cap(t.cc1[d].saturating_add(1));
                if c0 < t.cc0[q] {
                    t.cc0[q] = c0;
                    changed = true;
                }
                if c1 < t.cc1[q] {
                    t.cc1[q] = c1;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        // Observability: backward passes. A primary output observes itself
        // for free; a gate input is observed through the gate's output with
        // every sibling pin held at its non-controlling value.
        for &po in circuit.outputs() {
            t.co[po.index()] = 0;
        }
        for _ in 0..passes {
            let mut changed = false;
            for &gid in circuit.topo_order().iter().rev() {
                let gate = circuit.gate(gid);
                let out_co = t.co[gate.output().index()];
                for (pin, &src) in gate.inputs().iter().enumerate() {
                    let o = pin_observability(gate.kind(), gate.inputs(), pin, out_co, &t.cc0, &t.cc1);
                    if o < t.co[src.index()] {
                        t.co[src.index()] = o;
                        changed = true;
                    }
                }
            }
            for ff in circuit.flip_flops() {
                let o = cap(t.co[ff.q().index()].saturating_add(1));
                if o < t.co[ff.d().index()] {
                    t.co[ff.d().index()] = o;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        t
    }

    /// Estimated cost of driving `net` to 0.
    pub fn cc0(&self, net: NetId) -> u64 {
        self.cc0[net.index()]
    }

    /// Estimated cost of driving `net` to 1.
    pub fn cc1(&self, net: NetId) -> u64 {
        self.cc1[net.index()]
    }

    /// Estimated cost of propagating `net`'s value to a primary output.
    pub fn co(&self, net: NetId) -> u64 {
        self.co[net.index()]
    }

    /// Estimated detection cost of a stuck-at fault: activate the line to the
    /// opposite of the stuck value, then observe the effect from the net it
    /// first appears on (the gate output for branch faults, the flip-flop's
    /// `q` for data-pin faults — matching the untestability screen).
    pub fn fault_cost(&self, circuit: &Circuit, fault: &Fault) -> u64 {
        let line = fault.source_net(circuit);
        let activate = if fault.stuck {
            self.cc0(line)
        } else {
            self.cc1(line)
        };
        let effect = match fault.site {
            FaultSite::Net(n) => n,
            FaultSite::GateInput { gate, .. } => circuit.gate(gate).output(),
            FaultSite::FlipFlopInput(ff) => circuit.flip_flop(ff).q(),
        };
        cap(activate.saturating_add(self.co(effect)))
    }
}

/// Clamps a cost to [`Testability::UNREACHABLE`] so sums of unreachable
/// values stay unreachable instead of wrapping toward small numbers.
fn cap(cost: u64) -> u64 {
    cost.min(Testability::UNREACHABLE)
}

/// SCOAP output controllabilities of one gate from its input measures.
fn gate_controllability(
    kind: GateKind,
    inputs: &[NetId],
    cc0: &[u64],
    cc1: &[u64],
) -> (u64, u64) {
    let sum = |pick: &[u64]| {
        cap(inputs
            .iter()
            .fold(0u64, |acc, n| acc.saturating_add(pick[n.index()]))
            .saturating_add(1))
    };
    let min = |pick: &[u64]| {
        cap(inputs
            .iter()
            .map(|n| pick[n.index()])
            .min()
            .unwrap_or(Testability::UNREACHABLE)
            .saturating_add(1))
    };
    match kind {
        // Non-inverting: easy value comes from one controlling input, hard
        // value needs every input at the non-controlling value.
        GateKind::And => (min(cc0), sum(cc1)),
        GateKind::Or => (sum(cc0), min(cc1)),
        GateKind::Nand => (sum(cc1), min(cc0)),
        GateKind::Nor => (min(cc1), sum(cc0)),
        GateKind::Not => (min(cc1), min(cc0)),
        GateKind::Buf => (min(cc0), min(cc1)),
        GateKind::Xor | GateKind::Xnor => {
            // Cheapest input assignment of each parity, by dynamic
            // programming over the pins.
            let (mut even, mut odd) = (0u64, Testability::UNREACHABLE);
            for n in inputs {
                let (c0, c1) = (cc0[n.index()], cc1[n.index()]);
                let new_even = cap(even.saturating_add(c0)).min(cap(odd.saturating_add(c1)));
                let new_odd = cap(even.saturating_add(c1)).min(cap(odd.saturating_add(c0)));
                even = new_even;
                odd = new_odd;
            }
            let (zero, one) = if kind == GateKind::Xor {
                (even, odd)
            } else {
                (odd, even)
            };
            (cap(zero.saturating_add(1)), cap(one.saturating_add(1)))
        }
    }
}

/// SCOAP observability of one gate input pin: the output's observability
/// plus the cost of holding every sibling pin at a value that lets the pin's
/// value through.
fn pin_observability(
    kind: GateKind,
    inputs: &[NetId],
    pin: usize,
    out_co: u64,
    cc0: &[u64],
    cc1: &[u64],
) -> u64 {
    let siblings = inputs
        .iter()
        .enumerate()
        .filter(|&(j, _)| j != pin)
        .map(|(_, n)| n);
    let side: u64 = match kind {
        // Siblings must sit at the non-controlling value.
        GateKind::And | GateKind::Nand => {
            siblings.fold(0u64, |acc, n| acc.saturating_add(cc1[n.index()]))
        }
        GateKind::Or | GateKind::Nor => {
            siblings.fold(0u64, |acc, n| acc.saturating_add(cc0[n.index()]))
        }
        GateKind::Not | GateKind::Buf => 0,
        // Parity gates propagate through any fixed sibling assignment: take
        // each sibling's cheaper value.
        GateKind::Xor | GateKind::Xnor => siblings.fold(0u64, |acc, n| {
            acc.saturating_add(cc0[n.index()].min(cc1[n.index()]))
        }),
    };
    cap(out_co.saturating_add(side).saturating_add(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use moa_netlist::{parse_bench, CircuitBuilder, Driver};

    #[test]
    fn and_gate_measures() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = AND(a, b)\n").unwrap();
        let t = Testability::build(&c);
        let (a, z) = (c.find_net("a").unwrap(), c.find_net("z").unwrap());
        assert_eq!(t.cc0(z), 2); // one controlling input + 1
        assert_eq!(t.cc1(z), 3); // both inputs + 1
        assert_eq!(t.co(z), 0);
        // Observing `a` through the AND needs b at 1: co = 0 + 1 + 1.
        assert_eq!(t.co(a), 2);
    }

    #[test]
    fn xor_parity_dp_matches_two_input_truth() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = XOR(a, b)\n").unwrap();
        let t = Testability::build(&c);
        let z = c.find_net("z").unwrap();
        // Parity 0 cheapest: both at their cheaper value (1 + 1) + 1.
        assert_eq!(t.cc0(z), 3);
        assert_eq!(t.cc1(z), 3);
    }

    #[test]
    fn flip_flop_adds_a_frame_of_cost() {
        let c = parse_bench(
            "INPUT(a)\nOUTPUT(q)\nq = DFF(d)\nd = BUFF(a)\n",
        )
        .unwrap();
        let t = Testability::build(&c);
        let (d, q) = (c.find_net("d").unwrap(), c.find_net("q").unwrap());
        assert_eq!(t.cc1(q), t.cc1(d) + 1);
        assert_eq!(t.co(d), t.co(q) + 1);
        assert_eq!(t.co(q), 0);
    }

    #[test]
    fn sequential_feedback_converges() {
        // q feeds its own next-state logic: the fixpoint must terminate and
        // produce finite measures via the reset path.
        let c = parse_bench(
            "INPUT(r)\nOUTPUT(z)\nq = DFF(d)\nnq = NOT(q)\nd = AND(r, nq)\nz = BUFF(q)\n",
        )
        .unwrap();
        let t = Testability::build(&c);
        let q = c.find_net("q").unwrap();
        assert!(t.cc0(q) < Testability::UNREACHABLE);
        assert!(t.cc1(q) < Testability::UNREACHABLE);
        assert!(t.co(q) < Testability::UNREACHABLE);
    }

    #[test]
    fn dead_logic_is_unobservable() {
        let mut b = CircuitBuilder::new("t");
        b.add_input("a").unwrap();
        b.add_gate(GateKind::Not, "dead", &["a"]).unwrap();
        b.add_gate(GateKind::Buf, "z", &["a"]).unwrap();
        b.add_output("z");
        let c = b.finish().unwrap();
        let t = Testability::build(&c);
        let dead = c.find_net("dead").unwrap();
        assert_eq!(t.co(dead), Testability::UNREACHABLE);
        // The fault cost inherits the unreachable observability.
        let f = Fault::stem(dead, true);
        assert_eq!(t.fault_cost(&c, &f), Testability::UNREACHABLE);
    }

    #[test]
    fn fault_cost_orders_easy_before_hard() {
        // On z = AND(a, b): z stuck-at-1 activates with one controlling
        // input (cost 2), while a stuck-at-1 needs a = 0 *and* b held at 1
        // to propagate (cost 3).
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = AND(a, b)\n").unwrap();
        let t = Testability::build(&c);
        let easy = Fault::stem(c.find_net("z").unwrap(), true);
        let hard = Fault::stem(c.find_net("a").unwrap(), true);
        assert_eq!(t.fault_cost(&c, &easy), 2);
        assert_eq!(t.fault_cost(&c, &hard), 3);
    }

    #[test]
    fn branch_fault_observes_from_the_reading_gate() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(u)\nOUTPUT(v)\nu = AND(a, b)\nv = OR(a, b)\n",
        )
        .unwrap();
        let t = Testability::build(&c);
        // Branch fault on the AND's `a` pin: effect net is `u`, whose co is
        // 0; cost = cc1(a) + 0 = finite and small.
        let Driver::Gate(and_gate) = c.driver(c.find_net("u").unwrap()) else {
            panic!("u must be gate-driven");
        };
        let f = Fault::gate_input(and_gate, 0, false);
        assert_eq!(t.fault_cost(&c, &f), 1);
    }
}
