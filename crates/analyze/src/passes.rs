//! The structural lint passes and the framework running them.
//!
//! Each [`Pass`] inspects a circuit through a shared [`AnalysisContext`] —
//! which lazily materializes the expensive artifacts (learned implications,
//! observability) at most once — and emits located [`Diagnostic`]s.

use std::collections::HashMap;
use std::sync::OnceLock;

use moa_logic::GateKind;
use moa_netlist::{observable_nets, Circuit, Driver, GateId, NetId};

use crate::diagnostic::{AnalysisReport, Diagnostic, Severity};
use crate::learn::ImplicationDb;

/// Shared state for one analysis run over one circuit.
pub struct AnalysisContext<'a> {
    circuit: &'a Circuit,
    implications: OnceLock<ImplicationDb>,
    observable: OnceLock<Vec<bool>>,
}

impl<'a> AnalysisContext<'a> {
    /// A fresh context; artifacts build lazily on first use.
    pub fn new(circuit: &'a Circuit) -> Self {
        AnalysisContext {
            circuit,
            implications: OnceLock::new(),
            observable: OnceLock::new(),
        }
    }

    /// The circuit under analysis.
    pub fn circuit(&self) -> &'a Circuit {
        self.circuit
    }

    /// The learned implication database (built on first call).
    pub fn implications(&self) -> &ImplicationDb {
        self.implications
            .get_or_init(|| ImplicationDb::build(self.circuit))
    }

    /// Per-net observability: `true` if a primary output is reachable from
    /// the net, possibly across flip-flops.
    pub fn observable(&self) -> &[bool] {
        self.observable.get_or_init(|| {
            let mut flags = vec![false; self.circuit.num_nets()];
            for n in observable_nets(self.circuit) {
                flags[n.index()] = true;
            }
            flags
        })
    }
}

/// One structural lint.
pub trait Pass {
    /// Stable name, used as the diagnostic code.
    fn name(&self) -> &'static str;
    /// Runs the pass, returning its findings.
    fn run(&self, ctx: &AnalysisContext<'_>) -> Vec<Diagnostic>;
}

/// The standard pass set, in execution order.
pub fn default_passes() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(CombinationalCycles),
        Box::new(UndrivenNets),
        Box::new(DanglingNets),
        Box::new(UnobservableNets),
        Box::new(ConstantNets),
        Box::new(DuplicateGates),
        Box::new(RedundantBuffers),
    ]
}

/// Runs `passes` over `circuit` with one shared context.
///
/// The returned diagnostics are in a canonical order — most severe first,
/// then by the first located net, then by pass name — independent of the
/// order the passes ran in, so two invocations (or two pass lists covering
/// the same findings) render byte-identical reports.
pub fn run_passes(circuit: &Circuit, passes: &[Box<dyn Pass>]) -> AnalysisReport {
    let ctx = AnalysisContext::new(circuit);
    let mut report = AnalysisReport::default();
    for pass in passes {
        #[cfg(feature = "failpoints")]
        crate::failpoint::pass_hook_hit();
        report.diagnostics.extend(pass.run(&ctx));
    }
    // Stable sort: diagnostics equal in every key keep their emission order.
    report.diagnostics.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then_with(|| a.nets.first().cmp(&b.nets.first()))
            .then_with(|| a.pass.cmp(b.pass))
    });
    report
}

/// Runs the [`default_passes`] over `circuit`.
pub fn analyze_circuit(circuit: &Circuit) -> AnalysisReport {
    run_passes(circuit, &default_passes())
}

/// Finds a cycle in a directed graph given as adjacency lists, returning the
/// node sequence of one cycle if any exists. Iterative coloring DFS.
pub(crate) fn find_cycle(adjacency: &[Vec<usize>]) -> Option<Vec<usize>> {
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let n = adjacency.len();
    let mut color = vec![WHITE; n];
    let mut parent = vec![usize::MAX; n];
    for start in 0..n {
        if color[start] != WHITE {
            continue;
        }
        // Stack of (node, next-edge-index).
        let mut stack = vec![(start, 0usize)];
        color[start] = GRAY;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if *next < adjacency[node].len() {
                let target = adjacency[node][*next];
                *next += 1;
                match color[target] {
                    WHITE => {
                        color[target] = GRAY;
                        parent[target] = node;
                        stack.push((target, 0));
                    }
                    GRAY => {
                        // Found a back edge node -> target: unwind the cycle
                        // into path order (target first, node last).
                        let mut cycle = Vec::new();
                        let mut cur = node;
                        while cur != target {
                            cycle.push(cur);
                            cur = parent[cur];
                        }
                        cycle.push(target);
                        cycle.reverse();
                        return Some(cycle);
                    }
                    _ => {}
                }
            } else {
                color[node] = BLACK;
                stack.pop();
            }
        }
    }
    None
}

/// Detects combinational cycles (paths from a net back to itself without
/// crossing a flip-flop). A valid [`Circuit`] is acyclic by construction, so
/// this is defense in depth for circuits built through future front ends.
pub struct CombinationalCycles;

impl Pass for CombinationalCycles {
    fn name(&self) -> &'static str {
        "comb-cycle"
    }

    fn run(&self, ctx: &AnalysisContext<'_>) -> Vec<Diagnostic> {
        let c = ctx.circuit();
        let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); c.num_nets()];
        for gate in c.gates() {
            for &input in gate.inputs() {
                adjacency[input.index()].push(gate.output().index());
            }
        }
        match find_cycle(&adjacency) {
            Some(cycle) => {
                let nets: Vec<NetId> = cycle.iter().map(|&i| NetId::new(i)).collect();
                let path: Vec<&str> = nets.iter().map(|&n| c.net_name(n)).collect();
                vec![Diagnostic {
                    pass: self.name(),
                    severity: Severity::Error,
                    message: format!(
                        "combinational cycle through `{}`",
                        path.join("` -> `")
                    ),
                    nets,
                    gates: Vec::new(),
                }]
            }
            None => Vec::new(),
        }
    }
}

/// Detects nets that no primary input, gate or flip-flop drives. Also
/// impossible for a valid [`Circuit`]; kept as defense in depth.
pub struct UndrivenNets;

impl Pass for UndrivenNets {
    fn name(&self) -> &'static str {
        "undriven-net"
    }

    fn run(&self, ctx: &AnalysisContext<'_>) -> Vec<Diagnostic> {
        let c = ctx.circuit();
        let mut driven = vec![false; c.num_nets()];
        for &pi in c.inputs() {
            driven[pi.index()] = true;
        }
        for gate in c.gates() {
            driven[gate.output().index()] = true;
        }
        for ff in c.flip_flops() {
            driven[ff.q().index()] = true;
        }
        c.net_ids()
            .filter(|n| !driven[n.index()])
            .map(|n| Diagnostic {
                pass: self.name(),
                severity: Severity::Error,
                message: format!("net `{}` has no driver", c.net_name(n)),
                nets: vec![n],
                gates: Vec::new(),
            })
            .collect()
    }
}

/// Detects floating nets: driven but never read — not a gate input, not a
/// flip-flop data input and not a primary output.
pub struct DanglingNets;

impl Pass for DanglingNets {
    fn name(&self) -> &'static str {
        "dangling-net"
    }

    fn run(&self, ctx: &AnalysisContext<'_>) -> Vec<Diagnostic> {
        let c = ctx.circuit();
        let mut is_output = vec![false; c.num_nets()];
        for &po in c.outputs() {
            is_output[po.index()] = true;
        }
        c.net_ids()
            .filter(|&n| c.fanout_count(n) == 0 && !is_output[n.index()])
            .map(|n| Diagnostic {
                pass: self.name(),
                severity: Severity::Warning,
                message: format!(
                    "net `{}` is floating: driven but never read or observed",
                    c.net_name(n)
                ),
                nets: vec![n],
                gates: Vec::new(),
            })
            .collect()
    }
}

/// Detects nets from which no primary output is reachable (even across
/// flip-flops): fault effects on them can never be observed.
pub struct UnobservableNets;

impl Pass for UnobservableNets {
    fn name(&self) -> &'static str {
        "unobservable-net"
    }

    fn run(&self, ctx: &AnalysisContext<'_>) -> Vec<Diagnostic> {
        let c = ctx.circuit();
        let observable = ctx.observable();
        let nets: Vec<NetId> = c.net_ids().filter(|n| !observable[n.index()]).collect();
        if nets.is_empty() {
            return Vec::new();
        }
        let names: Vec<&str> = nets.iter().map(|&n| c.net_name(n)).collect();
        vec![Diagnostic {
            pass: self.name(),
            severity: Severity::Warning,
            message: format!(
                "{} net(s) cannot reach any primary output: `{}`",
                nets.len(),
                names.join("`, `")
            ),
            nets,
            gates: Vec::new(),
        }]
    }
}

/// Detects nets statically tied to a constant (proved by the implication
/// learner: the opposite value conflicts under every input/state assignment).
pub struct ConstantNets;

impl Pass for ConstantNets {
    fn name(&self) -> &'static str {
        "constant-net"
    }

    fn run(&self, ctx: &AnalysisContext<'_>) -> Vec<Diagnostic> {
        let c = ctx.circuit();
        let db = ctx.implications();
        c.net_ids()
            .filter_map(|n| {
                db.constant(n).map(|value| Diagnostic {
                    pass: self.name(),
                    severity: Severity::Warning,
                    message: format!(
                        "net `{}` is statically tied to constant {}",
                        c.net_name(n),
                        u8::from(value)
                    ),
                    nets: vec![n],
                    gates: Vec::new(),
                })
            })
            .collect()
    }
}

/// Detects gates computing the same function of the same nets (same kind and
/// input multiset, order-insensitive for the symmetric kinds).
pub struct DuplicateGates;

impl Pass for DuplicateGates {
    fn name(&self) -> &'static str {
        "duplicate-gate"
    }

    fn run(&self, ctx: &AnalysisContext<'_>) -> Vec<Diagnostic> {
        let c = ctx.circuit();
        let mut groups: HashMap<(GateKind, Vec<NetId>), Vec<GateId>> = HashMap::new();
        for (i, gate) in c.gates().iter().enumerate() {
            let mut inputs = gate.inputs().to_vec();
            inputs.sort_unstable();
            groups
                .entry((gate.kind(), inputs))
                .or_default()
                .push(GateId::new(i));
        }
        let mut dups: Vec<Diagnostic> = groups
            .into_iter()
            .filter(|(_, gates)| gates.len() > 1)
            .map(|((kind, _), gates)| {
                let outputs: Vec<&str> = gates
                    .iter()
                    .map(|&g| c.net_name(c.gate(g).output()))
                    .collect();
                let nets: Vec<NetId> = gates.iter().map(|&g| c.gate(g).output()).collect();
                Diagnostic {
                    pass: self.name(),
                    severity: Severity::Warning,
                    message: format!(
                        "{} {kind:?} gates compute the same function: `{}`",
                        gates.len(),
                        outputs.join("`, `")
                    ),
                    nets,
                    gates,
                }
            })
            .collect();
        dups.sort_by(|a, b| a.gates.cmp(&b.gates));
        dups
    }
}

/// Detects redundant buffer chains: a `BUF` fed by a `BUF`, or a `NOT` fed by
/// a `NOT` (a double inversion reducible to a buffer).
pub struct RedundantBuffers;

impl Pass for RedundantBuffers {
    fn name(&self) -> &'static str {
        "redundant-buffer"
    }

    fn run(&self, ctx: &AnalysisContext<'_>) -> Vec<Diagnostic> {
        let c = ctx.circuit();
        let mut out = Vec::new();
        for (i, gate) in c.gates().iter().enumerate() {
            let kind = gate.kind();
            if kind != GateKind::Buf && kind != GateKind::Not {
                continue;
            }
            let input = gate.inputs()[0];
            let Driver::Gate(upstream) = c.driver(input) else {
                continue;
            };
            if c.gate(upstream).kind() != kind {
                continue;
            }
            let what = if kind == GateKind::Buf {
                "buffer chain"
            } else {
                "double inversion"
            };
            out.push(Diagnostic {
                pass: self.name(),
                severity: Severity::Warning,
                message: format!(
                    "redundant {what}: `{}` = {kind:?}(`{}`) where `{}` is itself {kind:?}-driven",
                    c.net_name(gate.output()),
                    c.net_name(input),
                    c.net_name(input),
                ),
                nets: vec![gate.output(), input],
                gates: vec![GateId::new(i), upstream],
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moa_netlist::CircuitBuilder;

    fn clean_circuit() -> Circuit {
        let mut b = CircuitBuilder::new("clean");
        b.add_input("a").unwrap();
        b.add_flip_flop("q", "d").unwrap();
        b.add_gate(GateKind::Nor, "d", &["a", "q"]).unwrap();
        b.add_gate(GateKind::Not, "z", &["q"]).unwrap();
        b.add_output("z");
        b.finish().unwrap()
    }

    #[test]
    fn clean_circuit_yields_no_diagnostics() {
        let report = analyze_circuit(&clean_circuit());
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    }

    #[test]
    fn find_cycle_detects_and_locates() {
        // 0 -> 1 -> 2 -> 1 has the cycle [1, 2].
        let adjacency = vec![vec![1], vec![2], vec![1]];
        let cycle = find_cycle(&adjacency).unwrap();
        assert_eq!(cycle, vec![1, 2]);
        // A DAG has none.
        assert!(find_cycle(&[vec![1, 2], vec![2], vec![]]).is_none());
        // Self-loop.
        assert_eq!(find_cycle(&[vec![0]]).unwrap(), vec![0]);
    }

    #[test]
    fn dangling_net_is_flagged() {
        let mut b = CircuitBuilder::new("t");
        b.add_input("a").unwrap();
        b.add_gate(GateKind::Not, "unused", &["a"]).unwrap();
        b.add_gate(GateKind::Buf, "z", &["a"]).unwrap();
        b.add_output("z");
        let c = b.finish().unwrap();
        let report = analyze_circuit(&c);
        let dangling: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.pass == "dangling-net")
            .collect();
        assert_eq!(dangling.len(), 1);
        assert_eq!(dangling[0].net_names(&c), ["unused"]);
        assert_eq!(dangling[0].severity, Severity::Warning);
        // The same net is also unobservable.
        assert!(report.diagnostics.iter().any(|d| d.pass == "unobservable-net"));
        assert!(!report.has_errors());
    }

    #[test]
    fn constant_net_is_flagged() {
        let mut b = CircuitBuilder::new("t");
        b.add_input("a").unwrap();
        b.add_gate(GateKind::Not, "na", &["a"]).unwrap();
        b.add_gate(GateKind::And, "x", &["a", "na"]).unwrap();
        b.add_gate(GateKind::Buf, "z", &["x"]).unwrap();
        b.add_output("z");
        let c = b.finish().unwrap();
        let report = analyze_circuit(&c);
        let constants: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.pass == "constant-net")
            .collect();
        assert_eq!(constants.len(), 2, "{constants:?}"); // x and z
        assert!(constants[0].message.contains("constant 0"));
    }

    #[test]
    fn duplicate_gates_are_flagged_order_insensitively() {
        let mut b = CircuitBuilder::new("t");
        b.add_input("a").unwrap();
        b.add_input("c").unwrap();
        b.add_gate(GateKind::And, "x", &["a", "c"]).unwrap();
        b.add_gate(GateKind::And, "y", &["c", "a"]).unwrap();
        b.add_gate(GateKind::Or, "z", &["x", "y"]).unwrap();
        b.add_output("z");
        let c = b.finish().unwrap();
        let report = analyze_circuit(&c);
        let dups: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.pass == "duplicate-gate")
            .collect();
        assert_eq!(dups.len(), 1);
        assert!(dups[0].message.contains('x') && dups[0].message.contains('y'));
    }

    #[test]
    fn buffer_chain_and_double_inversion_are_flagged() {
        let mut b = CircuitBuilder::new("t");
        b.add_input("a").unwrap();
        b.add_gate(GateKind::Buf, "b1", &["a"]).unwrap();
        b.add_gate(GateKind::Buf, "b2", &["b1"]).unwrap();
        b.add_gate(GateKind::Not, "n1", &["b2"]).unwrap();
        b.add_gate(GateKind::Not, "n2", &["n1"]).unwrap();
        b.add_output("n2");
        let c = b.finish().unwrap();
        let report = analyze_circuit(&c);
        let redundant: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.pass == "redundant-buffer")
            .collect();
        assert_eq!(redundant.len(), 2);
        assert!(redundant[0].message.contains("buffer chain"));
        assert!(redundant[1].message.contains("double inversion"));
    }

    #[test]
    fn undriven_pass_is_silent_on_valid_circuits() {
        let report = run_passes(&clean_circuit(), &[Box::new(UndrivenNets)]);
        assert!(report.diagnostics.is_empty());
    }

    #[test]
    fn report_order_is_canonical_regardless_of_pass_order() {
        // A circuit with findings from several passes: a dangling net, dead
        // (unobservable) logic behind it, and a redundant buffer chain.
        let mut b = CircuitBuilder::new("t");
        b.add_input("a").unwrap();
        b.add_gate(GateKind::Not, "w", &["a"]).unwrap();
        b.add_gate(GateKind::Buf, "b1", &["a"]).unwrap();
        b.add_gate(GateKind::Buf, "b2", &["b1"]).unwrap();
        b.add_output("b2");
        let c = b.finish().unwrap();
        let forward = run_passes(&c, &default_passes());
        assert!(forward.diagnostics.len() >= 2, "{:?}", forward.diagnostics);
        let mut reversed_passes = default_passes();
        reversed_passes.reverse();
        let reversed = run_passes(&c, &reversed_passes);
        assert_eq!(
            forward.diagnostics, reversed.diagnostics,
            "report order must not depend on pass execution order"
        );
        // Canonical order: severities never increase down the report.
        for pair in forward.diagnostics.windows(2) {
            assert!(pair[0].severity >= pair[1].severity, "{pair:?}");
        }
    }
}
