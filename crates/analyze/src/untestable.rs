//! Static untestability analysis for stuck-at faults.
//!
//! Two structural proofs, both sound under *any* observation scheme (single
//! observation time, multiple observation times, arbitrary expansion), so the
//! campaign may skip a proven fault without simulating it:
//!
//! - **Unobservable site.** No primary output is reachable from the net the
//!   fault effect first appears on (even across flip-flops): the effect can
//!   never reach an output at any time unit. This covers whole unobservable
//!   fanout-free cones at once, since every net inside one is unobservable.
//! - **Constant line.** The implication learner proved the read line is
//!   statically tied to the very value the fault forces: the faulty machine
//!   computes the same binary function as the good machine at every time
//!   unit, so no test distinguishes them.

use moa_netlist::{observable_nets, Circuit, Fault, FaultSite};

use crate::learn::ImplicationDb;

/// Why a fault is statically untestable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UntestableProof {
    /// No primary output is reachable from the fault site.
    Unobservable,
    /// The faulted line is statically tied to the stuck value.
    ConstantLine {
        /// The proven constant (equal to the fault's stuck value).
        value: bool,
    },
}

impl UntestableProof {
    /// Short stable tag used by checkpoints and `--json` output.
    pub fn tag(&self) -> String {
        match self {
            UntestableProof::Unobservable => "unobservable".to_owned(),
            UntestableProof::ConstantLine { value } => {
                format!("constant-{}", u8::from(*value))
            }
        }
    }
}

/// Per-circuit screen answering "is this fault statically untestable?".
#[derive(Debug, Clone)]
pub struct UntestableScreen {
    observable: Vec<bool>,
    constants: Vec<Option<bool>>,
}

impl UntestableScreen {
    /// Builds the screen from the circuit's observability and an already
    /// learned implication database.
    pub fn new(circuit: &Circuit, db: &ImplicationDb) -> Self {
        let mut observable = vec![false; circuit.num_nets()];
        for n in observable_nets(circuit) {
            observable[n.index()] = true;
        }
        UntestableScreen {
            observable,
            constants: circuit.net_ids().map(|n| db.constant(n)).collect(),
        }
    }

    /// Returns the static proof if `fault` is untestable, `None` when the
    /// screen cannot decide (the fault may still be undetectable).
    pub fn check(&self, circuit: &Circuit, fault: &Fault) -> Option<UntestableProof> {
        // The net on which the fault effect first becomes visible.
        let effect_net = match fault.site {
            FaultSite::Net(n) => n,
            FaultSite::GateInput { gate, .. } => circuit.gate(gate).output(),
            FaultSite::FlipFlopInput(ff) => circuit.flip_flop(ff).q(),
        };
        if !self.observable[effect_net.index()] {
            return Some(UntestableProof::Unobservable);
        }
        // The line the fault pins, compared against its static constant.
        let read = fault.source_net(circuit);
        if self.constants[read.index()] == Some(fault.stuck) {
            return Some(UntestableProof::ConstantLine { value: fault.stuck });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moa_logic::GateKind;
    use moa_netlist::{CircuitBuilder, Driver};

    #[test]
    fn proof_tags_are_stable() {
        assert_eq!(UntestableProof::Unobservable.tag(), "unobservable");
        assert_eq!(
            UntestableProof::ConstantLine { value: true }.tag(),
            "constant-1"
        );
    }

    #[test]
    fn unobservable_cone_faults_are_proven() {
        // `dead` feeds nothing: faults on it (and on the pin of the gate
        // driving it) can never be observed.
        let mut b = CircuitBuilder::new("t");
        b.add_input("a").unwrap();
        b.add_gate(GateKind::Not, "dead", &["a"]).unwrap();
        b.add_gate(GateKind::Buf, "z", &["a"]).unwrap();
        b.add_output("z");
        let c = b.finish().unwrap();
        let db = ImplicationDb::build(&c);
        let screen = UntestableScreen::new(&c, &db);
        let dead = c.find_net("dead").unwrap();
        assert_eq!(
            screen.check(&c, &Fault::stem(dead, true)),
            Some(UntestableProof::Unobservable)
        );
        // A fault on the observable path stays undecided.
        let z = c.find_net("z").unwrap();
        assert_eq!(screen.check(&c, &Fault::stem(z, true)), None);
        // A branch fault entering the dead gate is unobservable too.
        let Driver::Gate(dead_gate) = c.driver(dead) else {
            unreachable!()
        };
        assert_eq!(
            screen.check(&c, &Fault::gate_input(dead_gate, 0, false)),
            Some(UntestableProof::Unobservable)
        );
    }

    #[test]
    fn constant_line_fault_matching_stuck_value_is_proven() {
        // x = AND(a, NOT(a)) is constant 0: x stuck-at-0 is untestable,
        // x stuck-at-1 is not provable by this rule.
        let mut b = CircuitBuilder::new("t");
        b.add_input("a").unwrap();
        b.add_gate(GateKind::Not, "na", &["a"]).unwrap();
        b.add_gate(GateKind::And, "x", &["a", "na"]).unwrap();
        b.add_gate(GateKind::Buf, "z", &["x"]).unwrap();
        b.add_output("z");
        let c = b.finish().unwrap();
        let db = ImplicationDb::build(&c);
        let screen = UntestableScreen::new(&c, &db);
        let x = c.find_net("x").unwrap();
        assert_eq!(
            screen.check(&c, &Fault::stem(x, false)),
            Some(UntestableProof::ConstantLine { value: false })
        );
        assert_eq!(screen.check(&c, &Fault::stem(x, true)), None);
    }

    #[test]
    fn unobservable_wins_over_constant_on_a_doubly_proven_net() {
        // `x` is both statically constant 0 *and* unobservable (it feeds
        // nothing): the screen tests observability first, so x stuck-at-0 —
        // provable either way — reports the unobservability proof. The
        // precedence matters downstream: checkpoints persist the tag.
        let mut b = CircuitBuilder::new("t");
        b.add_input("a").unwrap();
        b.add_gate(GateKind::Not, "na", &["a"]).unwrap();
        b.add_gate(GateKind::And, "x", &["a", "na"]).unwrap();
        b.add_gate(GateKind::Buf, "z", &["a"]).unwrap();
        b.add_output("z");
        let c = b.finish().unwrap();
        let db = ImplicationDb::build(&c);
        assert_eq!(db.constant(c.find_net("x").unwrap()), Some(false), "x is constant");
        let screen = UntestableScreen::new(&c, &db);
        let x = c.find_net("x").unwrap();
        assert_eq!(
            screen.check(&c, &Fault::stem(x, false)),
            Some(UntestableProof::Unobservable),
            "observability is checked before the constant rule"
        );
        // The sa-1 fault (not covered by the constant rule) is still proven.
        assert_eq!(
            screen.check(&c, &Fault::stem(x, true)),
            Some(UntestableProof::Unobservable)
        );
    }

    #[test]
    fn single_gate_circuit_has_no_untestable_faults() {
        // The smallest legal circuit: one gate, straight to the output.
        // Everything is observable and nothing is constant, so the screen
        // must stay silent on every fault in the full list.
        let mut b = CircuitBuilder::new("t");
        b.add_input("a").unwrap();
        b.add_gate(GateKind::Not, "z", &["a"]).unwrap();
        b.add_output("z");
        let c = b.finish().unwrap();
        let db = ImplicationDb::build(&c);
        let screen = UntestableScreen::new(&c, &db);
        let faults = moa_netlist::full_fault_list(&c);
        assert!(!faults.is_empty());
        for fault in &faults {
            assert_eq!(screen.check(&c, fault), None, "{fault:?}");
        }
    }

    #[test]
    fn flip_flop_input_fault_uses_q_observability() {
        // The flip-flop's q net only feeds a dead gate: a fault on its data
        // input can never be observed.
        let mut b = CircuitBuilder::new("t");
        b.add_input("a").unwrap();
        b.add_flip_flop("q", "d").unwrap();
        b.add_gate(GateKind::Buf, "d", &["a"]).unwrap();
        b.add_gate(GateKind::Not, "dead", &["q"]).unwrap();
        b.add_gate(GateKind::Buf, "z", &["a"]).unwrap();
        b.add_output("z");
        let c = b.finish().unwrap();
        let db = ImplicationDb::build(&c);
        let screen = UntestableScreen::new(&c, &db);
        let fault = Fault::flip_flop_input(moa_netlist::FlipFlopId::new(0), true);
        assert_eq!(
            screen.check(&c, &fault),
            Some(UntestableProof::Unobservable)
        );
    }
}
