//! Structured findings emitted by the analysis passes.

use std::fmt;

use moa_netlist::{Circuit, GateId, NetId};

/// How serious a [`Diagnostic`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational note; never affects exit status.
    Info,
    /// Suspicious but legal structure (dead logic, redundancy).
    Warning,
    /// Malformed structure; `moa analyze` exits nonzero.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding of one pass, located on nets and/or gates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The emitting pass's stable name (doubles as the diagnostic code).
    pub pass: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Human-readable description (already includes net names).
    pub message: String,
    /// Nets the finding is located on.
    pub nets: Vec<NetId>,
    /// Gates the finding is located on.
    pub gates: Vec<GateId>,
}

impl Diagnostic {
    /// Renders `severity[pass]: message` as shown by `moa analyze`.
    pub fn render(&self) -> String {
        format!("{}[{}]: {}", self.severity, self.pass, self.message)
    }

    /// The names of the located nets, resolved against `circuit`.
    pub fn net_names<'a>(&self, circuit: &'a Circuit) -> Vec<&'a str> {
        self.nets.iter().map(|&n| circuit.net_name(n)).collect()
    }
}

/// The combined outcome of running a set of passes.
#[derive(Debug, Clone, Default)]
pub struct AnalysisReport {
    /// All diagnostics, in the canonical (severity, net, pass) order
    /// established by [`run_passes`](crate::run_passes).
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// Number of diagnostics at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// `true` if any diagnostic is an error.
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_and_displays() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::Warning.to_string(), "warning");
    }

    #[test]
    fn report_counts_by_severity() {
        let mk = |severity| Diagnostic {
            pass: "t",
            severity,
            message: String::new(),
            nets: Vec::new(),
            gates: Vec::new(),
        };
        let report = AnalysisReport {
            diagnostics: vec![mk(Severity::Warning), mk(Severity::Warning), mk(Severity::Error)],
        };
        assert_eq!(report.count(Severity::Warning), 2);
        assert!(report.has_errors());
        assert_eq!(
            mk(Severity::Error).render(),
            "error[t]: "
        );
    }
}
