//! Static netlist analysis: structural lints, learned implications and
//! untestability proofs.
//!
//! This crate looks at a [`moa_netlist::Circuit`] *before* any simulation
//! runs and extracts three kinds of knowledge:
//!
//! - **Structural lints** ([`passes`]): a [`Pass`] framework emitting located
//!   [`Diagnostic`]s — combinational cycles, undriven and floating nets,
//!   unobservable logic, statically constant nets, duplicate gates and
//!   redundant buffer chains. Surfaced to users as `moa analyze`.
//! - **Learned implications** ([`learn`]): a SOCRATES-style static learner
//!   producing an [`ImplicationDb`] of pairwise implications (direct,
//!   transitively closed, plus contrapositive/indirect ones) that
//!   `moa_core::imply` fires during backward implication passes when
//!   `MoaOptions::static_learning` is enabled.
//! - **Untestability proofs** ([`untestable`]): an [`UntestableScreen`]
//!   marking stuck-at faults that no test can ever detect — unobservable
//!   fault sites and constant lines stuck at their constant — so fault
//!   campaigns can skip them with zero simulation work.
//! - **Fault collapsing** ([`collapse`]): equivalence classes and dominance
//!   pairs over a concrete fault list ([`CollapseAnalysis`]), each collapsed
//!   member backed by a re-validatable [`CollapseCertificate`], so campaigns
//!   can simulate one representative per class and expand the verdict.
//! - **Testability estimates** ([`scoap`]): SCOAP-style controllability and
//!   observability measures ([`Testability`]) used to order campaign fault
//!   lists hardest-first or cheapest-first.
//!
//! # Example
//!
//! ```
//! use moa_analyze::{analyze_circuit, ImplicationDb};
//! use moa_netlist::parse_bench;
//!
//! let c = parse_bench("INPUT(a)\nOUTPUT(z)\nna = NOT(a)\nx = AND(a, na)\nz = BUF(x)\n")?;
//! let report = analyze_circuit(&c);
//! // x = AND(a, NOT(a)) is statically constant 0.
//! assert!(report
//!     .diagnostics
//!     .iter()
//!     .any(|d| d.pass == "constant-net" && d.message.contains("`x`")));
//! let db = ImplicationDb::build(&c);
//! assert_eq!(db.constant(c.find_net("x").unwrap()), Some(false));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod collapse;
mod diagnostic;
#[cfg(feature = "failpoints")]
pub mod failpoint;
pub mod learn;
pub mod passes;
pub mod scoap;
pub mod untestable;

pub use collapse::{CollapseAnalysis, CollapseCertificate, FaultClass};
pub use diagnostic::{AnalysisReport, Diagnostic, Severity};
pub use learn::ImplicationDb;
pub use passes::{analyze_circuit, default_passes, run_passes, AnalysisContext, Pass};
pub use scoap::Testability;
pub use untestable::{UntestableProof, UntestableScreen};
