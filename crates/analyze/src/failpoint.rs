//! Failure-injection hook for the analysis passes (the `fp/analyze.pass`
//! chaos site).
//!
//! Only compiled with the `failpoints` cargo feature. This crate cannot
//! depend on the chaos registry in `moa-core` (the dependency points the
//! other way), so the site is a function-pointer hook: the registry
//! installs a callback here when a chaos schedule is armed, and
//! [`run_passes`](crate::run_passes) invokes it before each pass. The
//! armed action may sleep or panic; without an installed hook (or without
//! the feature) the passes are unaffected.

use std::sync::Mutex;

/// The hook signature: invoked once per pass; the installed callback
/// applies whatever chaos action is armed.
pub type PassHook = fn();

static PASS_HOOK: Mutex<Option<PassHook>> = Mutex::new(None);

/// Installs (or, with `None`, removes) the per-pass failure hook.
pub fn set_pass_hook(hook: Option<PassHook>) {
    *PASS_HOOK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = hook;
}

/// Consulted by [`run_passes`](crate::run_passes) before each pass.
pub(crate) fn pass_hook_hit() {
    // Copy the fn pointer out before calling: the hook may sleep or panic,
    // and must not do so while holding the lock.
    let hook = *PASS_HOOK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(h) = hook {
        h();
    }
}
