//! SOCRATES-style static implication learning.
//!
//! For every literal `net = v` the learner asserts the value on an otherwise
//! all-`X` time frame and runs backward justification / forward evaluation to
//! a fixed point. Everything specified at the fixed point is *implied* by the
//! literal — and because the fixed point is closed under the propagator, the
//! per-literal result already contains the transitive closure of the direct
//! (single-gate) implications. Two further sources of knowledge fall out:
//!
//! - **Constants.** If asserting `net = v` conflicts, no binary assignment of
//!   inputs and state variables can ever produce `net = v`: the net is
//!   statically tied to `v̄`. Constants are closed over the learned edges
//!   (anything implied by an always-true literal is itself constant, and a
//!   literal implying an always-false one is itself infeasible).
//! - **Indirect implications.** Each learned edge `a ⇒ b` contributes its
//!   contrapositive `b̄ ⇒ ā` (the SOCRATES "learning" law). Contrapositives
//!   are stored explicitly; chains across them close at consumption time,
//!   where firing one learned implication re-fires the lists of every literal
//!   it newly specifies.
//!
//! # Soundness under injected faults
//!
//! The implications are learned on the *fault-free* circuit, but the runtime
//! consumer asserts values on frames with a stuck-at fault injected. Every
//! derivation step of `a ⇒ b` happens at some gate `g`, and in all cases `g`'s
//! output net is **specified** at the fixed point (backward justification
//! requires a specified output; a forward evaluation writes one). The learner
//! therefore records, per source literal, the *support*: the set of all nets
//! specified while propagating it. A stuck-at fault can only invalidate a
//! derivation step at the one gate it detaches — the driver of a stem-faulted
//! net, or the gate carrying a faulted input pin — and that gate's output is
//! the fault's [*critical net*](ImplicationDb::support_contains). Suppressing
//! every list whose support contains the critical net keeps firing sound for
//! any single stuck-at fault; it can only lose completeness.

use std::collections::BTreeSet;

use moa_logic::{JustifyOutcome, V3};
use moa_netlist::{Circuit, NetId};

/// A compact store of statically learned implications for one circuit.
///
/// Literals are encoded as `2 * net + value` ([`ImplicationDb::literal`]).
/// Per literal the database holds the list of implied literals and the sorted
/// support-net set justifying them; per net it holds the statically proven
/// constant value, if any. A literal that is statically *infeasible* (its net
/// is constant at the opposite value) stores a single edge to its own
/// negation, so firing it at runtime immediately surfaces the conflict.
#[derive(Debug, Clone, Default)]
pub struct ImplicationDb {
    num_nets: usize,
    /// CSR offsets into `edge_targets`, one entry per literal plus a sentinel.
    edge_starts: Vec<u32>,
    /// Implied literals, grouped per source literal.
    edge_targets: Vec<u32>,
    /// CSR offsets into `support_nets`, one entry per literal plus a sentinel.
    support_starts: Vec<u32>,
    /// Sorted support-net indices, grouped per source literal.
    support_nets: Vec<u32>,
    /// Statically proven constant value per net.
    constants: Vec<Option<bool>>,
}

impl ImplicationDb {
    /// Learns implications for `circuit`. Cost is one implication fixpoint
    /// per literal — quadratic in circuit size in the worst case, so this is
    /// meant to run once per circuit and be shared (see
    /// `moa_core::ConeCache`).
    pub fn build(circuit: &Circuit) -> Self {
        Builder::new(circuit).finish()
    }

    /// An empty database for `circuit`-sized queries (no learned knowledge).
    pub fn empty(num_nets: usize) -> Self {
        ImplicationDb {
            num_nets,
            edge_starts: vec![0; 2 * num_nets + 1],
            edge_targets: Vec::new(),
            support_starts: vec![0; 2 * num_nets + 1],
            support_nets: Vec::new(),
            constants: vec![None; num_nets],
        }
    }

    /// Encodes a literal `net = value`.
    #[inline]
    pub fn literal(net: NetId, value: bool) -> u32 {
        (net.index() as u32) * 2 + u32::from(value)
    }

    /// Decodes a literal back into `(net, value)`.
    #[inline]
    pub fn decode(lit: u32) -> (NetId, bool) {
        (NetId::new((lit / 2) as usize), lit % 2 == 1)
    }

    /// The literals implied by `lit`.
    #[inline]
    pub fn implied(&self, lit: u32) -> &[u32] {
        let lit = lit as usize;
        &self.edge_targets[self.edge_starts[lit] as usize..self.edge_starts[lit + 1] as usize]
    }

    /// `true` if `net` is in the support of `lit`'s implication list — the
    /// list must then not be fired under a fault whose critical net is `net`
    /// (the faulted net of a stem fault; the carrying gate's output for an
    /// input-pin fault).
    #[inline]
    pub fn support_contains(&self, lit: u32, net: NetId) -> bool {
        let lit = lit as usize;
        let sup =
            &self.support_nets[self.support_starts[lit] as usize..self.support_starts[lit + 1] as usize];
        sup.binary_search(&(net.index() as u32)).is_ok()
    }

    /// The statically proven constant value of `net`, if any.
    #[inline]
    pub fn constant(&self, net: NetId) -> Option<bool> {
        self.constants[net.index()]
    }

    /// Number of nets the database was built for.
    pub fn num_nets(&self) -> usize {
        self.num_nets
    }

    /// Total number of learned implication edges.
    pub fn num_edges(&self) -> usize {
        self.edge_targets.len()
    }

    /// Number of nets proven constant.
    pub fn num_constants(&self) -> usize {
        self.constants.iter().filter(|c| c.is_some()).count()
    }

    /// `true` if the database holds no edges and no constants.
    pub fn is_empty(&self) -> bool {
        self.edge_targets.is_empty() && self.num_constants() == 0
    }
}

/// Per-literal propagation result gathered during the build.
#[derive(Debug, Clone, Default)]
struct LitInfo {
    /// Implied literals (excluding the source itself).
    implied: Vec<u32>,
    /// Nets specified while propagating (always includes the source net).
    support: BTreeSet<u32>,
    /// The assertion conflicted: the literal is statically infeasible.
    conflict: bool,
}

struct Builder<'a> {
    circuit: &'a Circuit,
    /// Frame every propagation starts from: all-`X` with the constants
    /// learned so far applied and forward/backward-closed.
    base: Vec<V3>,
    values: Vec<V3>,
    view: Vec<V3>,
    touched: Vec<u32>,
    lits: Vec<LitInfo>,
    constants: Vec<Option<bool>>,
    /// Union of every net involved in deriving any constant (and the
    /// constant nets themselves). Any literal learned with constants seeded
    /// into the base transitively relies on these nets, so the set joins
    /// every literal's support once constants exist. Conservative but sound.
    const_support: BTreeSet<u32>,
}

impl<'a> Builder<'a> {
    fn new(circuit: &'a Circuit) -> Self {
        let n = circuit.num_nets();
        Builder {
            circuit,
            base: vec![V3::X; n],
            values: vec![V3::X; n],
            view: Vec::new(),
            touched: Vec::new(),
            lits: vec![LitInfo::default(); 2 * n],
            constants: vec![None; n],
            const_support: BTreeSet::new(),
        }
    }

    /// Asserts `net = value` on the current base frame and propagates to a
    /// fixed point. Returns `false` on conflict. `self.touched` holds the
    /// nets specified beyond the base afterwards in both cases.
    fn propagate(&mut self, net: NetId, value: V3) -> bool {
        for &t in &self.touched {
            self.values[t as usize] = self.base[t as usize];
        }
        self.touched.clear();
        self.values[net.index()] = value;
        self.touched.push(net.index() as u32);
        self.fixpoint()
    }

    fn fixpoint(&mut self) -> bool {
        loop {
            let mut changed = false;
            if !self.backward(&mut changed) || !self.forward(&mut changed) {
                return false;
            }
            if !changed {
                return true;
            }
        }
    }

    fn merge(&mut self, net: NetId, v: V3, changed: &mut bool) -> bool {
        let slot = &mut self.values[net.index()];
        match slot.merge(v) {
            Some(m) => {
                if *slot != m {
                    *slot = m;
                    self.touched.push(net.index() as u32);
                    *changed = true;
                }
                true
            }
            None => false,
        }
    }

    fn backward(&mut self, changed: &mut bool) -> bool {
        for i in (0..self.circuit.topo_order().len()).rev() {
            let gid = self.circuit.topo_order()[i];
            let gate = self.circuit.gate(gid);
            let out = self.values[gate.output().index()];
            if !out.is_specified() {
                continue;
            }
            self.view.clear();
            for &net in gate.inputs() {
                self.view.push(self.values[net.index()]);
            }
            match moa_logic::justify(gate.kind(), out, &self.view) {
                JustifyOutcome::Conflict => return false,
                JustifyOutcome::Implied(imps) => {
                    for imp in imps {
                        let target = self.circuit.gate(gid).inputs()[imp.input];
                        if !self.merge(target, imp.value, changed) {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    fn forward(&mut self, changed: &mut bool) -> bool {
        for i in 0..self.circuit.topo_order().len() {
            let gid = self.circuit.topo_order()[i];
            let gate = self.circuit.gate(gid);
            self.view.clear();
            for &net in gate.inputs() {
                self.view.push(self.values[net.index()]);
            }
            let out = gate.kind().eval(&self.view);
            if !out.is_specified() {
                continue;
            }
            let target = self.circuit.gate(gid).output();
            if !self.merge(target, out, changed) {
                return false;
            }
        }
        true
    }

    /// Rebuilds the base frame from the current constants and closes it
    /// under the propagator. Every net the closure specifies is itself a
    /// constant; returns `true` if that discovered any new one.
    fn rebuild_base(&mut self) -> bool {
        self.base.fill(V3::X);
        for net in self.circuit.net_ids() {
            if let Some(c) = self.constants[net.index()] {
                self.base[net.index()] = V3::from_bool(c);
            }
        }
        self.values.copy_from_slice(&self.base);
        self.touched.clear();
        let ok = self.fixpoint();
        debug_assert!(ok, "constant-seeded base cannot conflict");
        let mut grew = false;
        if ok {
            self.const_support
                .extend(self.touched.iter().copied());
            for i in 0..self.touched.len() {
                let t = self.touched[i] as usize;
                if self.constants[t].is_none() {
                    self.constants[t] = Some(self.values[t] == V3::One);
                    grew = true;
                }
            }
            self.base.copy_from_slice(&self.values);
            self.touched.clear();
        }
        grew
    }

    /// Runs per-literal propagations, iterating whole sweeps with newly
    /// proven constants seeded into the base until no more constants appear,
    /// then adds contrapositives and assembles the CSR tables.
    fn finish(mut self) -> ImplicationDb {
        let n = self.circuit.num_nets();

        // Phase 1: sweep all literals; re-sweep whenever the sweep proved new
        // constants (a conflict under the richer base both tightens the
        // implied sets and can cascade into further constants). Bounded:
        // constants grow monotonically, at most `n` of them.
        loop {
            let mut grew = self.rebuild_base();
            for net in self.circuit.net_ids() {
                for value in [false, true] {
                    let lit = ImplicationDb::literal(net, value) as usize;
                    if self.base[net.index()].is_specified() {
                        // Trivially true (empty list) or infeasible (the
                        // assembly phase emits the self-conflict edge).
                        self.lits[lit] = LitInfo {
                            conflict: self.base[net.index()] != V3::from_bool(value),
                            ..LitInfo::default()
                        };
                        continue;
                    }
                    let ok = self.propagate(net, V3::from_bool(value));
                    let mut info = LitInfo {
                        implied: Vec::new(),
                        support: self.touched.iter().copied().collect(),
                        conflict: !ok,
                    };
                    if ok {
                        for &t in &self.touched {
                            let m = NetId::new(t as usize);
                            if m == net {
                                continue;
                            }
                            let v = self.values[t as usize];
                            debug_assert!(v.is_specified());
                            info.implied.push(ImplicationDb::literal(m, v == V3::One));
                        }
                    } else if self.constants[net.index()].is_none() {
                        // `net = value` is impossible under every assignment.
                        self.constants[net.index()] = Some(!value);
                        self.const_support.extend(info.support.iter().copied());
                        grew = true;
                    }
                    self.lits[lit] = info;
                }
            }
            if !grew {
                break;
            }
        }

        // Phase 2: once constants exist, every learned list may rely on them
        // (they were part of the base), so their derivation nets join every
        // support set.
        if !self.const_support.is_empty() {
            for lit in 0..2 * n {
                if !self.lits[lit].implied.is_empty() {
                    let sup: Vec<u32> = self.const_support.iter().copied().collect();
                    self.lits[lit].support.extend(sup);
                }
            }
        }

        // Phase 3: contrapositives. For each feasible edge `a ⇒ b` add
        // `b̄ ⇒ ā` to `b̄`'s list (unless already implied), carrying `a`'s
        // support.
        let feasible =
            |constants: &[Option<bool>], lit: u32| -> bool {
                let (net, value) = ImplicationDb::decode(lit);
                constants[net.index()] != Some(!value)
            };
        let mut extra: Vec<Vec<u32>> = vec![Vec::new(); 2 * n];
        for a in 0..2 * n as u32 {
            if self.lits[a as usize].conflict || !feasible(&self.constants, a) {
                continue;
            }
            let not_a = a ^ 1;
            for i in 0..self.lits[a as usize].implied.len() {
                let b = self.lits[a as usize].implied[i];
                let not_b = b ^ 1;
                if !feasible(&self.constants, not_b) {
                    continue; // b̄ can never hold; its list is the self-conflict edge
                }
                if self.lits[not_b as usize].implied.contains(&not_a) {
                    continue; // already learned directly
                }
                if !extra[not_b as usize].contains(&not_a) {
                    extra[not_b as usize].push(not_a);
                    let sup: Vec<u32> = self.lits[a as usize].support.iter().copied().collect();
                    self.lits[not_b as usize].support.extend(sup);
                }
            }
        }
        for (lit, more) in extra.into_iter().enumerate() {
            self.lits[lit].implied.extend(more);
        }

        // Phase 4: assemble CSR tables. Infeasible literals carry a single
        // self-negation edge whose merge conflicts at runtime.
        let mut db = ImplicationDb::empty(n);
        db.constants.clone_from(&self.constants);
        db.edge_starts.clear();
        db.support_starts.clear();
        db.edge_starts.push(0);
        db.support_starts.push(0);
        for lit in 0..2 * n as u32 {
            let (net, value) = ImplicationDb::decode(lit);
            if self.constants[net.index()] == Some(!value) {
                db.edge_targets.push(lit ^ 1);
                let mut sup = self.const_support.clone();
                sup.insert(net.index() as u32);
                db.support_nets.extend(sup.iter().copied());
            } else {
                db.edge_targets.extend(self.lits[lit as usize].implied.iter().copied());
                db.support_nets
                    .extend(self.lits[lit as usize].support.iter().copied());
            }
            db.edge_starts.push(db.edge_targets.len() as u32);
            db.support_starts.push(db.support_nets.len() as u32);
        }
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moa_logic::GateKind;
    use moa_netlist::CircuitBuilder;

    /// The paper's Figure-4 conflict circuit: reconvergent fan-out of the
    /// input makes next-state line `l11` statically constant 0.
    fn figure4() -> Circuit {
        let mut b = CircuitBuilder::new("figure4");
        b.add_input("l1").unwrap();
        b.add_flip_flop("l2", "l11").unwrap();
        b.add_gate(GateKind::Buf, "l3", &["l1"]).unwrap();
        b.add_gate(GateKind::Buf, "l4", &["l1"]).unwrap();
        b.add_gate(GateKind::Or, "l5", &["l2", "l3"]).unwrap();
        b.add_gate(GateKind::Or, "l6", &["l2", "l4"]).unwrap();
        b.add_gate(GateKind::Not, "l7", &["l6"]).unwrap();
        b.add_gate(GateKind::And, "l11", &["l5", "l7"]).unwrap();
        b.add_output("l11");
        b.finish().unwrap()
    }

    fn net(c: &Circuit, name: &str) -> NetId {
        c.find_net(name).unwrap()
    }

    #[test]
    fn literal_encoding_round_trips() {
        for idx in [0usize, 1, 7, 1000] {
            for v in [false, true] {
                let lit = ImplicationDb::literal(NetId::new(idx), v);
                assert_eq!(ImplicationDb::decode(lit), (NetId::new(idx), v));
            }
        }
    }

    #[test]
    fn chain_learns_direct_and_transitive_implications() {
        // a -> b -> z: z=1 implies b=1 and (transitively) a=1.
        let mut b = CircuitBuilder::new("chain");
        b.add_input("a").unwrap();
        b.add_gate(GateKind::Buf, "b", &["a"]).unwrap();
        b.add_gate(GateKind::Buf, "z", &["b"]).unwrap();
        b.add_output("z");
        let c = b.finish().unwrap();
        let db = ImplicationDb::build(&c);
        let z1 = ImplicationDb::literal(net(&c, "z"), true);
        let implied = db.implied(z1);
        assert!(implied.contains(&ImplicationDb::literal(net(&c, "b"), true)));
        assert!(implied.contains(&ImplicationDb::literal(net(&c, "a"), true)));
        assert_eq!(db.num_constants(), 0);
    }

    #[test]
    fn and_gate_learns_contrapositive() {
        // z = AND(a, b): a=0 implies z=0 directly; the contrapositive z=1 =>
        // a=1 is also a *direct* justification here, but b=0 => z=0 gives the
        // indirect z=1 => b=1 which backward justification already finds too.
        // A real indirect case: w = OR(a, b); z = AND(w, c). a=1 => w=1 =>
        // nothing about z. But z=0 with c=1... keep it simple and check the
        // OR-side: a=1 => w=1, so the contrapositive w=0 => a=0 must be
        // present (it is also direct). Assert both directions exist.
        let mut b = CircuitBuilder::new("t");
        b.add_input("a").unwrap();
        b.add_input("b").unwrap();
        b.add_gate(GateKind::Or, "w", &["a", "b"]).unwrap();
        b.add_output("w");
        let c = b.finish().unwrap();
        let db = ImplicationDb::build(&c);
        let a1 = ImplicationDb::literal(net(&c, "a"), true);
        let w0 = ImplicationDb::literal(net(&c, "w"), false);
        assert!(db.implied(a1).contains(&ImplicationDb::literal(net(&c, "w"), true)));
        assert!(db.implied(w0).contains(&ImplicationDb::literal(net(&c, "a"), false)));
    }

    #[test]
    fn contrapositive_covers_indirect_implication() {
        // Reconvergence: w1 = BUF(a), w2 = BUF(a), z = AND(w1, w2).
        // Direct: a=1 => w1=1, w2=1 => z=1. Contrapositive: z=0 => a=0 —
        // NOT derivable by single backward justification (justify(AND, 0, XX)
        // implies nothing), so it must come from the learning law.
        let mut b = CircuitBuilder::new("t");
        b.add_input("a").unwrap();
        b.add_gate(GateKind::Buf, "w1", &["a"]).unwrap();
        b.add_gate(GateKind::Buf, "w2", &["a"]).unwrap();
        b.add_gate(GateKind::And, "z", &["w1", "w2"]).unwrap();
        b.add_output("z");
        let c = b.finish().unwrap();
        let db = ImplicationDb::build(&c);
        let z0 = ImplicationDb::literal(net(&c, "z"), false);
        assert!(db.implied(z0).contains(&ImplicationDb::literal(net(&c, "a"), false)));
    }

    #[test]
    fn figure4_next_state_line_is_constant_zero() {
        let c = figure4();
        let db = ImplicationDb::build(&c);
        assert_eq!(db.constant(net(&c, "l11")), Some(false));
        // The infeasible literal l11=1 carries a self-conflict edge.
        let l11_1 = ImplicationDb::literal(net(&c, "l11"), true);
        assert_eq!(db.implied(l11_1), &[l11_1 ^ 1]);
        // Its support names the nets of the conflicting derivation, so a
        // fault on l1 (which the derivation relies on) suppresses it.
        assert!(db.support_contains(l11_1, net(&c, "l1")));
        // The feasible side stays usable.
        assert_eq!(db.constant(net(&c, "l1")), None);
        assert_eq!(db.constant(net(&c, "l5")), None);
    }

    #[test]
    fn constant_closure_propagates_forward() {
        // x = AND(a, na) with na = NOT(a) is constant 0; z = OR(x, b) learns
        // nothing constant, but y = BUF(x) is constant 0 via closure.
        let mut b = CircuitBuilder::new("t");
        b.add_input("a").unwrap();
        b.add_input("b").unwrap();
        b.add_gate(GateKind::Not, "na", &["a"]).unwrap();
        b.add_gate(GateKind::And, "x", &["a", "na"]).unwrap();
        b.add_gate(GateKind::Buf, "y", &["x"]).unwrap();
        b.add_gate(GateKind::Or, "z", &["y", "b"]).unwrap();
        b.add_output("z");
        let c = b.finish().unwrap();
        let db = ImplicationDb::build(&c);
        assert_eq!(db.constant(net(&c, "x")), Some(false));
        assert_eq!(db.constant(net(&c, "y")), Some(false));
        // z = OR(0, b) follows b: not constant.
        assert_eq!(db.constant(net(&c, "z")), None);
        // z=1 must imply b=1 (the learner sees through the constant side).
        let z1 = ImplicationDb::literal(net(&c, "z"), true);
        assert!(db.implied(z1).contains(&ImplicationDb::literal(net(&c, "b"), true)));
    }

    #[test]
    fn support_contains_edge_targets() {
        // Support of a literal includes every net its list writes, so a stem
        // fault on an implied net always suppresses lists targeting it.
        let mut b = CircuitBuilder::new("t");
        b.add_input("a").unwrap();
        b.add_gate(GateKind::Buf, "z", &["a"]).unwrap();
        b.add_output("z");
        let c = b.finish().unwrap();
        let db = ImplicationDb::build(&c);
        let a1 = ImplicationDb::literal(net(&c, "a"), true);
        assert!(db.support_contains(a1, net(&c, "a")), "source in support");
        assert!(db.support_contains(a1, net(&c, "z")), "target in support");
    }

    #[test]
    fn empty_db_has_no_knowledge() {
        let db = ImplicationDb::empty(4);
        assert!(db.is_empty());
        assert_eq!(db.num_nets(), 4);
        for lit in 0..8 {
            assert!(db.implied(lit).is_empty());
        }
        assert_eq!(db.constant(NetId::new(2)), None);
    }

    #[test]
    fn fixpoint_exceeds_single_round() {
        // The learner iterates to a fixed point, so implications that need
        // forward information before backward justification are found:
        // w = AND(a, b); z = XOR(w, q)... (cf. imply.rs). Asserting z=0 with
        // all inputs X learns nothing; instead check a=0 => z=0 for
        // z = AND(a, b) via forward propagation.
        let mut b = CircuitBuilder::new("t");
        b.add_input("a").unwrap();
        b.add_input("b").unwrap();
        b.add_gate(GateKind::And, "z", &["a", "b"]).unwrap();
        b.add_output("z");
        let c = b.finish().unwrap();
        let db = ImplicationDb::build(&c);
        let a0 = ImplicationDb::literal(net(&c, "a"), false);
        assert!(db.implied(a0).contains(&ImplicationDb::literal(net(&c, "z"), false)));
    }
}
