//! Fault-list collapsing analysis: equivalence classes, dominance pairs, and
//! per-member collapse certificates.
//!
//! This layers an index-based view over the structural engines in
//! `moa-netlist` ([`collapse_faults`](moa_netlist::collapse_faults) and
//! [`dominance_relations`](moa_netlist::dominance_relations)), tailored to
//! what a campaign over a concrete fault *list* needs:
//!
//! - every fault index is assigned to exactly one [`FaultClass`] whose
//!   representative is the **lowest-indexed member present in the list** —
//!   a choice that depends only on the list, never on execution order;
//! - the dominance relation is exposed as index pairs for *reporting and
//!   ordering only*. Classic dominance collapsing (dropping the dominator)
//!   is justified for combinational single-observation detection; under the
//!   multiple observation time approach a fault's status carries more than
//!   "detected by some test" (observation times, expansion payloads), so a
//!   dominator's status cannot be reconstructed from the dominated fault's.
//!   Dominated faults are therefore never silently dropped here.
//! - each non-representative member gets a [`CollapseCertificate`] recording
//!   its provenance; the certificate can be structurally re-validated, and a
//!   campaign additionally replays the representative's detection
//!   certificate against the member fault through the concrete audit gate.

use std::collections::HashMap;

use moa_netlist::{collapse_faults, dominance_relations, Circuit, Fault};

/// One equivalence class over a fault list, by list index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultClass {
    /// Index of the class representative: the lowest member index.
    pub representative: usize,
    /// All member indices, ascending; `members[0] == representative`.
    pub members: Vec<usize>,
}

/// A proof obligation for one collapsed verdict: `member` inherited its
/// status from `representative` because the two faults are structurally
/// equivalent (identical faulty behavior on every net, at every time unit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollapseCertificate {
    /// The fault that was actually simulated.
    pub representative: Fault,
    /// The fault that inherited the verdict.
    pub member: Fault,
}

impl CollapseCertificate {
    /// Structurally re-validates the certificate: re-runs the equivalence
    /// closure over the circuit's full fault list and checks that both
    /// faults still land in the same class. Independent of the analysis
    /// that issued the certificate, so a buggy collapse cannot vouch for
    /// itself.
    pub fn validate(&self, circuit: &Circuit) -> bool {
        let full = moa_netlist::full_fault_list(circuit);
        let collapsed = collapse_faults(circuit, &full);
        match (
            collapsed.representative_of(self.representative),
            collapsed.representative_of(self.member),
        ) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }

    /// Human-readable provenance line, e.g.
    /// `"G10 stuck-at-0 inherited from G11 stuck-at-1"`.
    pub fn describe(&self, circuit: &Circuit) -> String {
        format!(
            "{} inherited from {}",
            self.member.describe(circuit),
            self.representative.describe(circuit)
        )
    }
}

/// Equivalence classes and dominance pairs over one concrete fault list.
///
/// # Example
///
/// ```
/// use moa_analyze::CollapseAnalysis;
/// use moa_netlist::{full_fault_list, parse_bench};
///
/// let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = AND(a, b)\n")?;
/// let faults = full_fault_list(&c);
/// let analysis = CollapseAnalysis::of(&c, &faults);
/// // 6 faults collapse to 4 classes: {a/0, b/0, z/0} merge.
/// assert_eq!(analysis.total(), 6);
/// assert_eq!(analysis.classes().len(), 4);
/// assert_eq!(analysis.collapsed(), 2);
/// # Ok::<(), moa_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CollapseAnalysis {
    classes: Vec<FaultClass>,
    representative_of: Vec<usize>,
    dominance: Vec<(usize, usize)>,
}

impl CollapseAnalysis {
    /// Analyzes `faults`: closes the gate-local equivalence rules over the
    /// list and projects the circuit's dominance relation onto it. Partial
    /// lists are safe — a rule referring to a fault outside the list simply
    /// contributes nothing.
    pub fn of(circuit: &Circuit, faults: &[Fault]) -> Self {
        let collapsed = collapse_faults(circuit, faults);
        let index_of: HashMap<Fault, usize> = faults
            .iter()
            .enumerate()
            .map(|(i, &f)| (f, i))
            .collect();
        let representative_of: Vec<usize> = faults
            .iter()
            .enumerate()
            .map(|(i, &f)| {
                collapsed
                    .class_of(f)
                    .and_then(|members| {
                        members.iter().filter_map(|m| index_of.get(m).copied()).min()
                    })
                    .unwrap_or(i)
            })
            .collect();
        let mut by_rep: HashMap<usize, Vec<usize>> = HashMap::new();
        for (i, &rep) in representative_of.iter().enumerate() {
            by_rep.entry(rep).or_default().push(i);
        }
        let mut classes: Vec<FaultClass> = by_rep
            .into_iter()
            .map(|(representative, mut members)| {
                members.sort_unstable();
                FaultClass {
                    representative,
                    members,
                }
            })
            .collect();
        classes.sort_unstable_by_key(|c| c.representative);
        let dominance = dominance_relations(circuit)
            .into_iter()
            .filter_map(|d| {
                let dominator = index_of.get(&d.dominator).copied()?;
                let dominated = index_of.get(&d.dominated).copied()?;
                Some((dominator, dominated))
            })
            .collect();
        CollapseAnalysis {
            classes,
            representative_of,
            dominance,
        }
    }

    /// The equivalence classes, ordered by representative index.
    pub fn classes(&self) -> &[FaultClass] {
        &self.classes
    }

    /// Number of faults analyzed.
    pub fn total(&self) -> usize {
        self.representative_of.len()
    }

    /// The representative index of the fault at `index`.
    pub fn representative_of(&self, index: usize) -> usize {
        self.representative_of[index]
    }

    /// Per-fault provenance: `representative_map()[i]` is the index whose
    /// verdict fault `i` may inherit (itself for representatives).
    pub fn representative_map(&self) -> &[usize] {
        &self.representative_of
    }

    /// Faults removed by collapsing: `total - classes`.
    pub fn collapsed(&self) -> usize {
        self.total() - self.classes.len()
    }

    /// Fraction of the list removed by collapsing; `0.0` for an empty list.
    pub fn ratio(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        self.collapsed() as f64 / self.total() as f64
    }

    /// Dominance pairs `(dominator, dominated)` projected onto the list:
    /// every test detecting the dominated fault also detects the dominator.
    /// Exposed for ordering and cross-checks only — see the module docs for
    /// why dominance never drops a fault under MOA.
    pub fn dominance(&self) -> &[(usize, usize)] {
        &self.dominance
    }

    /// The collapse certificate for a non-representative member, `None` for
    /// representatives (they prove themselves by simulation).
    pub fn certificate(&self, faults: &[Fault], index: usize) -> Option<CollapseCertificate> {
        let rep = self.representative_of[index];
        (rep != index).then(|| CollapseCertificate {
            representative: faults[rep],
            member: faults[index],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moa_logic::GateKind;
    use moa_netlist::{full_fault_list, parse_bench, CircuitBuilder};

    fn and_circuit() -> Circuit {
        let mut b = CircuitBuilder::new("t");
        b.add_input("a").unwrap();
        b.add_input("b").unwrap();
        b.add_gate(GateKind::And, "z", &["a", "b"]).unwrap();
        b.add_output("z");
        b.finish().unwrap()
    }

    #[test]
    fn and_gate_classes_and_representatives() {
        let c = and_circuit();
        let faults = full_fault_list(&c);
        let analysis = CollapseAnalysis::of(&c, &faults);
        assert_eq!(analysis.total(), 6);
        assert_eq!(analysis.classes().len(), 4);
        assert_eq!(analysis.collapsed(), 2);
        assert!((analysis.ratio() - 2.0 / 6.0).abs() < 1e-12);
        // The merged class {a/0, b/0, z/0} is represented by its lowest
        // index, and every member maps to it.
        let (a, b, z) = (
            c.find_net("a").unwrap(),
            c.find_net("b").unwrap(),
            c.find_net("z").unwrap(),
        );
        let idx = |f: Fault| faults.iter().position(|&g| g == f).unwrap();
        let members = [
            idx(Fault::stem(a, false)),
            idx(Fault::stem(b, false)),
            idx(Fault::stem(z, false)),
        ];
        let rep = *members.iter().min().unwrap();
        for &m in &members {
            assert_eq!(analysis.representative_of(m), rep);
        }
        let class = analysis
            .classes()
            .iter()
            .find(|cl| cl.representative == rep)
            .unwrap();
        let mut expected = members.to_vec();
        expected.sort_unstable();
        assert_eq!(class.members, expected);
    }

    #[test]
    fn classes_partition_the_list() {
        let c = and_circuit();
        let faults = full_fault_list(&c);
        let analysis = CollapseAnalysis::of(&c, &faults);
        let mut seen = vec![false; faults.len()];
        for class in analysis.classes() {
            assert_eq!(class.members[0], class.representative);
            for &m in &class.members {
                assert!(!seen[m], "fault {m} appears in two classes");
                seen[m] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn partial_list_is_safe_and_self_representative() {
        // Only z/0 present: its equivalence partners are missing from the
        // list, so it must represent itself instead of pointing outside.
        let c = and_circuit();
        let z = c.find_net("z").unwrap();
        let faults = [Fault::stem(z, false), Fault::stem(z, true)];
        let analysis = CollapseAnalysis::of(&c, &faults);
        assert_eq!(analysis.classes().len(), 2);
        assert_eq!(analysis.collapsed(), 0);
        assert_eq!(analysis.representative_of(0), 0);
        assert_eq!(analysis.representative_of(1), 1);
    }

    #[test]
    fn dominance_pairs_are_projected_onto_the_list() {
        let c = and_circuit();
        let faults = full_fault_list(&c);
        let analysis = CollapseAnalysis::of(&c, &faults);
        // z/sa1 dominates a/sa1 and b/sa1.
        assert_eq!(analysis.dominance().len(), 2);
        let z1 = faults
            .iter()
            .position(|&f| f == Fault::stem(c.find_net("z").unwrap(), true))
            .unwrap();
        assert!(analysis.dominance().iter().all(|&(dom, _)| dom == z1));
        // Restricting the list drops pairs whose ends are missing.
        let partial = [Fault::stem(c.find_net("z").unwrap(), true)];
        let analysis = CollapseAnalysis::of(&c, &partial);
        assert!(analysis.dominance().is_empty());
    }

    #[test]
    fn certificates_validate_structurally() {
        let c = and_circuit();
        let faults = full_fault_list(&c);
        let analysis = CollapseAnalysis::of(&c, &faults);
        let mut validated = 0;
        for i in 0..faults.len() {
            if let Some(cert) = analysis.certificate(&faults, i) {
                assert!(cert.validate(&c), "{}", cert.describe(&c));
                validated += 1;
            }
        }
        assert_eq!(validated, analysis.collapsed());
        // A forged certificate pairing inequivalent faults is rejected.
        let z = c.find_net("z").unwrap();
        let forged = CollapseCertificate {
            representative: Fault::stem(z, false),
            member: Fault::stem(z, true),
        };
        assert!(!forged.validate(&c));
    }

    #[test]
    fn inverter_chain_collapses_transitively() {
        // a -> NOT -> NOT -> z, fanout-free: a/0 ~ m/1 ~ z/0 and a/1 ~ m/0
        // ~ z/1, 8 faults in 4 classes (2 per polarity chain + endpoints
        // merged). The closure over the chain is what the union-find adds
        // over single-gate rules.
        let c = parse_bench("INPUT(a)\nOUTPUT(z)\nm = NOT(a)\nz = NOT(m)\n").unwrap();
        let faults = full_fault_list(&c);
        let analysis = CollapseAnalysis::of(&c, &faults);
        assert_eq!(analysis.total(), 6);
        assert_eq!(analysis.classes().len(), 2);
        let a = c.find_net("a").unwrap();
        let m = c.find_net("m").unwrap();
        let z = c.find_net("z").unwrap();
        let idx = |f: Fault| faults.iter().position(|&g| g == f).unwrap();
        assert_eq!(
            analysis.representative_of(idx(Fault::stem(z, false))),
            analysis.representative_of(idx(Fault::stem(a, false)))
        );
        assert_eq!(
            analysis.representative_of(idx(Fault::stem(m, true))),
            analysis.representative_of(idx(Fault::stem(a, false)))
        );
    }
}
