//! Parser robustness: arbitrary input text must yield `Ok` or a structured
//! error — never a panic — and every parsed circuit must satisfy the
//! `Circuit` invariants.

use proptest::prelude::*;

use moa_netlist::{parse_bench, Driver};

/// A corpus of hand-written malformed inputs, each exercising a specific
/// error path.
#[test]
fn malformed_corpus_yields_structured_errors() {
    let corpus = [
        "",                                  // empty
        "garbage",                           // no call syntax
        "INPUT()",                           // empty args
        "INPUT(a b)",                        // whitespace in name
        "INPUT(a)\nINPUT(a)",                // duplicate input
        "OUTPUT(z)",                         // undriven output
        "z = AND()",                         // gate with no inputs
        "z = NOT(a, b)\nINPUT(a)\nINPUT(b)", // bad arity
        "z = DFF(a, b)",                     // DFF arity
        "z = ()",                            // missing kind
        "z = AND(a",                         // unbalanced parens
        "z = AND)a(",                        // reversed parens
        "INPUT(a)\nz = AND(a, z)\nOUTPUT(z)", // combinational self-loop
        "INPUT(a)\nu = NOT(v)\nv = NOT(u)\nOUTPUT(u)", // 2-cycle
        "INPUT(a)\nOUTPUT(z)\nz = FOO(a)",   // unknown kind
        "= AND(a)",                          // missing lhs
        "INPUT(a)\na = NOT(a)",              // driving an input
        "q = DFF(q)\nOUTPUT(q)",             // self-latch is fine? (valid!)
    ];
    for (i, text) in corpus.iter().enumerate() {
        // Must not panic; most entries are errors, the self-latch is valid.
        let result = parse_bench(text);
        if i == corpus.len() - 1 {
            assert!(result.is_ok(), "self-latching DFF is a valid circuit");
        } else {
            assert!(result.is_err(), "corpus entry {i} should fail: {text:?}");
        }
    }
}

proptest! {
    /// Arbitrary text never panics the parser.
    #[test]
    fn arbitrary_text_never_panics(text in ".{0,200}") {
        let _ = parse_bench(&text);
    }

    /// Arbitrary *structured* text (lines of plausible tokens) never panics
    /// and, when it parses, produces a circuit satisfying the invariants.
    #[test]
    fn plausible_text_invariants(
        lines in proptest::collection::vec(
            prop_oneof![
                "[A-Za-z][A-Za-z0-9]{0,4} = (AND|NOT|DFF|NOR|FROB)\\([A-Za-z][A-Za-z0-9]{0,4}(, [A-Za-z][A-Za-z0-9]{0,4})?\\)",
                "INPUT\\([A-Za-z][A-Za-z0-9]{0,4}\\)",
                "OUTPUT\\([A-Za-z][A-Za-z0-9]{0,4}\\)",
                "# [a-z ]{0,10}",
            ],
            0..12,
        )
    ) {
        let text = lines.join("\n");
        if let Ok(circuit) = parse_bench(&text) {
            // Invariants: every net driven exactly once, topo order complete,
            // at least one output.
            prop_assert!(circuit.num_outputs() > 0);
            prop_assert_eq!(circuit.topo_order().len(), circuit.num_gates());
            for net in circuit.net_ids() {
                match circuit.driver(net) {
                    Driver::PrimaryInput(i) => {
                        prop_assert_eq!(circuit.inputs()[i], net);
                    }
                    Driver::Gate(g) => prop_assert_eq!(circuit.gate(g).output(), net),
                    Driver::FlipFlop(ff) => {
                        prop_assert_eq!(circuit.flip_flop(ff).q(), net);
                    }
                }
            }
        }
    }
}
