//! Gate-level sequential netlists for fault simulation.
//!
//! This crate models synchronous sequential circuits the way the ISCAS-89
//! benchmarks do: a combinational network of gates ([`GateKind`]) over nets,
//! plus D flip-flops whose outputs are the *present-state variables* `y_i` and
//! whose inputs are the *next-state variables* `Y_i` of the paper.
//!
//! Provided here:
//!
//! - [`Circuit`] — validated, levelized netlist with fan-out tables,
//! - [`CircuitBuilder`] — name-based construction with forward references,
//! - [`parse_bench`] / [`write_bench`] — the ISCAS-89 `.bench` format,
//! - [`Fault`] / [`FaultSite`] — single stuck-at faults on stems and fan-out
//!   branches, [`full_fault_list`] and equivalence [`collapse_faults`],
//! - [`CircuitStats`] — size/depth/fan-out statistics.
//!
//! # Example
//!
//! ```
//! use moa_netlist::parse_bench;
//!
//! let src = "
//!     INPUT(a)
//!     OUTPUT(z)
//!     q = DFF(d)
//!     d = NAND(a, q)
//!     z = NOT(q)
//! ";
//! let circuit = parse_bench(src)?;
//! assert_eq!(circuit.num_flip_flops(), 1);
//! assert_eq!(circuit.num_gates(), 2);
//! # Ok::<(), moa_netlist::NetlistError>(())
//! ```

#![deny(unsafe_code)]

mod bench_format;
mod builder;
#[cfg(feature = "failpoints")]
pub mod failpoint;
mod circuit;
mod collapse;
mod cone;
mod dominance;
mod error;
mod extract;
mod fault;
mod id;
mod levelize;
mod stats;

pub use bench_format::{
    parse_bench, structurally_equal, write_bench, MAX_FANIN, MAX_LINE_LEN, MAX_NAME_LEN,
};
pub use builder::CircuitBuilder;
pub use circuit::{Circuit, Driver, FlipFlop, Gate};
pub use collapse::{collapse_faults, CollapsedFaults};
pub use cone::{fanin_cone, fanout_cone, frame_fanin_cone, frame_fanout_cone, observable_nets};
pub use dominance::{dominance_relations, Dominance};
pub use error::NetlistError;
pub use extract::extract_fanin_cone;
pub use fault::{full_fault_list, Fault, FaultSite};
pub use id::{FlipFlopId, GateId, NetId};
pub use stats::CircuitStats;

pub use moa_logic::GateKind;
