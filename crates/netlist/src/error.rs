//! Error type for netlist construction and parsing.

use std::fmt;

/// Error produced while building, validating or parsing a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A net is driven by more than one source.
    MultipleDrivers {
        /// Name of the multiply-driven net.
        net: String,
    },
    /// A net is used but never driven by a primary input, gate or flip-flop.
    Undriven {
        /// Name of the floating net.
        net: String,
    },
    /// A gate was declared with an input count invalid for its kind.
    BadArity {
        /// Output net name of the offending gate.
        net: String,
        /// Gate kind name.
        kind: String,
        /// Number of inputs supplied.
        arity: usize,
    },
    /// The combinational part of the circuit contains a cycle.
    CombinationalLoop {
        /// Names of nets on (or near) the cycle, for diagnostics.
        nets: Vec<String>,
    },
    /// A primary input net is also driven by a gate or flip-flop.
    InputDriven {
        /// Name of the conflicting net.
        net: String,
    },
    /// The same name was declared as a primary input twice.
    DuplicateInput {
        /// The duplicated name.
        net: String,
    },
    /// The circuit has no primary outputs (nothing is observable).
    NoOutputs,
    /// A syntax error in a `.bench` source.
    Parse {
        /// 1-based source line number.
        line: usize,
        /// 1-based byte column where the offending construct starts.
        column: usize,
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::MultipleDrivers { net } => {
                write!(f, "net `{net}` has multiple drivers")
            }
            NetlistError::Undriven { net } => write!(f, "net `{net}` is never driven"),
            NetlistError::BadArity { net, kind, arity } => {
                write!(f, "gate `{net}` of kind {kind} has invalid arity {arity}")
            }
            NetlistError::CombinationalLoop { nets } => {
                write!(f, "combinational loop through nets: {}", nets.join(", "))
            }
            NetlistError::InputDriven { net } => {
                write!(f, "primary input `{net}` is also driven by logic")
            }
            NetlistError::DuplicateInput { net } => {
                write!(f, "primary input `{net}` declared twice")
            }
            NetlistError::NoOutputs => write!(f, "circuit has no primary outputs"),
            NetlistError::Parse {
                line,
                column,
                message,
            } => {
                write!(f, "parse error at line {line}, column {column}: {message}")
            }
        }
    }
}

impl std::error::Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NetlistError::Parse {
            line: 3,
            column: 5,
            message: "expected `)`".into(),
        };
        assert_eq!(e.to_string(), "parse error at line 3, column 5: expected `)`");
        let e = NetlistError::CombinationalLoop {
            nets: vec!["a".into(), "b".into()],
        };
        assert!(e.to_string().contains("a, b"));
    }
}
