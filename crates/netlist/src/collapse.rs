//! Structural equivalence collapsing of stuck-at faults.
//!
//! Two faults are *equivalent* when every test detecting one detects the
//! other. The classic gate-local rules are applied:
//!
//! - AND/NAND: any input stuck-at-0 ≡ output stuck-at-(0 ⊕ inversion),
//! - OR/NOR: any input stuck-at-1 ≡ output stuck-at-(1 ⊕ inversion),
//! - NOT/BUF: input stuck-at-v ≡ output stuck-at-(v ⊕ inversion),
//!
//! where the "input fault" is the branch fault of the pin when the source net
//! has fan-out, and the source net's stem fault otherwise. XOR/XNOR gates
//! contribute no structural equivalences.

use std::collections::HashMap;

use moa_logic::GateKind;

use crate::{Circuit, Fault, GateId};

/// The result of [`collapse_faults`]: equivalence classes over the input
/// fault list and one representative per class.
#[derive(Debug, Clone)]
pub struct CollapsedFaults {
    representatives: Vec<Fault>,
    classes: Vec<Vec<Fault>>,
    class_index: HashMap<Fault, usize>,
}

impl CollapsedFaults {
    /// One representative fault per equivalence class, in a deterministic
    /// order (the smallest member of each class, classes ordered by their
    /// representative).
    pub fn representatives(&self) -> &[Fault] {
        &self.representatives
    }

    /// Number of equivalence classes (the collapsed fault count).
    pub fn len(&self) -> usize {
        self.representatives.len()
    }

    /// `true` if the input fault list was empty.
    pub fn is_empty(&self) -> bool {
        self.representatives.is_empty()
    }

    /// All members of the class containing `fault`, if `fault` was in the
    /// input list.
    pub fn class_of(&self, fault: Fault) -> Option<&[Fault]> {
        self.class_index
            .get(&fault)
            .map(|&i| self.classes[i].as_slice())
    }

    /// The representative of `fault`'s class.
    pub fn representative_of(&self, fault: Fault) -> Option<Fault> {
        self.class_index.get(&fault).map(|&i| self.classes[i][0])
    }
}

/// Collapses `faults` into structural equivalence classes for `circuit`.
///
/// Faults in `faults` that are equivalent by the gate-local rules above end up
/// in the same class; rules referencing faults missing from `faults` are
/// ignored (so collapsing a partial fault list is safe).
///
/// # Example
///
/// ```
/// use moa_netlist::{collapse_faults, full_fault_list, parse_bench};
///
/// let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = AND(a, b)\n")?;
/// let full = full_fault_list(&c);
/// let collapsed = collapse_faults(&c, &full);
/// // a/sa0 ≡ b/sa0 ≡ z/sa0 collapse into one class: 6 faults → 4 classes.
/// assert_eq!(full.len(), 6);
/// assert_eq!(collapsed.len(), 4);
/// # Ok::<(), moa_netlist::NetlistError>(())
/// ```
pub fn collapse_faults(circuit: &Circuit, faults: &[Fault]) -> CollapsedFaults {
    let index: HashMap<Fault, usize> = faults
        .iter()
        .enumerate()
        .map(|(i, &f)| (f, i))
        .collect();
    let mut dsu = Dsu::new(faults.len());

    let union = |dsu: &mut Dsu, a: Fault, b: Fault| {
        if let (Some(&ia), Some(&ib)) = (index.get(&a), index.get(&b)) {
            dsu.union(ia, ib);
        }
    };

    for (gi, gate) in circuit.gates().iter().enumerate() {
        let gid = GateId::new(gi);
        let out = gate.output();
        // The fault actually seen at a pin: the branch fault when the source
        // net fans out, the stem fault otherwise.
        let pin_fault = |pin: usize, stuck: bool| {
            let src = gate.inputs()[pin];
            if circuit.fanout_count(src) > 1 {
                Fault::gate_input(gid, pin, stuck)
            } else {
                Fault::stem(src, stuck)
            }
        };
        match gate.kind() {
            GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                let c = gate
                    .kind()
                    .controlling_value()
                    .expect("AND/OR family has a controlling value");
                let out_fault = Fault::stem(out, c ^ gate.kind().inverting());
                for pin in 0..gate.inputs().len() {
                    union(&mut dsu, pin_fault(pin, c), out_fault);
                }
            }
            GateKind::Not | GateKind::Buf => {
                for v in [false, true] {
                    union(
                        &mut dsu,
                        pin_fault(0, v),
                        Fault::stem(out, v ^ gate.kind().inverting()),
                    );
                }
            }
            GateKind::Xor | GateKind::Xnor => {}
        }
    }

    // Group by root, sort members, order classes by representative.
    let mut groups: HashMap<usize, Vec<Fault>> = HashMap::new();
    for (i, &f) in faults.iter().enumerate() {
        groups.entry(dsu.find(i)).or_default().push(f);
    }
    let mut classes: Vec<Vec<Fault>> = groups.into_values().collect();
    for class in &mut classes {
        class.sort_unstable();
    }
    classes.sort_unstable_by(|a, b| a[0].cmp(&b[0]));

    let representatives = classes.iter().map(|c| c[0]).collect();
    let mut class_index = HashMap::new();
    for (i, class) in classes.iter().enumerate() {
        for &f in class {
            class_index.insert(f, i);
        }
    }
    CollapsedFaults {
        representatives,
        classes,
        class_index,
    }
}

/// Small union-find.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{full_fault_list, CircuitBuilder};

    #[test]
    fn inverter_chain_collapses_fully() {
        let mut b = CircuitBuilder::new("chain");
        b.add_input("a").unwrap();
        b.add_gate(GateKind::Not, "w", &["a"]).unwrap();
        b.add_gate(GateKind::Not, "z", &["w"]).unwrap();
        b.add_output("z");
        let c = b.finish().unwrap();
        let full = full_fault_list(&c);
        // 3 nets × 2 = 6 faults, all equivalent pairwise through the chain:
        // a/sa0 ≡ w/sa1 ≡ z/sa0 and a/sa1 ≡ w/sa0 ≡ z/sa1 → 2 classes.
        let collapsed = collapse_faults(&c, &full);
        assert_eq!(collapsed.len(), 2);
        let a0 = Fault::stem(c.find_net("a").unwrap(), false);
        let z0 = Fault::stem(c.find_net("z").unwrap(), false);
        assert_eq!(
            collapsed.representative_of(a0),
            collapsed.representative_of(z0)
        );
    }

    #[test]
    fn xor_does_not_collapse() {
        let mut b = CircuitBuilder::new("x");
        b.add_input("a").unwrap();
        b.add_input("b").unwrap();
        b.add_gate(GateKind::Xor, "z", &["a", "b"]).unwrap();
        b.add_output("z");
        let c = b.finish().unwrap();
        let full = full_fault_list(&c);
        let collapsed = collapse_faults(&c, &full);
        assert_eq!(collapsed.len(), full.len());
    }

    #[test]
    fn branch_faults_collapse_into_gate_not_stem() {
        let mut b = CircuitBuilder::new("f");
        b.add_input("a").unwrap();
        b.add_input("b").unwrap();
        b.add_gate(GateKind::And, "u", &["a", "b"]).unwrap();
        b.add_gate(GateKind::Or, "v", &["a", "b"]).unwrap();
        b.add_output("u");
        b.add_output("v");
        let c = b.finish().unwrap();
        let full = full_fault_list(&c);
        let collapsed = collapse_faults(&c, &full);
        // a's branch into the AND (pin 0) s-a-0 ≡ u s-a-0, but a's *stem*
        // s-a-0 is NOT equivalent to u s-a-0 (it also affects v).
        let branch = Fault::gate_input(GateId::new(0), 0, false);
        let u0 = Fault::stem(c.find_net("u").unwrap(), false);
        let a0 = Fault::stem(c.find_net("a").unwrap(), false);
        assert_eq!(
            collapsed.representative_of(branch),
            collapsed.representative_of(u0)
        );
        assert_ne!(
            collapsed.representative_of(a0),
            collapsed.representative_of(u0)
        );
    }

    #[test]
    fn classes_partition_the_input() {
        let mut b = CircuitBuilder::new("p");
        b.add_input("a").unwrap();
        b.add_input("b").unwrap();
        b.add_gate(GateKind::Nand, "u", &["a", "b"]).unwrap();
        b.add_gate(GateKind::Nor, "z", &["u", "b"]).unwrap();
        b.add_output("z");
        let c = b.finish().unwrap();
        let full = full_fault_list(&c);
        let collapsed = collapse_faults(&c, &full);
        let total: usize = full
            .iter()
            .map(|&f| collapsed.class_of(f).unwrap().len())
            .sum::<usize>();
        // Every fault is in exactly one class; summing class sizes over all
        // faults counts each class size² — instead check membership directly.
        assert!(total >= full.len());
        let mut seen = std::collections::HashSet::new();
        for &f in &full {
            let rep = collapsed.representative_of(f).unwrap();
            seen.insert(rep);
            assert!(collapsed.class_of(f).unwrap().contains(&f));
        }
        assert_eq!(seen.len(), collapsed.len());
        assert!(!collapsed.is_empty());
    }
}
