//! Single stuck-at faults on stems and fan-out branches.

use std::fmt;

use crate::{Circuit, FlipFlopId, GateId, NetId};

/// Where a stuck-at fault is injected.
///
/// A *stem* fault pins the value driven onto a net; a *branch* fault pins the
/// value seen by one specific reader pin of a net with fan-out. Branch faults
/// exist on gate input pins and flip-flop data pins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultSite {
    /// The value of the net itself (affects every reader).
    Net(NetId),
    /// The value seen by input pin `pin` of gate `gate` only.
    GateInput {
        /// The reading gate.
        gate: GateId,
        /// Pin position within the gate's input list.
        pin: usize,
    },
    /// The value seen by the data input of a flip-flop only.
    FlipFlopInput(FlipFlopId),
}

/// A single stuck-at fault.
///
/// # Example
///
/// ```
/// use moa_netlist::{parse_bench, full_fault_list};
///
/// let c = parse_bench("INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n")?;
/// let faults = full_fault_list(&c);
/// // Two nets, no fan-out: 4 stem faults.
/// assert_eq!(faults.len(), 4);
/// # Ok::<(), moa_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fault {
    /// The fault location.
    pub site: FaultSite,
    /// The stuck value: `true` for stuck-at-1, `false` for stuck-at-0.
    pub stuck: bool,
}

impl Fault {
    /// Creates a stem fault on `net`.
    pub fn stem(net: NetId, stuck: bool) -> Self {
        Fault {
            site: FaultSite::Net(net),
            stuck,
        }
    }

    /// Creates a branch fault on a gate input pin.
    pub fn gate_input(gate: GateId, pin: usize, stuck: bool) -> Self {
        Fault {
            site: FaultSite::GateInput { gate, pin },
            stuck,
        }
    }

    /// Creates a branch fault on a flip-flop data pin.
    pub fn flip_flop_input(ff: FlipFlopId, stuck: bool) -> Self {
        Fault {
            site: FaultSite::FlipFlopInput(ff),
            stuck,
        }
    }

    /// Human-readable description using the circuit's net names, e.g.
    /// `"G10 stuck-at-1"` or `"G9.in0 (G16) stuck-at-0"`.
    pub fn describe(&self, circuit: &Circuit) -> String {
        let sa = i32::from(self.stuck);
        match self.site {
            FaultSite::Net(net) => {
                format!("{} stuck-at-{sa}", circuit.net_name(net))
            }
            FaultSite::GateInput { gate, pin } => {
                let g = circuit.gate(gate);
                format!(
                    "{}.in{pin} ({}) stuck-at-{sa}",
                    circuit.net_name(g.output()),
                    circuit.net_name(g.inputs()[pin]),
                )
            }
            FaultSite::FlipFlopInput(ff) => {
                let ff = circuit.flip_flop(ff);
                format!(
                    "{}.d ({}) stuck-at-{sa}",
                    circuit.net_name(ff.q()),
                    circuit.net_name(ff.d()),
                )
            }
        }
    }

    /// The net whose *driven* value the fault overrides (for stems) or whose
    /// *read* value it overrides (for branches).
    pub fn source_net(&self, circuit: &Circuit) -> NetId {
        match self.site {
            FaultSite::Net(net) => net,
            FaultSite::GateInput { gate, pin } => circuit.gate(gate).inputs()[pin],
            FaultSite::FlipFlopInput(ff) => circuit.flip_flop(ff).d(),
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sa = i32::from(self.stuck);
        match self.site {
            FaultSite::Net(net) => write!(f, "{net}/sa{sa}"),
            FaultSite::GateInput { gate, pin } => write!(f, "{gate}.in{pin}/sa{sa}"),
            FaultSite::FlipFlopInput(ff) => write!(f, "{ff}.d/sa{sa}"),
        }
    }
}

/// Enumerates the full (uncollapsed) single stuck-at fault list:
///
/// - stem faults (both polarities) on every net, and
/// - branch faults (both polarities) on every gate input pin and flip-flop
///   data pin whose source net has fan-out greater than one.
///
/// Primary-output observation points never get separate branch faults: a PO
/// branch fault is indistinguishable from the stem for simulation purposes
/// here, since nothing downstream of a PO is modeled.
pub fn full_fault_list(circuit: &Circuit) -> Vec<Fault> {
    let mut faults = Vec::new();
    for net in circuit.net_ids() {
        faults.push(Fault::stem(net, false));
        faults.push(Fault::stem(net, true));
    }
    for (gi, gate) in circuit.gates().iter().enumerate() {
        for (pin, &src) in gate.inputs().iter().enumerate() {
            if circuit.fanout_count(src) > 1 {
                faults.push(Fault::gate_input(GateId::new(gi), pin, false));
                faults.push(Fault::gate_input(GateId::new(gi), pin, true));
            }
        }
    }
    for (fi, ff) in circuit.flip_flops().iter().enumerate() {
        if circuit.fanout_count(ff.d()) > 1 {
            faults.push(Fault::flip_flop_input(FlipFlopId::new(fi), false));
            faults.push(Fault::flip_flop_input(FlipFlopId::new(fi), true));
        }
    }
    faults
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CircuitBuilder;
    use moa_logic::GateKind;

    fn fanout_circuit() -> Circuit {
        let mut b = CircuitBuilder::new("fanout");
        b.add_input("a").unwrap();
        b.add_input("b").unwrap();
        // `a` feeds two gates: fan-out 2 → branch faults exist.
        b.add_gate(GateKind::And, "u", &["a", "b"]).unwrap();
        b.add_gate(GateKind::Or, "v", &["a", "b"]).unwrap();
        b.add_output("u");
        b.add_output("v");
        b.finish().unwrap()
    }

    #[test]
    fn fault_list_counts() {
        let c = fanout_circuit();
        // 4 nets × 2 stems = 8; `a` and `b` each have fan-out 2 and feed two
        // gate pins → 4 pins × 2 polarities = 8 branch faults.
        let faults = full_fault_list(&c);
        assert_eq!(faults.len(), 16);
        let branches = faults
            .iter()
            .filter(|f| matches!(f.site, FaultSite::GateInput { .. }))
            .count();
        assert_eq!(branches, 8);
    }

    #[test]
    fn describe_uses_net_names() {
        let c = fanout_circuit();
        let a = c.find_net("a").unwrap();
        assert_eq!(Fault::stem(a, true).describe(&c), "a stuck-at-1");
        let f = Fault::gate_input(GateId::new(0), 0, false);
        assert_eq!(f.describe(&c), "u.in0 (a) stuck-at-0");
    }

    #[test]
    fn source_net_resolution() {
        let c = fanout_circuit();
        let a = c.find_net("a").unwrap();
        assert_eq!(Fault::gate_input(GateId::new(0), 0, false).source_net(&c), a);
        assert_eq!(Fault::stem(a, false).source_net(&c), a);
    }

    #[test]
    fn ff_branch_faults_only_with_fanout() {
        let mut b = CircuitBuilder::new("ff");
        b.add_input("a").unwrap();
        b.add_flip_flop("q", "d").unwrap();
        b.add_gate(GateKind::Nand, "d", &["a", "q"]).unwrap();
        // `d` also observed as PO → fan-out 2 → FF branch faults exist.
        b.add_output("d");
        let c = b.finish().unwrap();
        let faults = full_fault_list(&c);
        assert!(faults
            .iter()
            .any(|f| matches!(f.site, FaultSite::FlipFlopInput(_))));
    }

    #[test]
    fn display_format() {
        assert_eq!(Fault::stem(NetId::new(3), true).to_string(), "n3/sa1");
        assert_eq!(
            Fault::gate_input(GateId::new(2), 1, false).to_string(),
            "g2.in1/sa0"
        );
    }
}
