//! Failure-injection hook for `.bench` ingestion (the `fp/bench.parse`
//! chaos site).
//!
//! Only compiled with the `failpoints` cargo feature. This crate cannot
//! depend on the chaos registry in `moa-core` (the dependency points the
//! other way), so the site is a function-pointer hook: the registry
//! installs a callback here when a chaos schedule is armed, and
//! [`parse_bench`](crate::parse_bench) consults it at entry. Without an
//! installed hook (or without the feature) parsing is unaffected.

use std::sync::Mutex;

/// The hook signature: returns `Some(message)` when the site fires with an
/// injected error, `None` to let the parse proceed. The hook itself may
/// also panic or sleep, depending on the armed action.
pub type ParseHook = fn() -> Option<String>;

static PARSE_HOOK: Mutex<Option<ParseHook>> = Mutex::new(None);

/// Installs (or, with `None`, removes) the parse failure hook.
pub fn set_parse_hook(hook: Option<ParseHook>) {
    *PARSE_HOOK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = hook;
}

/// Consulted by [`parse_bench`](crate::parse_bench): the injected error
/// message, if the armed hook fires.
pub(crate) fn injected_parse_error() -> Option<String> {
    // Copy the fn pointer out before calling: the hook may sleep or panic,
    // and must not do so while holding the lock.
    let hook = *PARSE_HOOK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    hook.and_then(|h| h())
}
