//! Name-based circuit construction with forward references.

use std::collections::HashMap;

use moa_logic::GateKind;

use crate::circuit::{Circuit, Driver, FlipFlop, Gate};
use crate::levelize::levelize;
use crate::{FlipFlopId, GateId, NetId, NetlistError};

/// Builds a [`Circuit`] incrementally by name.
///
/// Nets are created on first mention, so definitions may reference signals
/// defined later (as `.bench` files routinely do). [`CircuitBuilder::finish`]
/// validates the result: unique drivers, valid arities, acyclic combinational
/// logic, at least one output.
///
/// # Example
///
/// ```
/// use moa_logic::GateKind;
/// use moa_netlist::CircuitBuilder;
///
/// let mut b = CircuitBuilder::new("demo");
/// b.add_input("a")?;
/// b.add_gate(GateKind::Not, "z", &["a"])?;
/// b.add_output("z");
/// let circuit = b.finish()?;
/// assert_eq!(circuit.name(), "demo");
/// # Ok::<(), moa_netlist::NetlistError>(())
/// ```
#[derive(Debug)]
pub struct CircuitBuilder {
    name: String,
    net_names: Vec<String>,
    name_index: HashMap<String, NetId>,
    drivers: Vec<Option<Driver>>,
    gates: Vec<Gate>,
    flip_flops: Vec<FlipFlop>,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
}

impl CircuitBuilder {
    /// Creates an empty builder for a circuit called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        CircuitBuilder {
            name: name.into(),
            net_names: Vec::new(),
            name_index: HashMap::new(),
            drivers: Vec::new(),
            gates: Vec::new(),
            flip_flops: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Returns the net named `name`, creating it (undriven) if new.
    pub fn net(&mut self, name: &str) -> NetId {
        if let Some(&id) = self.name_index.get(name) {
            return id;
        }
        let id = NetId::new(self.net_names.len());
        self.net_names.push(name.to_owned());
        self.name_index.insert(name.to_owned(), id);
        self.drivers.push(None);
        id
    }

    fn drive(&mut self, net: NetId, driver: Driver) -> Result<(), NetlistError> {
        let slot = &mut self.drivers[net.index()];
        if slot.is_some() {
            return Err(NetlistError::MultipleDrivers {
                net: self.net_names[net.index()].clone(),
            });
        }
        *slot = Some(driver);
        Ok(())
    }

    /// Declares a primary input.
    ///
    /// # Errors
    ///
    /// [`NetlistError::DuplicateInput`] if the name was already declared as an
    /// input; [`NetlistError::MultipleDrivers`] if the net is already driven.
    pub fn add_input(&mut self, name: &str) -> Result<NetId, NetlistError> {
        let net = self.net(name);
        if matches!(
            self.drivers[net.index()],
            Some(Driver::PrimaryInput(_))
        ) {
            return Err(NetlistError::DuplicateInput {
                net: name.to_owned(),
            });
        }
        let index = self.inputs.len();
        self.drive(net, Driver::PrimaryInput(index))?;
        self.inputs.push(net);
        Ok(net)
    }

    /// Declares a primary output (the net may be defined before or after).
    pub fn add_output(&mut self, name: &str) -> NetId {
        let net = self.net(name);
        self.outputs.push(net);
        net
    }

    /// Adds a gate driving `output` from `inputs`.
    ///
    /// # Errors
    ///
    /// [`NetlistError::BadArity`] for an input count invalid for `kind`;
    /// [`NetlistError::MultipleDrivers`] if `output` is already driven.
    pub fn add_gate(
        &mut self,
        kind: GateKind,
        output: &str,
        inputs: &[&str],
    ) -> Result<GateId, NetlistError> {
        if !kind.accepts_arity(inputs.len()) {
            return Err(NetlistError::BadArity {
                net: output.to_owned(),
                kind: kind.to_string(),
                arity: inputs.len(),
            });
        }
        let out = self.net(output);
        let ins: Vec<NetId> = inputs.iter().map(|n| self.net(n)).collect();
        let id = GateId::new(self.gates.len());
        self.drive(out, Driver::Gate(id))?;
        self.gates.push(Gate {
            kind,
            output: out,
            inputs: ins,
        });
        Ok(id)
    }

    /// Adds a D flip-flop with output (present-state) net `q` and data-input
    /// (next-state) net `d`.
    ///
    /// # Errors
    ///
    /// [`NetlistError::MultipleDrivers`] if `q` is already driven.
    pub fn add_flip_flop(&mut self, q: &str, d: &str) -> Result<FlipFlopId, NetlistError> {
        let q_net = self.net(q);
        let d_net = self.net(d);
        let id = FlipFlopId::new(self.flip_flops.len());
        self.drive(q_net, Driver::FlipFlop(id))?;
        self.flip_flops.push(FlipFlop { d: d_net, q: q_net });
        Ok(id)
    }

    /// Validates and produces the circuit.
    ///
    /// # Errors
    ///
    /// [`NetlistError::Undriven`] for floating nets,
    /// [`NetlistError::CombinationalLoop`] for cyclic combinational logic,
    /// [`NetlistError::NoOutputs`] if no output was declared.
    pub fn finish(self) -> Result<Circuit, NetlistError> {
        let CircuitBuilder {
            name,
            net_names,
            name_index,
            drivers,
            gates,
            flip_flops,
            inputs,
            outputs,
        } = self;

        if outputs.is_empty() {
            return Err(NetlistError::NoOutputs);
        }
        let mut resolved = Vec::with_capacity(drivers.len());
        for (i, d) in drivers.iter().enumerate() {
            match d {
                Some(d) => resolved.push(*d),
                None => {
                    return Err(NetlistError::Undriven {
                        net: net_names[i].clone(),
                    })
                }
            }
        }

        let topo = levelize(&gates, &resolved, &net_names)?;

        let mut fanout_counts = vec![0u32; net_names.len()];
        for gate in &gates {
            for &input in &gate.inputs {
                fanout_counts[input.index()] += 1;
            }
        }
        for ff in &flip_flops {
            fanout_counts[ff.d.index()] += 1;
        }
        for &po in &outputs {
            fanout_counts[po.index()] += 1;
        }

        Ok(Circuit {
            name,
            net_names,
            name_index,
            drivers: resolved,
            gates,
            flip_flops,
            inputs,
            outputs,
            topo,
            fanout_counts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_input_is_rejected() {
        let mut b = CircuitBuilder::new("t");
        b.add_input("a").unwrap();
        assert!(matches!(
            b.add_input("a"),
            Err(NetlistError::DuplicateInput { .. })
        ));
    }

    #[test]
    fn multiple_drivers_rejected() {
        let mut b = CircuitBuilder::new("t");
        b.add_input("a").unwrap();
        b.add_gate(GateKind::Not, "z", &["a"]).unwrap();
        assert!(matches!(
            b.add_gate(GateKind::Buf, "z", &["a"]),
            Err(NetlistError::MultipleDrivers { .. })
        ));
    }

    #[test]
    fn undriven_net_rejected_at_finish() {
        let mut b = CircuitBuilder::new("t");
        b.add_input("a").unwrap();
        b.add_gate(GateKind::And, "z", &["a", "ghost"]).unwrap();
        b.add_output("z");
        assert_eq!(
            b.finish().unwrap_err(),
            NetlistError::Undriven {
                net: "ghost".into()
            }
        );
    }

    #[test]
    fn no_outputs_rejected() {
        let mut b = CircuitBuilder::new("t");
        b.add_input("a").unwrap();
        assert_eq!(b.finish().unwrap_err(), NetlistError::NoOutputs);
    }

    #[test]
    fn bad_arity_rejected() {
        let mut b = CircuitBuilder::new("t");
        b.add_input("a").unwrap();
        b.add_input("b").unwrap();
        assert!(matches!(
            b.add_gate(GateKind::Not, "z", &["a", "b"]),
            Err(NetlistError::BadArity { arity: 2, .. })
        ));
    }

    #[test]
    fn forward_references_resolve() {
        let mut b = CircuitBuilder::new("t");
        // Output and flip-flop reference `d` before its gate is declared.
        b.add_output("z");
        b.add_flip_flop("q", "d").unwrap();
        b.add_input("a").unwrap();
        b.add_gate(GateKind::Nor, "d", &["a", "q"]).unwrap();
        b.add_gate(GateKind::Not, "z", &["q"]).unwrap();
        let c = b.finish().unwrap();
        assert_eq!(c.num_nets(), 4);
        assert_eq!(c.num_gates(), 2);
    }

    #[test]
    fn input_cannot_be_driven() {
        let mut b = CircuitBuilder::new("t");
        b.add_input("a").unwrap();
        assert!(matches!(
            b.add_gate(GateKind::Not, "a", &["a"]),
            Err(NetlistError::MultipleDrivers { .. })
        ));
    }
}
