//! Circuit size and shape statistics.

use std::collections::BTreeMap;
use std::fmt;

use crate::{Circuit, Driver};

/// Summary statistics of a circuit, as printed by the experiment harnesses.
///
/// # Example
///
/// ```
/// use moa_netlist::{parse_bench, CircuitStats};
///
/// let c = parse_bench("INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n")?;
/// let stats = CircuitStats::of(&c);
/// assert_eq!(stats.gates, 1);
/// assert_eq!(stats.depth, 1);
/// # Ok::<(), moa_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitStats {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of flip-flops.
    pub flip_flops: usize,
    /// Number of combinational gates.
    pub gates: usize,
    /// Number of nets.
    pub nets: usize,
    /// Maximum combinational depth in gates.
    pub depth: usize,
    /// Largest fan-out of any net.
    pub max_fanout: u32,
    /// Gate-kind histogram by canonical name.
    pub kind_histogram: BTreeMap<&'static str, usize>,
}

impl CircuitStats {
    /// Computes the statistics of `circuit`.
    pub fn of(circuit: &Circuit) -> Self {
        let mut kind_histogram = BTreeMap::new();
        for gate in circuit.gates() {
            *kind_histogram.entry(gate.kind().name()).or_insert(0) += 1;
        }

        // Level of each net: PIs and FF outputs are level 0; a gate output is
        // 1 + max input level. The topo order makes this a single pass.
        let mut level = vec![0usize; circuit.num_nets()];
        let mut depth = 0;
        for &gid in circuit.topo_order() {
            let gate = circuit.gate(gid);
            let l = 1 + gate
                .inputs()
                .iter()
                .map(|&n| match circuit.driver(n) {
                    Driver::Gate(_) => level[n.index()],
                    _ => 0,
                })
                .max()
                .unwrap_or(0);
            level[gate.output().index()] = l;
            depth = depth.max(l);
        }

        let max_fanout = circuit
            .net_ids()
            .map(|n| circuit.fanout_count(n))
            .max()
            .unwrap_or(0);

        CircuitStats {
            inputs: circuit.num_inputs(),
            outputs: circuit.num_outputs(),
            flip_flops: circuit.num_flip_flops(),
            gates: circuit.num_gates(),
            nets: circuit.num_nets(),
            depth,
            max_fanout,
            kind_histogram,
        }
    }
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PI={} PO={} FF={} gates={} nets={} depth={} max_fanout={}",
            self.inputs,
            self.outputs,
            self.flip_flops,
            self.gates,
            self.nets,
            self.depth,
            self.max_fanout
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CircuitBuilder;
    use moa_logic::GateKind;

    #[test]
    fn depth_and_histogram() {
        let mut b = CircuitBuilder::new("t");
        b.add_input("a").unwrap();
        b.add_input("b").unwrap();
        b.add_gate(GateKind::And, "u", &["a", "b"]).unwrap();
        b.add_gate(GateKind::Not, "v", &["u"]).unwrap();
        b.add_gate(GateKind::Or, "z", &["v", "a"]).unwrap();
        b.add_output("z");
        let c = b.finish().unwrap();
        let s = CircuitStats::of(&c);
        assert_eq!(s.depth, 3);
        assert_eq!(s.kind_histogram["AND"], 1);
        assert_eq!(s.kind_histogram["NOT"], 1);
        assert_eq!(s.kind_histogram["OR"], 1);
        assert_eq!(s.gates, 3);
        // `a` feeds the AND and the OR → fan-out 2.
        assert_eq!(s.max_fanout, 2);
        let text = s.to_string();
        assert!(text.contains("depth=3"));
    }

    #[test]
    fn flip_flop_outputs_are_level_zero() {
        let mut b = CircuitBuilder::new("t");
        b.add_input("a").unwrap();
        b.add_flip_flop("q", "d").unwrap();
        b.add_gate(GateKind::Nand, "d", &["a", "q"]).unwrap();
        b.add_output("q");
        let c = b.finish().unwrap();
        assert_eq!(CircuitStats::of(&c).depth, 1);
    }
}
