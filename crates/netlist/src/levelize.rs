//! Topological ordering (levelization) of the combinational network.

use crate::circuit::{Driver, Gate};
use crate::{GateId, NetlistError};

/// Computes a topological evaluation order of `gates`.
///
/// Gate `g` depends on gate `h` iff one of `g`'s input nets is driven by `h`;
/// primary inputs and flip-flop outputs are sequential sources and impose no
/// ordering. Uses Kahn's algorithm.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalLoop`] (listing the output nets of the
/// gates stuck on the cycle) if the combinational network is cyclic.
pub(crate) fn levelize(
    gates: &[Gate],
    drivers: &[Driver],
    net_names: &[String],
) -> Result<Vec<GateId>, NetlistError> {
    let mut indegree = vec![0u32; gates.len()];
    // consumers[g] = gates reading g's output net.
    let mut consumers: Vec<Vec<u32>> = vec![Vec::new(); gates.len()];
    for (gi, gate) in gates.iter().enumerate() {
        for &input in &gate.inputs {
            if let Driver::Gate(src) = drivers[input.index()] {
                indegree[gi] += 1;
                consumers[src.index()].push(gi as u32);
            }
        }
    }

    let mut order = Vec::with_capacity(gates.len());
    let mut ready: Vec<u32> = indegree
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d == 0)
        .map(|(i, _)| i as u32)
        .collect();
    while let Some(gi) = ready.pop() {
        order.push(GateId::new(gi as usize));
        for &next in &consumers[gi as usize] {
            indegree[next as usize] -= 1;
            if indegree[next as usize] == 0 {
                ready.push(next);
            }
        }
    }

    if order.len() == gates.len() {
        Ok(order)
    } else {
        let nets = indegree
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d > 0)
            .map(|(i, _)| net_names[gates[i].output.index()].clone())
            .collect();
        Err(NetlistError::CombinationalLoop { nets })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CircuitBuilder;
    use moa_logic::GateKind;

    #[test]
    fn detects_combinational_loop() {
        let mut b = CircuitBuilder::new("loopy");
        b.add_input("a").unwrap();
        // u = AND(a, v); v = AND(a, u) — a combinational cycle.
        b.add_gate(GateKind::And, "u", &["a", "v"]).unwrap();
        b.add_gate(GateKind::And, "v", &["a", "u"]).unwrap();
        b.add_output("u");
        match b.finish() {
            Err(NetlistError::CombinationalLoop { nets }) => {
                assert!(nets.contains(&"u".to_owned()));
                assert!(nets.contains(&"v".to_owned()));
            }
            other => panic!("expected loop error, got {other:?}"),
        }
    }

    #[test]
    fn feedback_through_flip_flop_is_fine() {
        let mut b = CircuitBuilder::new("seq");
        b.add_input("a").unwrap();
        b.add_flip_flop("q", "d").unwrap();
        b.add_gate(GateKind::Nand, "d", &["a", "q"]).unwrap();
        b.add_output("q");
        assert!(b.finish().is_ok());
    }

    #[test]
    fn single_gate_circuit_levelizes() {
        let mut b = CircuitBuilder::new("one");
        b.add_input("a").unwrap();
        b.add_gate(GateKind::Not, "z", &["a"]).unwrap();
        b.add_output("z");
        let c = b.finish().unwrap();
        assert_eq!(c.topo_order().len(), 1);
        assert_eq!(c.topo_order()[0], GateId::new(0));
    }

    #[test]
    fn gateless_circuit_has_empty_order() {
        // Input → flip-flop → output with no combinational logic at all.
        let mut b = CircuitBuilder::new("wire");
        b.add_input("d").unwrap();
        b.add_flip_flop("q", "d").unwrap();
        b.add_output("q");
        let c = b.finish().unwrap();
        assert!(c.topo_order().is_empty());
    }

    #[test]
    fn every_output_a_state_variable_levelizes() {
        // Both primary outputs are flip-flop outputs, so no gate drives a PO:
        // the next-state logic must still be fully ordered.
        let mut b = CircuitBuilder::new("all-state");
        b.add_input("a").unwrap();
        b.add_flip_flop("q0", "d0").unwrap();
        b.add_flip_flop("q1", "d1").unwrap();
        b.add_gate(GateKind::Xor, "w", &["a", "q0"]).unwrap();
        b.add_gate(GateKind::And, "d0", &["w", "q1"]).unwrap();
        b.add_gate(GateKind::Or, "d1", &["w", "q0"]).unwrap();
        b.add_output("q0");
        b.add_output("q1");
        let c = b.finish().unwrap();
        let order = c.topo_order();
        assert_eq!(order.len(), 3);
        // w precedes both consumers.
        let pos: Vec<usize> = (0..3)
            .map(|g| order.iter().position(|&x| x == GateId::new(g)).unwrap())
            .collect();
        assert!(pos[0] < pos[1] && pos[0] < pos[2]);
    }

    #[test]
    fn long_chain_orders_correctly() {
        let mut b = CircuitBuilder::new("chain");
        b.add_input("a").unwrap();
        // Declare gates in reverse order to force nontrivial sorting.
        let n = 20;
        for i in (0..n).rev() {
            let input = if i == 0 {
                "a".to_owned()
            } else {
                format!("w{}", i - 1)
            };
            b.add_gate(GateKind::Not, &format!("w{i}"), &[&input]).unwrap();
        }
        b.add_output(&format!("w{}", n - 1));
        let c = b.finish().unwrap();
        let order = c.topo_order();
        assert_eq!(order.len(), n);
        // Each gate must appear after its predecessor in the chain.
        let pos: std::collections::HashMap<_, _> = order
            .iter()
            .enumerate()
            .map(|(i, &g)| (c.net_name(c.gate(g).output()).to_owned(), i))
            .collect();
        for i in 1..n {
            assert!(pos[&format!("w{}", i - 1)] < pos[&format!("w{i}")]);
        }
    }
}
