//! Structural fault dominance analysis.
//!
//! Fault `f` *dominates* fault `g` when every test detecting `g` also detects
//! `f`; when targeting test generation at a collapsed list, the dominating
//! fault can then be dropped. The classic gate-local rules are:
//!
//! - AND/NAND: the output stuck at (1 ⊕ inversion) dominates each input
//!   stuck-at-1 (detecting the input fault requires all other inputs at 1,
//!   which also exposes the output fault),
//! - OR/NOR: the output stuck at (0 ⊕ inversion) dominates each input
//!   stuck-at-0,
//! - XOR/XNOR: no dominance.
//!
//! **Sequential caveat**: these rules are only guaranteed for combinational
//! propagation. In a sequential circuit a fault's effect can propagate over
//! multiple time frames and re-converge, so dominance-based dropping is an
//! approximation; this module exposes the *relation* for analysis and leaves
//! the decision to drop to the caller (the experiment harnesses use
//! equivalence collapsing only, as the paper's fault counts do).

use moa_logic::GateKind;

use crate::{Circuit, Fault, GateId};

/// One structural dominance pair: every test for `dominated` detects
/// `dominator`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dominance {
    /// The fault whose tests are a superset.
    pub dominator: Fault,
    /// The fault whose detection implies the dominator's.
    pub dominated: Fault,
}

/// Enumerates the gate-local dominance relations of `circuit`.
///
/// The "input fault" of a pin is the pin's branch fault when the source net
/// fans out, and the source net's stem fault otherwise — mirroring
/// [`collapse_faults`](crate::collapse_faults).
///
/// # Example
///
/// ```
/// use moa_netlist::{dominance_relations, parse_bench};
///
/// let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = AND(a, b)\n")?;
/// let doms = dominance_relations(&c);
/// // z stuck-at-1 dominates a/sa1 and b/sa1.
/// assert_eq!(doms.len(), 2);
/// # Ok::<(), moa_netlist::NetlistError>(())
/// ```
pub fn dominance_relations(circuit: &Circuit) -> Vec<Dominance> {
    let mut relations = Vec::new();
    for (gi, gate) in circuit.gates().iter().enumerate() {
        let gid = GateId::new(gi);
        let Some(c) = gate.kind().controlling_value() else {
            continue; // XOR/XNOR/NOT/BUF: no multi-input dominance
        };
        if matches!(gate.kind(), GateKind::Not | GateKind::Buf) || gate.inputs().len() < 2 {
            continue;
        }
        // Output stuck at the *non-controlled* value dominates each input
        // stuck at the non-controlling value.
        let dominator = Fault::stem(gate.output(), !c ^ gate.kind().inverting());
        for (pin, &src) in gate.inputs().iter().enumerate() {
            let dominated = if circuit.fanout_count(src) > 1 {
                Fault::gate_input(gid, pin, !c)
            } else {
                Fault::stem(src, !c)
            };
            relations.push(Dominance {
                dominator,
                dominated,
            });
        }
    }
    relations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CircuitBuilder;

    #[test]
    fn and_gate_dominance() {
        let mut b = CircuitBuilder::new("t");
        b.add_input("a").unwrap();
        b.add_input("b").unwrap();
        b.add_gate(GateKind::And, "z", &["a", "b"]).unwrap();
        b.add_output("z");
        let c = b.finish().unwrap();
        let doms = dominance_relations(&c);
        let z = c.find_net("z").unwrap();
        let a = c.find_net("a").unwrap();
        assert!(doms.contains(&Dominance {
            dominator: Fault::stem(z, true),
            dominated: Fault::stem(a, true),
        }));
        assert_eq!(doms.len(), 2);
    }

    #[test]
    fn nor_gate_dominance_polarity() {
        let mut b = CircuitBuilder::new("t");
        b.add_input("a").unwrap();
        b.add_input("b").unwrap();
        b.add_gate(GateKind::Nor, "z", &["a", "b"]).unwrap();
        b.add_output("z");
        let c = b.finish().unwrap();
        let doms = dominance_relations(&c);
        let z = c.find_net("z").unwrap();
        // NOR: controlling 1, non-controlled output 0⊕inv = 1. Inputs s-a-0.
        assert!(doms.iter().all(|d| d.dominator == Fault::stem(z, true)));
        assert!(doms.iter().all(|d| !d.dominated.stuck));
    }

    #[test]
    fn xor_and_unary_gates_contribute_nothing() {
        let mut b = CircuitBuilder::new("t");
        b.add_input("a").unwrap();
        b.add_input("b").unwrap();
        b.add_gate(GateKind::Xor, "x", &["a", "b"]).unwrap();
        b.add_gate(GateKind::Not, "z", &["x"]).unwrap();
        b.add_output("z");
        let c = b.finish().unwrap();
        assert!(dominance_relations(&c).is_empty());
    }

    #[test]
    fn single_unary_gate_circuit_has_no_relations() {
        // The smallest possible circuit: one inverter. Unary gates admit no
        // gate-local dominance, so the relation is empty — not a panic.
        let mut b = CircuitBuilder::new("t");
        b.add_input("a").unwrap();
        b.add_gate(GateKind::Not, "z", &["a"]).unwrap();
        b.add_output("z");
        let c = b.finish().unwrap();
        assert!(dominance_relations(&c).is_empty());
    }

    #[test]
    fn multi_sink_dominator_keeps_stem_fault() {
        // w fans out to two sinks. The *dominated* pin faults on w become
        // branch faults, but w's own role as a dominator (for a/b) stays a
        // stem fault on w — fan-out of the output net does not weaken the
        // gate-local rule at the driving gate.
        let mut b = CircuitBuilder::new("t");
        b.add_input("a").unwrap();
        b.add_input("b").unwrap();
        b.add_input("c").unwrap();
        b.add_gate(GateKind::And, "w", &["a", "b"]).unwrap();
        b.add_gate(GateKind::Or, "u", &["w", "c"]).unwrap();
        b.add_gate(GateKind::Nor, "v", &["w", "c"]).unwrap();
        b.add_output("u");
        b.add_output("v");
        let c = b.finish().unwrap();
        let doms = dominance_relations(&c);
        let w = c.find_net("w").unwrap();
        // AND gate: w/sa1 dominates a/sa1 and b/sa1 (a, b are single-sink).
        let from_and: Vec<_> = doms
            .iter()
            .filter(|d| d.dominator == Fault::stem(w, true))
            .collect();
        assert_eq!(from_and.len(), 2);
        // OR and NOR gates: w fans out, so their dominated pin faults on w
        // are branch faults, never the shared stem.
        for d in &doms {
            if d.dominator != Fault::stem(w, true) {
                match d.dominated.site {
                    crate::FaultSite::GateInput { .. } => {}
                    crate::FaultSite::Net(net) => {
                        assert_ne!(net, w, "stem fault used for a fanout pin");
                    }
                    other @ crate::FaultSite::FlipFlopInput(_) => {
                        panic!("unexpected site {other:?}")
                    }
                }
            }
        }
        assert_eq!(doms.len(), 6);
    }

    #[test]
    fn every_output_a_state_variable_still_enumerates() {
        // All POs are flip-flop outputs; dominance comes from the next-state
        // logic alone and must not require a gate-driven PO.
        let mut b = CircuitBuilder::new("t");
        b.add_input("a").unwrap();
        b.add_flip_flop("q", "d").unwrap();
        b.add_gate(GateKind::And, "d", &["a", "q"]).unwrap();
        b.add_output("q");
        let c = b.finish().unwrap();
        let doms = dominance_relations(&c);
        let d = c.find_net("d").unwrap();
        assert_eq!(doms.len(), 2);
        assert!(doms.iter().all(|r| r.dominator == Fault::stem(d, true)));
    }

    #[test]
    fn fanout_uses_branch_faults() {
        let mut b = CircuitBuilder::new("t");
        b.add_input("a").unwrap();
        b.add_input("b").unwrap();
        b.add_gate(GateKind::And, "u", &["a", "b"]).unwrap();
        b.add_gate(GateKind::Or, "v", &["a", "b"]).unwrap();
        b.add_output("u");
        b.add_output("v");
        let c = b.finish().unwrap();
        let doms = dominance_relations(&c);
        // Both a and b fan out: dominated faults are branch faults.
        assert!(doms
            .iter()
            .all(|d| matches!(d.dominated.site, crate::FaultSite::GateInput { .. })));
        assert_eq!(doms.len(), 4);
    }
}
