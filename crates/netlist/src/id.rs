//! Typed indices into a [`Circuit`](crate::Circuit).
//!
//! The three id types are deliberately distinct newtypes ([C-NEWTYPE]): a net,
//! a gate and a flip-flop index can never be confused at a call site even
//! though all three are small integers internally.
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(u32);

        impl $name {
            /// Creates an id from a raw index.
            ///
            /// # Panics
            ///
            /// Panics if `index` exceeds `u32::MAX`.
            #[inline]
            pub fn new(index: usize) -> Self {
                Self(u32::try_from(index).expect("id index fits in u32"))
            }

            /// The raw index, usable for slice indexing.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Index of a net (a named signal) within a circuit.
    NetId,
    "n"
);
id_type!(
    /// Index of a combinational gate within a circuit.
    GateId,
    "g"
);
id_type!(
    /// Index of a D flip-flop within a circuit. The flip-flop's position in
    /// the circuit's flip-flop list is the state-variable index `i` of the
    /// paper's `y_i` / `Y_i` notation.
    FlipFlopId,
    "ff"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_display() {
        let n = NetId::new(42);
        assert_eq!(n.index(), 42);
        assert_eq!(n.to_string(), "n42");
        assert_eq!(GateId::new(7).to_string(), "g7");
        assert_eq!(FlipFlopId::new(0).to_string(), "ff0");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(NetId::new(1) < NetId::new(2));
    }
}
