//! The ISCAS-89 `.bench` netlist format.
//!
//! The format consists of `INPUT(name)` / `OUTPUT(name)` declarations and
//! assignments `name = KIND(arg, …)`, where `KIND` is a combinational gate
//! kind or `DFF`. `#` starts a comment.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::{Circuit, CircuitBuilder, Driver, NetlistError};

/// Hard cap on the byte length of one `.bench` source line (including
/// comments). A line past this is rejected up front, so a malformed or
/// hostile file cannot make the parser buffer unbounded statement text.
pub const MAX_LINE_LEN: usize = 1 << 16;

/// Hard cap on the byte length of one signal name.
pub const MAX_NAME_LEN: usize = 256;

/// Hard cap on the fan-in of one gate. Real ISCAS-89 circuits stay in the
/// single digits; anything larger is a malformed or adversarial file.
pub const MAX_FANIN: usize = 1024;

/// Parses ISCAS-89 `.bench` source text into a circuit.
///
/// The circuit name is taken from a leading `# name` comment when present,
/// otherwise it is `"bench"`.
///
/// # Errors
///
/// [`NetlistError::Parse`] (with a 1-based line number and the 1-based byte
/// column of the offending construct) on syntax errors, and any
/// [`CircuitBuilder`] validation error on semantic ones.
///
/// Ingestion is hardened against malformed or hostile input: lines longer
/// than [`MAX_LINE_LEN`] bytes, signal names longer than [`MAX_NAME_LEN`]
/// bytes and gates with more than [`MAX_FANIN`] inputs are rejected with
/// line/column diagnostics, as is any *duplicate definition* — a name
/// declared `INPUT` or driven by a `DFF`/gate assignment more than once
/// (`OUTPUT` lines are references, not definitions, and may repeat).
///
/// # Example
///
/// ```
/// use moa_netlist::parse_bench;
///
/// let c = parse_bench("INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n")?;
/// assert_eq!(c.num_inputs(), 1);
/// # Ok::<(), moa_netlist::NetlistError>(())
/// ```
pub fn parse_bench(source: &str) -> Result<Circuit, NetlistError> {
    #[cfg(feature = "failpoints")]
    if let Some(message) = crate::failpoint::injected_parse_error() {
        return Err(NetlistError::Parse {
            line: 0,
            column: 0,
            message,
        });
    }
    let mut name = None;
    let mut builder: Option<CircuitBuilder> = None;
    // Deferred so the builder can be created with the name from a comment.
    let mut statements: Vec<(usize, Statement)> = Vec::new();
    // Name → line of its definition, for the duplicate-definition check.
    let mut definitions: HashMap<String, usize> = HashMap::new();

    for (lineno, raw) in source.lines().enumerate() {
        let lineno = lineno + 1;
        if raw.len() > MAX_LINE_LEN {
            return Err(NetlistError::Parse {
                line: lineno,
                column: MAX_LINE_LEN + 1,
                message: format!(
                    "line of {} bytes exceeds the {MAX_LINE_LEN}-byte limit",
                    raw.len()
                ),
            });
        }
        let line = match raw.find('#') {
            Some(pos) => {
                if name.is_none() && statements.is_empty() {
                    let candidate = raw[pos + 1..].trim();
                    if !candidate.is_empty() && candidate.split_whitespace().count() == 1 {
                        name = Some(candidate.to_owned());
                    }
                }
                &raw[..pos]
            }
            None => raw,
        };
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        // 1-based column of the statement's first byte within the raw line.
        let base_column = trimmed.as_ptr() as usize - raw.as_ptr() as usize + 1;
        let stmt = parse_statement(lineno, base_column, trimmed)?;
        if let Some(defined) = stmt.defines() {
            if let Some(first) = definitions.insert(defined.to_owned(), lineno) {
                return Err(NetlistError::Parse {
                    line: lineno,
                    column: base_column,
                    message: format!(
                        "duplicate definition of `{defined}` (first defined on line {first})"
                    ),
                });
            }
        }
        statements.push((lineno, stmt));
    }

    let mut b = builder
        .take()
        .unwrap_or_else(|| CircuitBuilder::new(name.unwrap_or_else(|| "bench".to_owned())));
    for (_lineno, stmt) in statements {
        match stmt {
            Statement::Input(n) => {
                b.add_input(&n)?;
            }
            Statement::Output(n) => {
                b.add_output(&n);
            }
            Statement::Dff { q, d } => {
                b.add_flip_flop(&q, &d)?;
            }
            Statement::Gate { out, kind, inputs } => {
                let refs: Vec<&str> = inputs.iter().map(String::as_str).collect();
                b.add_gate(kind, &out, &refs)?;
            }
        }
    }
    b.finish()
}

enum Statement {
    Input(String),
    Output(String),
    Dff { q: String, d: String },
    Gate {
        out: String,
        kind: moa_logic::GateKind,
        inputs: Vec<String>,
    },
}

impl Statement {
    /// The name this statement *defines* (declares as input or drives), if
    /// any. `OUTPUT` only references an existing net.
    fn defines(&self) -> Option<&str> {
        match self {
            Statement::Input(n) => Some(n),
            Statement::Output(_) => None,
            Statement::Dff { q, .. } => Some(q),
            Statement::Gate { out, .. } => Some(out),
        }
    }
}

fn parse_statement(
    line_number: usize,
    base_column: usize,
    line: &str,
) -> Result<Statement, NetlistError> {
    let err = |column: usize, message: String| NetlistError::Parse {
        line: line_number,
        column,
        message,
    };
    // 1-based column of `part` (a subslice of `line`) in the source line.
    let col_of = |part: &str| base_column + (part.as_ptr() as usize - line.as_ptr() as usize);

    // A name past the cap is reported by length, not echoed — the point of
    // the cap is to keep oversized input out of downstream buffers.
    let check_name = |column: usize, name: &str| -> Result<(), NetlistError> {
        if name.len() > MAX_NAME_LEN {
            return Err(err(
                column,
                format!(
                    "signal name of {} bytes exceeds the {MAX_NAME_LEN}-byte limit",
                    name.len()
                ),
            ));
        }
        Ok(())
    };

    if let Some((lhs, rhs)) = line.split_once('=') {
        let out = lhs.trim();
        if out.is_empty() || out.contains(char::is_whitespace) {
            return Err(err(base_column, format!("invalid signal name `{out}`")));
        }
        check_name(col_of(out), out)?;
        let rhs = rhs.trim();
        let (kind_name, args) = parse_call(rhs)
            .ok_or_else(|| err(col_of(rhs), format!("expected `KIND(args)`, found `{rhs}`")))?;
        if args.len() > MAX_FANIN {
            return Err(err(
                col_of(rhs),
                format!(
                    "gate `{out}` has {} inputs, exceeding the fan-in limit of {MAX_FANIN}",
                    args.len()
                ),
            ));
        }
        for arg in &args {
            check_name(col_of(rhs), arg)?;
        }
        if kind_name.eq_ignore_ascii_case("DFF") {
            if args.len() != 1 {
                return Err(err(
                    col_of(rhs),
                    format!("DFF takes exactly one input, got {}", args.len()),
                ));
            }
            return Ok(Statement::Dff {
                q: out.to_owned(),
                d: args[0].clone(),
            });
        }
        let kind = kind_name
            .parse()
            .map_err(|e: moa_logic::ParseGateKindError| err(col_of(rhs), e.to_string()))?;
        if args.is_empty() {
            return Err(err(col_of(rhs), format!("gate `{out}` has no inputs")));
        }
        // A combinational gate feeding itself is a zero-delay loop no matter
        // what else the netlist contains — reject it here with a located
        // error instead of letting it surface as an anonymous cycle later.
        // (`q = DFF(q)` stays legal: the flip-flop breaks the loop.)
        if args.iter().any(|a| a == out) {
            return Err(err(
                col_of(rhs),
                format!("gate `{out}` lists itself as an input (combinational self-loop)"),
            ));
        }
        return Ok(Statement::Gate {
            out: out.to_owned(),
            kind,
            inputs: args,
        });
    }

    let (keyword, args) = parse_call(line)
        .ok_or_else(|| err(base_column, format!("unrecognized statement `{line}`")))?;
    if args.len() != 1 {
        return Err(err(base_column, format!("{keyword} takes exactly one name")));
    }
    check_name(base_column, &args[0])?;
    if keyword.eq_ignore_ascii_case("INPUT") {
        Ok(Statement::Input(args[0].clone()))
    } else if keyword.eq_ignore_ascii_case("OUTPUT") {
        Ok(Statement::Output(args[0].clone()))
    } else {
        Err(err(base_column, format!("unknown keyword `{keyword}`")))
    }
}

/// Parses `NAME(arg, arg, …)`, returning the name and argument list.
fn parse_call(s: &str) -> Option<(String, Vec<String>)> {
    let open = s.find('(')?;
    let close = s.rfind(')')?;
    if close < open || !s[close + 1..].trim().is_empty() {
        return None;
    }
    let name = s[..open].trim();
    if name.is_empty() || name.contains(char::is_whitespace) {
        return None;
    }
    let inner = &s[open + 1..close];
    let args: Vec<String> = if inner.trim().is_empty() {
        Vec::new()
    } else {
        inner.split(',').map(|a| a.trim().to_owned()).collect()
    };
    if args.iter().any(|a| a.is_empty() || a.contains(char::is_whitespace)) {
        return None;
    }
    Some((name.to_owned(), args))
}

/// Serializes a circuit to `.bench` source text.
///
/// The output round-trips through [`parse_bench`] to an equivalent circuit
/// (same nets, gates, flip-flops, inputs and outputs).
///
/// # Example
///
/// ```
/// use moa_netlist::{parse_bench, write_bench};
///
/// let c = parse_bench("INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n")?;
/// let text = write_bench(&c);
/// let c2 = parse_bench(&text)?;
/// assert_eq!(c.num_nets(), c2.num_nets());
/// # Ok::<(), moa_netlist::NetlistError>(())
/// ```
pub fn write_bench(circuit: &Circuit) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {}", circuit.name());
    for &pi in circuit.inputs() {
        let _ = writeln!(out, "INPUT({})", circuit.net_name(pi));
    }
    for &po in circuit.outputs() {
        let _ = writeln!(out, "OUTPUT({})", circuit.net_name(po));
    }
    for ff in circuit.flip_flops() {
        let _ = writeln!(
            out,
            "{} = DFF({})",
            circuit.net_name(ff.q()),
            circuit.net_name(ff.d())
        );
    }
    for gate in circuit.gates() {
        let inputs: Vec<&str> = gate
            .inputs()
            .iter()
            .map(|&n| circuit.net_name(n))
            .collect();
        let _ = writeln!(
            out,
            "{} = {}({})",
            circuit.net_name(gate.output()),
            gate.kind(),
            inputs.join(", ")
        );
    }
    out
}

/// Structural equality helper used by round-trip tests: checks that two
/// circuits have identical interface, gate and flip-flop structure when
/// matched by net name.
#[doc(hidden)]
pub fn structurally_equal(a: &Circuit, b: &Circuit) -> bool {
    if a.num_nets() != b.num_nets()
        || a.num_gates() != b.num_gates()
        || a.num_flip_flops() != b.num_flip_flops()
    {
        return false;
    }
    let names = |c: &Circuit, nets: &[crate::NetId]| -> Vec<String> {
        nets.iter().map(|&n| c.net_name(n).to_owned()).collect()
    };
    if names(a, a.inputs()) != names(b, b.inputs()) || names(a, a.outputs()) != names(b, b.outputs())
    {
        return false;
    }
    for net in a.net_ids() {
        let name = a.net_name(net);
        let Some(net_b) = b.find_net(name) else {
            return false;
        };
        match (a.driver(net), b.driver(net_b)) {
            (Driver::PrimaryInput(i), Driver::PrimaryInput(j)) if i == j => {}
            (Driver::FlipFlop(fa), Driver::FlipFlop(fb)) => {
                let (fa, fb) = (a.flip_flop(fa), b.flip_flop(fb));
                if a.net_name(fa.d()) != b.net_name(fb.d()) {
                    return false;
                }
            }
            (Driver::Gate(ga), Driver::Gate(gb)) => {
                let (ga, gb) = (a.gate(ga), b.gate(gb));
                if ga.kind() != gb.kind()
                    || names(a, ga.inputs()) != names(b, gb.inputs())
                {
                    return false;
                }
            }
            _ => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    const S27_LIKE: &str = "
# tiny
INPUT(a)
INPUT(b)
OUTPUT(z)
q = DFF(d)
d = NOR(a, q)   # feedback
z = NAND(b, q)
";

    #[test]
    fn parses_inputs_outputs_dffs_gates() {
        let c = parse_bench(S27_LIKE).unwrap();
        assert_eq!(c.name(), "tiny");
        assert_eq!(c.num_inputs(), 2);
        assert_eq!(c.num_outputs(), 1);
        assert_eq!(c.num_flip_flops(), 1);
        assert_eq!(c.num_gates(), 2);
    }

    #[test]
    fn round_trip_preserves_structure() {
        let c = parse_bench(S27_LIKE).unwrap();
        let text = write_bench(&c);
        let c2 = parse_bench(&text).unwrap();
        assert!(structurally_equal(&c, &c2));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let c = parse_bench("input(a)\noutput(z)\nz = not(a)\n").unwrap();
        assert_eq!(c.num_gates(), 1);
    }

    #[test]
    fn reports_line_numbers() {
        let err = parse_bench("INPUT(a)\nOUTPUT(z)\nz = FROB(a)\n").unwrap_err();
        assert_eq!(
            err,
            NetlistError::Parse {
                line: 3,
                column: 5,
                message: "unknown gate kind `FROB`".into()
            }
        );
    }

    #[test]
    fn reports_columns_past_leading_whitespace() {
        // The statement starts at column 3; the bad call at column 7.
        let err = parse_bench("INPUT(a)\nOUTPUT(z)\n  z = FROB(a)\n").unwrap_err();
        assert_eq!(
            err,
            NetlistError::Parse {
                line: 3,
                column: 7,
                message: "unknown gate kind `FROB`".into()
            }
        );
        // A malformed whole statement points at its own first column.
        let err = parse_bench("   WHAT\n").unwrap_err();
        assert_eq!(
            err,
            NetlistError::Parse {
                line: 1,
                column: 4,
                message: "unrecognized statement `WHAT`".into()
            }
        );
    }

    #[test]
    fn rejects_malformed_calls() {
        assert!(parse_bench("INPUT a\n").is_err());
        assert!(parse_bench("INPUT(a, b)\n").is_err());
        assert!(parse_bench("z = NOT(a\n").is_err());
        assert!(parse_bench("z = (a)\n").is_err());
        assert!(parse_bench("q = DFF(a, b)\n").is_err());
    }

    #[test]
    fn rejects_oversized_lines() {
        let source = format!("INPUT(a)\n# {}\nOUTPUT(a)\n", "x".repeat(MAX_LINE_LEN));
        let err = parse_bench(&source).unwrap_err();
        match err {
            NetlistError::Parse { line, column, message } => {
                assert_eq!(line, 2);
                assert_eq!(column, MAX_LINE_LEN + 1);
                assert!(message.contains("byte limit"), "{message}");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
        // Exactly at the cap is fine.
        let ok = format!("# {}\nINPUT(a)\nOUTPUT(a)\n", "x".repeat(MAX_LINE_LEN - 2));
        assert!(parse_bench(&ok).is_ok());
    }

    #[test]
    fn rejects_oversized_names() {
        let long = "n".repeat(MAX_NAME_LEN + 1);
        for source in [
            format!("INPUT({long})\n"),
            format!("INPUT(a)\n{long} = NOT(a)\n"),
            format!("INPUT(a)\nz = AND(a, {long})\n"),
        ] {
            let err = parse_bench(&source).unwrap_err();
            assert!(
                err.to_string().contains("byte limit"),
                "{source:.40}...: {err}"
            );
        }
        // Exactly at the cap is fine.
        let fit = "n".repeat(MAX_NAME_LEN);
        assert!(parse_bench(&format!("INPUT({fit})\nOUTPUT({fit})\n")).is_ok());
    }

    #[test]
    fn rejects_oversized_fanin() {
        let args: Vec<String> = (0..=MAX_FANIN).map(|i| format!("a{i}")).collect();
        let mut source = String::new();
        for a in &args {
            source.push_str(&format!("INPUT({a})\n"));
        }
        source.push_str(&format!("OUTPUT(z)\nz = AND({})\n", args.join(", ")));
        let err = parse_bench(&source).unwrap_err();
        assert!(err.to_string().contains("fan-in limit"), "{err}");
    }

    #[test]
    fn rejects_duplicate_definitions() {
        // A gate output driven twice.
        let err = parse_bench("INPUT(a)\nOUTPUT(z)\nz = NOT(a)\nz = BUFF(a)\n").unwrap_err();
        assert_eq!(
            err,
            NetlistError::Parse {
                line: 4,
                column: 1,
                message: "duplicate definition of `z` (first defined on line 3)".into()
            }
        );
        // The same name declared INPUT twice, or DFF-driven twice, or mixed.
        assert!(parse_bench("INPUT(a)\nINPUT(a)\nOUTPUT(a)\n").is_err());
        assert!(parse_bench("INPUT(d)\nOUTPUT(q)\nq = DFF(d)\nq = DFF(d)\n").is_err());
        assert!(parse_bench("INPUT(a)\nOUTPUT(a)\na = NOT(a)\n").is_err());
        // OUTPUT is a reference: repeating it is legal.
        let c = parse_bench("INPUT(a)\nOUTPUT(a)\nOUTPUT(a)\n").unwrap();
        assert_eq!(c.num_outputs(), 2);
    }

    #[test]
    fn rejects_combinational_self_loops() {
        let err = parse_bench("INPUT(a)\nOUTPUT(z)\nz = AND(a, z)\n").unwrap_err();
        assert_eq!(
            err,
            NetlistError::Parse {
                line: 3,
                column: 5,
                message: "gate `z` lists itself as an input (combinational self-loop)".into()
            }
        );
        // Any pin position is caught, including a pure inverter loop.
        assert!(parse_bench("OUTPUT(z)\nz = NOT(z)\n").is_err());
        // A flip-flop feeding itself is sequential, not combinational: legal.
        let c = parse_bench("OUTPUT(q)\nq = DFF(q)\n").unwrap();
        assert_eq!(c.num_flip_flops(), 1);
    }

    #[test]
    fn comment_only_and_blank_lines_ignored() {
        let c = parse_bench("\n# hello world\n\nINPUT(a)\nOUTPUT(a)\n").unwrap();
        // Multi-word comment is not taken as the circuit name.
        assert_eq!(c.name(), "bench");
        assert_eq!(c.num_inputs(), 1);
    }
}
