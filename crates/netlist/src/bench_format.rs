//! The ISCAS-89 `.bench` netlist format.
//!
//! The format consists of `INPUT(name)` / `OUTPUT(name)` declarations and
//! assignments `name = KIND(arg, …)`, where `KIND` is a combinational gate
//! kind or `DFF`. `#` starts a comment.

use std::fmt::Write as _;

use crate::{Circuit, CircuitBuilder, Driver, NetlistError};

/// Parses ISCAS-89 `.bench` source text into a circuit.
///
/// The circuit name is taken from a leading `# name` comment when present,
/// otherwise it is `"bench"`.
///
/// # Errors
///
/// [`NetlistError::Parse`] (with a 1-based line number and the 1-based byte
/// column of the offending construct) on syntax errors, and any
/// [`CircuitBuilder`] validation error on semantic ones.
///
/// # Example
///
/// ```
/// use moa_netlist::parse_bench;
///
/// let c = parse_bench("INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n")?;
/// assert_eq!(c.num_inputs(), 1);
/// # Ok::<(), moa_netlist::NetlistError>(())
/// ```
pub fn parse_bench(source: &str) -> Result<Circuit, NetlistError> {
    let mut name = None;
    let mut builder: Option<CircuitBuilder> = None;
    // Deferred so the builder can be created with the name from a comment.
    let mut statements: Vec<(usize, Statement)> = Vec::new();

    for (lineno, raw) in source.lines().enumerate() {
        let lineno = lineno + 1;
        let line = match raw.find('#') {
            Some(pos) => {
                if name.is_none() && statements.is_empty() {
                    let candidate = raw[pos + 1..].trim();
                    if !candidate.is_empty() && candidate.split_whitespace().count() == 1 {
                        name = Some(candidate.to_owned());
                    }
                }
                &raw[..pos]
            }
            None => raw,
        };
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        // 1-based column of the statement's first byte within the raw line.
        let base_column = trimmed.as_ptr() as usize - raw.as_ptr() as usize + 1;
        statements.push((lineno, parse_statement(lineno, base_column, trimmed)?));
    }

    let mut b = builder
        .take()
        .unwrap_or_else(|| CircuitBuilder::new(name.unwrap_or_else(|| "bench".to_owned())));
    for (_lineno, stmt) in statements {
        match stmt {
            Statement::Input(n) => {
                b.add_input(&n)?;
            }
            Statement::Output(n) => {
                b.add_output(&n);
            }
            Statement::Dff { q, d } => {
                b.add_flip_flop(&q, &d)?;
            }
            Statement::Gate { out, kind, inputs } => {
                let refs: Vec<&str> = inputs.iter().map(String::as_str).collect();
                b.add_gate(kind, &out, &refs)?;
            }
        }
    }
    b.finish()
}

enum Statement {
    Input(String),
    Output(String),
    Dff { q: String, d: String },
    Gate {
        out: String,
        kind: moa_logic::GateKind,
        inputs: Vec<String>,
    },
}

fn parse_statement(
    line_number: usize,
    base_column: usize,
    line: &str,
) -> Result<Statement, NetlistError> {
    let err = |column: usize, message: String| NetlistError::Parse {
        line: line_number,
        column,
        message,
    };
    // 1-based column of `part` (a subslice of `line`) in the source line.
    let col_of = |part: &str| base_column + (part.as_ptr() as usize - line.as_ptr() as usize);

    if let Some((lhs, rhs)) = line.split_once('=') {
        let out = lhs.trim();
        if out.is_empty() || out.contains(char::is_whitespace) {
            return Err(err(base_column, format!("invalid signal name `{out}`")));
        }
        let rhs = rhs.trim();
        let (kind_name, args) = parse_call(rhs)
            .ok_or_else(|| err(col_of(rhs), format!("expected `KIND(args)`, found `{rhs}`")))?;
        if kind_name.eq_ignore_ascii_case("DFF") {
            if args.len() != 1 {
                return Err(err(
                    col_of(rhs),
                    format!("DFF takes exactly one input, got {}", args.len()),
                ));
            }
            return Ok(Statement::Dff {
                q: out.to_owned(),
                d: args[0].clone(),
            });
        }
        let kind = kind_name
            .parse()
            .map_err(|e: moa_logic::ParseGateKindError| err(col_of(rhs), e.to_string()))?;
        if args.is_empty() {
            return Err(err(col_of(rhs), format!("gate `{out}` has no inputs")));
        }
        return Ok(Statement::Gate {
            out: out.to_owned(),
            kind,
            inputs: args,
        });
    }

    let (keyword, args) = parse_call(line)
        .ok_or_else(|| err(base_column, format!("unrecognized statement `{line}`")))?;
    if args.len() != 1 {
        return Err(err(base_column, format!("{keyword} takes exactly one name")));
    }
    if keyword.eq_ignore_ascii_case("INPUT") {
        Ok(Statement::Input(args[0].clone()))
    } else if keyword.eq_ignore_ascii_case("OUTPUT") {
        Ok(Statement::Output(args[0].clone()))
    } else {
        Err(err(base_column, format!("unknown keyword `{keyword}`")))
    }
}

/// Parses `NAME(arg, arg, …)`, returning the name and argument list.
fn parse_call(s: &str) -> Option<(String, Vec<String>)> {
    let open = s.find('(')?;
    let close = s.rfind(')')?;
    if close < open || !s[close + 1..].trim().is_empty() {
        return None;
    }
    let name = s[..open].trim();
    if name.is_empty() || name.contains(char::is_whitespace) {
        return None;
    }
    let inner = &s[open + 1..close];
    let args: Vec<String> = if inner.trim().is_empty() {
        Vec::new()
    } else {
        inner.split(',').map(|a| a.trim().to_owned()).collect()
    };
    if args.iter().any(|a| a.is_empty() || a.contains(char::is_whitespace)) {
        return None;
    }
    Some((name.to_owned(), args))
}

/// Serializes a circuit to `.bench` source text.
///
/// The output round-trips through [`parse_bench`] to an equivalent circuit
/// (same nets, gates, flip-flops, inputs and outputs).
///
/// # Example
///
/// ```
/// use moa_netlist::{parse_bench, write_bench};
///
/// let c = parse_bench("INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n")?;
/// let text = write_bench(&c);
/// let c2 = parse_bench(&text)?;
/// assert_eq!(c.num_nets(), c2.num_nets());
/// # Ok::<(), moa_netlist::NetlistError>(())
/// ```
pub fn write_bench(circuit: &Circuit) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {}", circuit.name());
    for &pi in circuit.inputs() {
        let _ = writeln!(out, "INPUT({})", circuit.net_name(pi));
    }
    for &po in circuit.outputs() {
        let _ = writeln!(out, "OUTPUT({})", circuit.net_name(po));
    }
    for ff in circuit.flip_flops() {
        let _ = writeln!(
            out,
            "{} = DFF({})",
            circuit.net_name(ff.q()),
            circuit.net_name(ff.d())
        );
    }
    for gate in circuit.gates() {
        let inputs: Vec<&str> = gate
            .inputs()
            .iter()
            .map(|&n| circuit.net_name(n))
            .collect();
        let _ = writeln!(
            out,
            "{} = {}({})",
            circuit.net_name(gate.output()),
            gate.kind(),
            inputs.join(", ")
        );
    }
    out
}

/// Structural equality helper used by round-trip tests: checks that two
/// circuits have identical interface, gate and flip-flop structure when
/// matched by net name.
#[doc(hidden)]
pub fn structurally_equal(a: &Circuit, b: &Circuit) -> bool {
    if a.num_nets() != b.num_nets()
        || a.num_gates() != b.num_gates()
        || a.num_flip_flops() != b.num_flip_flops()
    {
        return false;
    }
    let names = |c: &Circuit, nets: &[crate::NetId]| -> Vec<String> {
        nets.iter().map(|&n| c.net_name(n).to_owned()).collect()
    };
    if names(a, a.inputs()) != names(b, b.inputs()) || names(a, a.outputs()) != names(b, b.outputs())
    {
        return false;
    }
    for net in a.net_ids() {
        let name = a.net_name(net);
        let Some(net_b) = b.find_net(name) else {
            return false;
        };
        match (a.driver(net), b.driver(net_b)) {
            (Driver::PrimaryInput(i), Driver::PrimaryInput(j)) if i == j => {}
            (Driver::FlipFlop(fa), Driver::FlipFlop(fb)) => {
                let (fa, fb) = (a.flip_flop(fa), b.flip_flop(fb));
                if a.net_name(fa.d()) != b.net_name(fb.d()) {
                    return false;
                }
            }
            (Driver::Gate(ga), Driver::Gate(gb)) => {
                let (ga, gb) = (a.gate(ga), b.gate(gb));
                if ga.kind() != gb.kind()
                    || names(a, ga.inputs()) != names(b, gb.inputs())
                {
                    return false;
                }
            }
            _ => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    const S27_LIKE: &str = "
# tiny
INPUT(a)
INPUT(b)
OUTPUT(z)
q = DFF(d)
d = NOR(a, q)   # feedback
z = NAND(b, q)
";

    #[test]
    fn parses_inputs_outputs_dffs_gates() {
        let c = parse_bench(S27_LIKE).unwrap();
        assert_eq!(c.name(), "tiny");
        assert_eq!(c.num_inputs(), 2);
        assert_eq!(c.num_outputs(), 1);
        assert_eq!(c.num_flip_flops(), 1);
        assert_eq!(c.num_gates(), 2);
    }

    #[test]
    fn round_trip_preserves_structure() {
        let c = parse_bench(S27_LIKE).unwrap();
        let text = write_bench(&c);
        let c2 = parse_bench(&text).unwrap();
        assert!(structurally_equal(&c, &c2));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let c = parse_bench("input(a)\noutput(z)\nz = not(a)\n").unwrap();
        assert_eq!(c.num_gates(), 1);
    }

    #[test]
    fn reports_line_numbers() {
        let err = parse_bench("INPUT(a)\nOUTPUT(z)\nz = FROB(a)\n").unwrap_err();
        assert_eq!(
            err,
            NetlistError::Parse {
                line: 3,
                column: 5,
                message: "unknown gate kind `FROB`".into()
            }
        );
    }

    #[test]
    fn reports_columns_past_leading_whitespace() {
        // The statement starts at column 3; the bad call at column 7.
        let err = parse_bench("INPUT(a)\nOUTPUT(z)\n  z = FROB(a)\n").unwrap_err();
        assert_eq!(
            err,
            NetlistError::Parse {
                line: 3,
                column: 7,
                message: "unknown gate kind `FROB`".into()
            }
        );
        // A malformed whole statement points at its own first column.
        let err = parse_bench("   WHAT\n").unwrap_err();
        assert_eq!(
            err,
            NetlistError::Parse {
                line: 1,
                column: 4,
                message: "unrecognized statement `WHAT`".into()
            }
        );
    }

    #[test]
    fn rejects_malformed_calls() {
        assert!(parse_bench("INPUT a\n").is_err());
        assert!(parse_bench("INPUT(a, b)\n").is_err());
        assert!(parse_bench("z = NOT(a\n").is_err());
        assert!(parse_bench("z = (a)\n").is_err());
        assert!(parse_bench("q = DFF(a, b)\n").is_err());
    }

    #[test]
    fn comment_only_and_blank_lines_ignored() {
        let c = parse_bench("\n# hello world\n\nINPUT(a)\nOUTPUT(a)\n").unwrap();
        // Multi-word comment is not taken as the circuit name.
        assert_eq!(c.name(), "bench");
        assert_eq!(c.num_inputs(), 1);
    }
}
