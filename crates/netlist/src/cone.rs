//! Structural cone analysis: fan-in/fan-out cones and observability.
//!
//! Used for diagnostics (why is a fault undetectable?), for validating that
//! generated benchmarks leave no dangling logic, and by the statistics
//! reports. All cones are *combinational within a frame* but cross flip-flop
//! boundaries transitively, so "observable" means "can reach a primary
//! output in some number of clock cycles".

use crate::{Circuit, Driver, NetId};

/// The transitive fan-in cone of `net`: every net whose value can influence
/// it, crossing flip-flops (a flip-flop output depends on its data input).
/// The result includes `net` itself and is in ascending net-id order.
pub fn fanin_cone(circuit: &Circuit, net: NetId) -> Vec<NetId> {
    let mut seen = vec![false; circuit.num_nets()];
    let mut stack = vec![net];
    seen[net.index()] = true;
    while let Some(n) = stack.pop() {
        let sources: Vec<NetId> = match circuit.driver(n) {
            Driver::PrimaryInput(_) => Vec::new(),
            Driver::Gate(g) => circuit.gate(g).inputs().to_vec(),
            Driver::FlipFlop(ff) => vec![circuit.flip_flop(ff).d()],
        };
        for s in sources {
            if !seen[s.index()] {
                seen[s.index()] = true;
                stack.push(s);
            }
        }
    }
    collect(seen)
}

/// The transitive fan-out cone of `net`: every net whose value it can
/// influence, crossing flip-flops. Includes `net` itself.
pub fn fanout_cone(circuit: &Circuit, net: NetId) -> Vec<NetId> {
    // readers[net] = nets directly depending on net.
    let mut readers: Vec<Vec<NetId>> = vec![Vec::new(); circuit.num_nets()];
    for gate in circuit.gates() {
        for &input in gate.inputs() {
            readers[input.index()].push(gate.output());
        }
    }
    for ff in circuit.flip_flops() {
        readers[ff.d().index()].push(ff.q());
    }

    let mut seen = vec![false; circuit.num_nets()];
    let mut stack = vec![net];
    seen[net.index()] = true;
    while let Some(n) = stack.pop() {
        for &r in &readers[n.index()] {
            if !seen[r.index()] {
                seen[r.index()] = true;
                stack.push(r);
            }
        }
    }
    collect(seen)
}

/// Nets that can (structurally, over any number of cycles) influence a
/// primary output. A stuck-at fault on an unobservable net is untestable.
pub fn observable_nets(circuit: &Circuit) -> Vec<NetId> {
    let mut seen = vec![false; circuit.num_nets()];
    let mut stack: Vec<NetId> = Vec::new();
    for &po in circuit.outputs() {
        if !seen[po.index()] {
            seen[po.index()] = true;
            stack.push(po);
        }
    }
    while let Some(n) = stack.pop() {
        let sources: Vec<NetId> = match circuit.driver(n) {
            Driver::PrimaryInput(_) => Vec::new(),
            Driver::Gate(g) => circuit.gate(g).inputs().to_vec(),
            Driver::FlipFlop(ff) => vec![circuit.flip_flop(ff).d()],
        };
        for s in sources {
            if !seen[s.index()] {
                seen[s.index()] = true;
                stack.push(s);
            }
        }
    }
    collect(seen)
}

/// The *within-frame* fan-in cone of `net`: every net whose value can reach
/// it combinationally in the same time frame. Flip-flop outputs and primary
/// inputs are leaves — the walk does not cross a flip-flop into the previous
/// frame. Includes `net` itself; ascending net-id order.
///
/// This is the region backward implications on `net` can touch: justifying a
/// gate refines only its in-frame inputs, so an assertion at `net` can only
/// ever specify nets in this cone.
pub fn frame_fanin_cone(circuit: &Circuit, net: NetId) -> Vec<NetId> {
    let mut seen = vec![false; circuit.num_nets()];
    let mut stack = vec![net];
    seen[net.index()] = true;
    while let Some(n) = stack.pop() {
        if let Driver::Gate(g) = circuit.driver(n) {
            for &s in circuit.gate(g).inputs() {
                if !seen[s.index()] {
                    seen[s.index()] = true;
                    stack.push(s);
                }
            }
        }
    }
    collect(seen)
}

/// The *within-frame* fan-out cone of `seeds`: every net any seed can reach
/// combinationally in the same time frame (no flip-flop crossing). Includes
/// the seeds; ascending net-id order.
///
/// This is the region a value refinement at the seeds can propagate to
/// during one forward implication pass or one frame re-evaluation.
pub fn frame_fanout_cone(circuit: &Circuit, seeds: &[NetId]) -> Vec<NetId> {
    let mut readers: Vec<Vec<NetId>> = vec![Vec::new(); circuit.num_nets()];
    for gate in circuit.gates() {
        for &input in gate.inputs() {
            readers[input.index()].push(gate.output());
        }
    }

    let mut seen = vec![false; circuit.num_nets()];
    let mut stack = Vec::new();
    for &seed in seeds {
        if !seen[seed.index()] {
            seen[seed.index()] = true;
            stack.push(seed);
        }
    }
    while let Some(n) = stack.pop() {
        for &r in &readers[n.index()] {
            if !seen[r.index()] {
                seen[r.index()] = true;
                stack.push(r);
            }
        }
    }
    collect(seen)
}

fn collect(seen: Vec<bool>) -> Vec<NetId> {
    seen.into_iter()
        .enumerate()
        .filter(|&(_, s)| s)
        .map(|(i, _)| NetId::new(i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CircuitBuilder;
    use moa_logic::GateKind;

    fn c1() -> Circuit {
        let mut b = CircuitBuilder::new("cones");
        b.add_input("a").unwrap();
        b.add_input("b").unwrap();
        b.add_flip_flop("q", "d").unwrap();
        b.add_gate(GateKind::And, "w", &["a", "q"]).unwrap();
        b.add_gate(GateKind::Or, "d", &["w", "b"]).unwrap();
        b.add_gate(GateKind::Not, "z", &["w"]).unwrap();
        // Dangling gate: drives nothing observable.
        b.add_gate(GateKind::Nand, "dead", &["b", "b"]).unwrap();
        b.add_output("z");
        b.finish().unwrap()
    }

    fn names(c: &Circuit, nets: &[NetId]) -> Vec<String> {
        nets.iter().map(|&n| c.net_name(n).to_owned()).collect()
    }

    #[test]
    fn fanin_cone_crosses_flip_flops() {
        let c = c1();
        let z = c.find_net("z").unwrap();
        let cone = names(&c, &fanin_cone(&c, z));
        // z ← w ← {a, q}; q ← d ← {w, b}: everything except `dead`.
        for n in ["z", "w", "a", "q", "d", "b"] {
            assert!(cone.contains(&n.to_owned()), "{n}");
        }
        assert!(!cone.contains(&"dead".to_owned()));
    }

    #[test]
    fn fanout_cone_crosses_flip_flops() {
        let c = c1();
        let b_net = c.find_net("b").unwrap();
        let cone = names(&c, &fanout_cone(&c, b_net));
        // b → d → q → w → {z, d again}: reaches the output over a cycle.
        for n in ["b", "d", "q", "w", "z", "dead"] {
            assert!(cone.contains(&n.to_owned()), "{n}");
        }
        assert!(!cone.contains(&"a".to_owned()));
    }

    #[test]
    fn observable_nets_exclude_dangling_logic() {
        let c = c1();
        let obs = names(&c, &observable_nets(&c));
        assert!(obs.contains(&"a".to_owned()));
        assert!(obs.contains(&"q".to_owned()));
        assert!(!obs.contains(&"dead".to_owned()), "dangling gate is unobservable");
        assert_eq!(obs.len(), c.num_nets() - 1);
    }

    #[test]
    fn cones_contain_their_seed() {
        let c = c1();
        for net in c.net_ids() {
            assert!(fanin_cone(&c, net).contains(&net));
            assert!(fanout_cone(&c, net).contains(&net));
        }
    }

    #[test]
    fn frame_fanin_cone_stops_at_flip_flops() {
        let c = c1();
        let z = c.find_net("z").unwrap();
        let cone = names(&c, &frame_fanin_cone(&c, z));
        // z ← w ← {a, q}; q is a flip-flop output, a leaf within the frame.
        assert_eq!(cone, ["a", "q", "w", "z"]);
    }

    #[test]
    fn frame_fanout_cone_stops_at_flip_flop_inputs() {
        let c = c1();
        let q = c.find_net("q").unwrap();
        let cone = names(&c, &frame_fanout_cone(&c, &[q]));
        // q → w → {d, z}; d feeds the flip-flop, which is next-frame.
        assert_eq!(cone, ["q", "d", "w", "z"]);
    }

    #[test]
    fn frame_fanout_cone_unions_seeds() {
        let c = c1();
        let a = c.find_net("a").unwrap();
        let b_net = c.find_net("b").unwrap();
        let cone = names(&c, &frame_fanout_cone(&c, &[a, b_net]));
        assert_eq!(cone, ["a", "b", "d", "w", "z", "dead"]);
        assert!(frame_fanout_cone(&c, &[]).is_empty());
    }
}
