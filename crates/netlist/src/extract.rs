//! Subcircuit extraction: the sequential fan-in cone of chosen nets as a
//! standalone circuit.
//!
//! Used to cut a failing fault's logic out of a large design for inspection
//! (`moa explain` on the extract, waveform dumps, exhaustive checks that are
//! infeasible on the whole machine). A sequential fan-in cone is closed under
//! drivers — every net in the cone is driven inside the cone — so the
//! extract needs no cut-point inputs: its primary inputs are exactly the
//! original primary inputs the cone reaches.

use crate::cone::fanin_cone;
use crate::{Circuit, CircuitBuilder, NetId, NetlistError};

/// Extracts the fan-in cone of `roots` (crossing flip-flops) as a circuit
/// named `name`, with `roots` as its primary outputs.
///
/// Original declaration orders are preserved for the surviving inputs,
/// flip-flops and gates, and net names are kept, so faults and traces on the
/// extract correspond to the original by name.
///
/// # Errors
///
/// Propagates [`NetlistError`] from circuit construction (cannot happen for
/// roots of a valid circuit, but the signature keeps the builder's contract).
///
/// # Example
///
/// ```
/// use moa_netlist::{extract_fanin_cone, parse_bench};
///
/// let c = parse_bench(
///     "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nOUTPUT(w)\nz = NOT(a)\nw = AND(a, b)\n",
/// )?;
/// let z = c.find_net("z").unwrap();
/// let cone = extract_fanin_cone(&c, &[z], "z-cone")?;
/// assert_eq!(cone.num_inputs(), 1, "only `a` feeds z");
/// assert_eq!(cone.num_gates(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn extract_fanin_cone(
    circuit: &Circuit,
    roots: &[NetId],
    name: &str,
) -> Result<Circuit, NetlistError> {
    let mut in_cone = vec![false; circuit.num_nets()];
    for &root in roots {
        for net in fanin_cone(circuit, root) {
            in_cone[net.index()] = true;
        }
    }

    let mut b = CircuitBuilder::new(name);
    for &pi in circuit.inputs() {
        if in_cone[pi.index()] {
            b.add_input(circuit.net_name(pi))?;
        }
    }
    for ff in circuit.flip_flops() {
        if in_cone[ff.q().index()] {
            b.add_flip_flop(circuit.net_name(ff.q()), circuit.net_name(ff.d()))?;
        }
    }
    for &gid in circuit.topo_order() {
        let gate = circuit.gate(gid);
        if in_cone[gate.output().index()] {
            let inputs: Vec<&str> = gate
                .inputs()
                .iter()
                .map(|&n| circuit.net_name(n))
                .collect();
            b.add_gate(gate.kind(), circuit.net_name(gate.output()), &inputs)?;
        }
    }
    for &root in roots {
        b.add_output(circuit.net_name(root));
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_bench, structurally_equal, Driver};
    use moa_logic::GateKind;

    fn s27ish() -> Circuit {
        parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(z)\n\
             q = DFF(d)\n\
             u = NAND(a, q)\n\
             d = NOR(u, b)\n\
             z = NOT(u)\n\
             dead_to_z = AND(c, b)\n\
             OUTPUT(dead_to_z)\n",
        )
        .unwrap()
    }

    #[test]
    fn cone_of_all_outputs_is_the_whole_circuit() {
        let c = s27ish();
        let roots: Vec<NetId> = c.outputs().to_vec();
        let cone = extract_fanin_cone(&c, &roots, c.name()).unwrap();
        assert!(structurally_equal(&c, &cone));
    }

    #[test]
    fn internal_cone_drops_unrelated_logic() {
        let c = s27ish();
        let z = c.find_net("z").unwrap();
        let cone = extract_fanin_cone(&c, &[z], "zc").unwrap();
        // z ← u ← {a, q}; q ← d ← {u, b}: c and dead_to_z are out.
        assert!(cone.find_net("c").is_none());
        assert!(cone.find_net("dead_to_z").is_none());
        assert_eq!(cone.num_inputs(), 2);
        assert_eq!(cone.num_flip_flops(), 1);
        assert_eq!(cone.num_outputs(), 1);
    }

    /// Simulating the extract with the projected inputs reproduces the
    /// original values on every cone net, frame by frame.
    #[test]
    fn extract_simulates_identically_on_cone_nets() {
        use moa_logic::V3;
        let c = s27ish();
        let z = c.find_net("z").unwrap();
        let cone = extract_fanin_cone(&c, &[z], "zc").unwrap();

        // Drive the original with a fixed sequence and the extract with the
        // projection onto its inputs (by name).
        let patterns = [
            [V3::One, V3::Zero, V3::One],
            [V3::Zero, V3::Zero, V3::Zero],
            [V3::One, V3::One, V3::Zero],
        ];
        let mut full_state = vec![V3::X; c.num_flip_flops()];
        let mut cone_state = vec![V3::X; cone.num_flip_flops()];
        for pattern in patterns {
            let full_frame = moa_sim_shim::compute(&c, &pattern, &full_state);
            let cone_pattern: Vec<V3> = cone
                .inputs()
                .iter()
                .map(|&n| {
                    let original = c.find_net(cone.net_name(n)).unwrap();
                    let pos = c.inputs().iter().position(|&p| p == original).unwrap();
                    pattern[pos]
                })
                .collect();
            let cone_frame = moa_sim_shim::compute(&cone, &cone_pattern, &cone_state);
            for net in cone.net_ids() {
                let original = c.find_net(cone.net_name(net)).unwrap();
                assert_eq!(
                    cone_frame[net.index()],
                    full_frame[original.index()],
                    "{}",
                    cone.net_name(net)
                );
            }
            full_state = moa_sim_shim::next(&c, &full_frame);
            cone_state = moa_sim_shim::next(&cone, &cone_frame);
        }
    }

    /// A tiny frame evaluator local to this test (moa-netlist cannot depend
    /// on moa-sim); mirrors `moa_sim::compute_frame` for fault-free frames.
    mod moa_sim_shim {
        use super::*;
        use moa_logic::V3;

        pub fn compute(c: &Circuit, pattern: &[V3], state: &[V3]) -> Vec<V3> {
            let mut values = vec![V3::X; c.num_nets()];
            for (i, &net) in c.inputs().iter().enumerate() {
                values[net.index()] = pattern[i];
            }
            for (i, ff) in c.flip_flops().iter().enumerate() {
                values[ff.q().index()] = state[i];
            }
            for &gid in c.topo_order() {
                let gate = c.gate(gid);
                let inputs: Vec<V3> = gate.inputs().iter().map(|&n| values[n.index()]).collect();
                values[gate.output().index()] = gate.kind().eval(&inputs);
            }
            values
        }

        pub fn next(c: &Circuit, values: &[V3]) -> Vec<V3> {
            c.flip_flops().iter().map(|ff| values[ff.d().index()]).collect()
        }
    }

    #[test]
    fn extraction_keeps_gate_kinds() {
        let c = s27ish();
        let u = c.find_net("u").unwrap();
        let cone = extract_fanin_cone(&c, &[u], "uc").unwrap();
        let u2 = cone.find_net("u").unwrap();
        match cone.driver(u2) {
            Driver::Gate(g) => assert_eq!(cone.gate(g).kind(), GateKind::Nand),
            other => panic!("unexpected driver {other:?}"),
        }
    }
}
