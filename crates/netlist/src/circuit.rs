//! The validated, levelized circuit representation.

use std::collections::HashMap;

use moa_logic::GateKind;

use crate::{FlipFlopId, GateId, NetId};

/// A combinational gate: one output net computed from one or more input nets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    pub(crate) kind: GateKind,
    pub(crate) output: NetId,
    pub(crate) inputs: Vec<NetId>,
}

impl Gate {
    /// The gate's logic function.
    #[inline]
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// The net driven by this gate.
    #[inline]
    pub fn output(&self) -> NetId {
        self.output
    }

    /// The nets read by this gate, in pin order.
    #[inline]
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }
}

/// A D flip-flop. Its output net `q` is a *present-state variable* `y_i` and
/// its input net `d` the corresponding *next-state variable* `Y_i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlipFlop {
    pub(crate) d: NetId,
    pub(crate) q: NetId,
}

impl FlipFlop {
    /// The data-input net (next-state variable `Y_i`).
    #[inline]
    pub fn d(&self) -> NetId {
        self.d
    }

    /// The output net (present-state variable `y_i`).
    #[inline]
    pub fn q(&self) -> NetId {
        self.q
    }
}

/// What drives a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Driver {
    /// The net is the `index`-th primary input.
    PrimaryInput(usize),
    /// The net is a gate output.
    Gate(GateId),
    /// The net is a flip-flop output (a present-state variable).
    FlipFlop(FlipFlopId),
}

/// A validated synchronous sequential circuit.
///
/// Construction goes through [`CircuitBuilder`](crate::CircuitBuilder) or
/// [`parse_bench`](crate::parse_bench); a constructed `Circuit` guarantees:
///
/// - every net has exactly one driver,
/// - gate arities are valid for their kinds,
/// - the combinational part is acyclic, and [`Circuit::topo_order`] is a
///   topological evaluation order for it,
/// - there is at least one primary output.
///
/// # Example
///
/// ```
/// use moa_netlist::CircuitBuilder;
/// use moa_logic::GateKind;
///
/// let mut b = CircuitBuilder::new("toggle");
/// b.add_input("en")?;
/// b.add_flip_flop("q", "d")?;
/// b.add_gate(GateKind::Xor, "d", &["en", "q"])?;
/// b.add_output("q");
/// let circuit = b.finish()?;
/// assert_eq!(circuit.num_gates(), 1);
/// assert_eq!(circuit.net_name(circuit.flip_flops()[0].q()), "q");
/// # Ok::<(), moa_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Circuit {
    pub(crate) name: String,
    pub(crate) net_names: Vec<String>,
    pub(crate) name_index: HashMap<String, NetId>,
    pub(crate) drivers: Vec<Driver>,
    pub(crate) gates: Vec<Gate>,
    pub(crate) flip_flops: Vec<FlipFlop>,
    pub(crate) inputs: Vec<NetId>,
    pub(crate) outputs: Vec<NetId>,
    pub(crate) topo: Vec<GateId>,
    pub(crate) fanout_counts: Vec<u32>,
}

impl Circuit {
    /// The circuit's name (e.g. `"s27"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total number of nets.
    #[inline]
    pub fn num_nets(&self) -> usize {
        self.net_names.len()
    }

    /// Number of combinational gates.
    #[inline]
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Number of flip-flops (state variables).
    #[inline]
    pub fn num_flip_flops(&self) -> usize {
        self.flip_flops.len()
    }

    /// Number of primary inputs.
    #[inline]
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    #[inline]
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Primary-input nets, in declaration order.
    #[inline]
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary-output nets, in declaration order.
    #[inline]
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// All gates (unordered; use [`Circuit::topo_order`] for evaluation).
    #[inline]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Looks up a gate by id.
    #[inline]
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// All flip-flops; position `i` is state variable `y_i` / `Y_i`.
    #[inline]
    pub fn flip_flops(&self) -> &[FlipFlop] {
        &self.flip_flops
    }

    /// Looks up a flip-flop by id.
    #[inline]
    pub fn flip_flop(&self, id: FlipFlopId) -> FlipFlop {
        self.flip_flops[id.index()]
    }

    /// The name of a net.
    #[inline]
    pub fn net_name(&self, net: NetId) -> &str {
        &self.net_names[net.index()]
    }

    /// Finds a net by name.
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.name_index.get(name).copied()
    }

    /// The unique driver of a net.
    #[inline]
    pub fn driver(&self, net: NetId) -> Driver {
        self.drivers[net.index()]
    }

    /// Gate ids in a topological order of the combinational network: every
    /// gate appears after all gates driving its inputs. Simulators and the
    /// implication engine iterate this order forward (and backward for
    /// justification).
    #[inline]
    pub fn topo_order(&self) -> &[GateId] {
        &self.topo
    }

    /// Number of reader pins of a net (gate inputs + flip-flop data inputs +
    /// primary-output observations). A net with `fanout_count > 1` has
    /// distinguishable fan-out *branches* for fault modeling.
    #[inline]
    pub fn fanout_count(&self, net: NetId) -> u32 {
        self.fanout_counts[net.index()]
    }

    /// Iterates over all net ids.
    pub fn net_ids(&self) -> impl ExactSizeIterator<Item = NetId> + '_ {
        (0..self.num_nets()).map(NetId::new)
    }

    /// The flip-flop whose output (present-state) net is `net`, if any.
    pub fn flip_flop_of_q(&self, net: NetId) -> Option<FlipFlopId> {
        match self.driver(net) {
            Driver::FlipFlop(id) => Some(id),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CircuitBuilder;

    fn small() -> Circuit {
        let mut b = CircuitBuilder::new("small");
        b.add_input("a").unwrap();
        b.add_input("b").unwrap();
        b.add_flip_flop("q", "d").unwrap();
        b.add_gate(GateKind::And, "w", &["a", "q"]).unwrap();
        b.add_gate(GateKind::Or, "d", &["w", "b"]).unwrap();
        b.add_output("w");
        b.finish().unwrap()
    }

    #[test]
    fn accessors() {
        let c = small();
        assert_eq!(c.name(), "small");
        assert_eq!(c.num_inputs(), 2);
        assert_eq!(c.num_outputs(), 1);
        assert_eq!(c.num_flip_flops(), 1);
        assert_eq!(c.num_gates(), 2);
        assert_eq!(c.num_nets(), 5);
        let w = c.find_net("w").unwrap();
        assert_eq!(c.net_name(w), "w");
        assert!(matches!(c.driver(w), Driver::Gate(_)));
        let q = c.find_net("q").unwrap();
        assert_eq!(c.flip_flop_of_q(q), Some(FlipFlopId::new(0)));
        assert_eq!(c.flip_flop_of_q(w), None);
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let c = small();
        let w = c.find_net("w").unwrap();
        let d = c.find_net("d").unwrap();
        let pos = |net: NetId| {
            c.topo_order()
                .iter()
                .position(|&g| c.gate(g).output() == net)
                .unwrap()
        };
        assert!(pos(w) < pos(d), "w feeds d, so w must be evaluated first");
    }

    #[test]
    fn fanout_counts() {
        let c = small();
        // `w` is read by the OR gate and observed as a primary output.
        assert_eq!(c.fanout_count(c.find_net("w").unwrap()), 2);
        // `q` is read only by the AND gate.
        assert_eq!(c.fanout_count(c.find_net("q").unwrap()), 1);
        // `d` is read only by the flip-flop.
        assert_eq!(c.fanout_count(c.find_net("d").unwrap()), 1);
    }
}
