//! The [`Strategy`] abstraction: deterministic value generators.

use std::marker::PhantomData;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::Rng;

/// A generator of test-case values.
///
/// Unlike the real crate there is no value tree and no shrinking: a
/// strategy simply draws one value per case from the runner's RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Filters generated values; draws again (bounded) when `f` rejects.
    fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }

    /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        self.0.generate(rng)
    }
}

/// Strategy returning a clone of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates in a row");
    }
}

/// Uniform choice among boxed strategies ([`crate::prop_oneof!`]).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds the union; `options` must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union(options)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let i = rng.random_range(0..self.0.len());
        self.0[i].generate(rng)
    }
}

/// Strategy for any value of a type — `any::<u64>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.random::<u64>() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random::<bool>()
    }
}

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut StdRng) -> Self {
        crate::sample::Index::new(rng.random::<u64>())
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// String literals are regex strategies (see [`crate::string`]).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_tuples_map_oneof() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = (1usize..5, 0u8..3).prop_map(|(a, b)| a + b as usize);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..8).contains(&v));
        }
        let u = crate::prop_oneof![Just(1u8), Just(2u8)];
        for _ in 0..50 {
            assert!(matches!(u.generate(&mut rng), 1 | 2));
        }
    }

    #[test]
    fn any_draws_full_domain() {
        let mut rng = StdRng::seed_from_u64(6);
        let bools: Vec<bool> = (0..100).map(|_| any::<bool>().generate(&mut rng)).collect();
        assert!(bools.iter().any(|&b| b) && bools.iter().any(|&b| !b));
    }
}
