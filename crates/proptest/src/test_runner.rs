//! Deterministic case runner behind the [`crate::proptest!`] macro.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of a [`crate::proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases (the only knob this stand-in has).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; generation here is cheap enough
        // to match it.
        ProptestConfig { cases: 256 }
    }
}

/// Drives the cases of one test with a per-test deterministic RNG stream.
pub struct TestRunner {
    rng: StdRng,
    remaining: u32,
    case: u32,
    name: &'static str,
}

impl TestRunner {
    /// Creates a runner whose RNG is seeded from the test name, so each
    /// test has a stable, independent stream.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner {
            rng: StdRng::seed_from_u64(seed),
            remaining: config.cases,
            case: 0,
            name,
        }
    }

    /// Advances to the next case; `false` once all cases ran.
    pub fn next_case(&mut self) -> bool {
        if self.remaining == 0 {
            return false;
        }
        self.remaining -= 1;
        self.case += 1;
        true
    }

    /// The RNG for drawing this case's inputs.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Runs one case body, labelling panics with the case number (the
    /// stand-in has no shrinking, so the case number is the repro handle).
    pub fn run_case(&mut self, body: &mut dyn FnMut()) {
        let case = self.case;
        let name = self.name;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
        if let Err(payload) = result {
            eprintln!("proptest `{name}` failed at deterministic case {case}");
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn runner_is_deterministic_per_name() {
        let mut a = TestRunner::new(ProptestConfig::with_cases(4), "t");
        let mut b = TestRunner::new(ProptestConfig::with_cases(4), "t");
        assert_eq!(a.rng().random::<u64>(), b.rng().random::<u64>());
        let mut c = TestRunner::new(ProptestConfig::with_cases(4), "other");
        assert_ne!(
            TestRunner::new(ProptestConfig::with_cases(4), "t").rng().random::<u64>(),
            c.rng().random::<u64>()
        );
    }

    #[test]
    fn case_counting() {
        let mut r = TestRunner::new(ProptestConfig::with_cases(3), "n");
        let mut n = 0;
        while r.next_case() {
            n += 1;
        }
        assert_eq!(n, 3);
    }
}
