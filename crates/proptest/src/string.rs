//! Regex-subset string generation backing `impl Strategy for &str`.
//!
//! Supported syntax: literal characters, `\\`-escapes, `.` (printable
//! ASCII except newline), character classes `[a-z0-9_]` (ranges and
//! literal members), groups with alternation `(a|bc)`, and the
//! quantifiers `?`, `*`, `+`, `{m}`, `{m,n}`. Unbounded quantifiers are
//! capped at 8 repetitions. Anything outside this subset panics at
//! strategy-construction time so a typo fails loudly, not silently.

use rand::rngs::StdRng;
use rand::Rng;

/// Cap for `*` and `+`, which have no upper bound in the pattern.
const UNBOUNDED_CAP: usize = 8;

#[derive(Debug, Clone)]
enum Node {
    Literal(char),
    /// `.` — any printable ASCII character except newline.
    AnyChar,
    /// Character class as inclusive ranges (single members are `(c, c)`).
    Class(Vec<(char, char)>),
    /// Group alternatives, each alternative a sequence.
    Group(Vec<Vec<Node>>),
    /// `node{min,max}` with `max` inclusive.
    Repeat(Box<Node>, usize, usize),
}

/// Generates one string matching `pattern`.
///
/// # Panics
/// Panics when `pattern` uses regex syntax outside the supported subset.
pub fn generate_matching(pattern: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut rest: &[char] = &chars;
    let nodes = parse_sequence(&mut rest, pattern);
    assert!(rest.is_empty(), "unbalanced ')' or '|' in pattern {pattern:?}");
    let mut out = String::new();
    for node in &nodes {
        emit(node, rng, &mut out);
    }
    out
}

fn emit(node: &Node, rng: &mut StdRng, out: &mut String) {
    match node {
        Node::Literal(c) => out.push(*c),
        Node::AnyChar => {
            // 0x20..=0x7E: printable ASCII, newline excluded like regex `.`.
            out.push(char::from(rng.random_range(0x20u8..0x7F)));
        }
        Node::Class(ranges) => {
            let total: u32 = ranges.iter().map(|&(a, b)| b as u32 - a as u32 + 1).sum();
            let mut pick = rng.random_range(0..total);
            for &(a, b) in ranges {
                let span = b as u32 - a as u32 + 1;
                if pick < span {
                    out.push(char::from_u32(a as u32 + pick).expect("class range is ASCII"));
                    return;
                }
                pick -= span;
            }
            unreachable!("pick < total by construction");
        }
        Node::Group(alts) => {
            let alt = &alts[rng.random_range(0..alts.len())];
            for n in alt {
                emit(n, rng, out);
            }
        }
        Node::Repeat(inner, min, max) => {
            let n = rng.random_range(*min..max + 1);
            for _ in 0..n {
                emit(inner, rng, out);
            }
        }
    }
}

/// Parses a sequence until end-of-input or an unconsumed `)` / `|`.
fn parse_sequence(chars: &mut &[char], pattern: &str) -> Vec<Node> {
    let mut seq = Vec::new();
    while let Some(&c) = chars.first() {
        if c == ')' || c == '|' {
            break;
        }
        *chars = &chars[1..];
        let node = match c {
            '.' => Node::AnyChar,
            '\\' => {
                let &esc = chars
                    .first()
                    .unwrap_or_else(|| panic!("trailing backslash in pattern {pattern:?}"));
                *chars = &chars[1..];
                match esc {
                    'n' => Node::Literal('\n'),
                    't' => Node::Literal('\t'),
                    _ => Node::Literal(esc),
                }
            }
            '[' => Node::Class(parse_class(chars, pattern)),
            '(' => {
                let mut alts = vec![parse_sequence(chars, pattern)];
                while chars.first() == Some(&'|') {
                    *chars = &chars[1..];
                    alts.push(parse_sequence(chars, pattern));
                }
                if chars.first() != Some(&')') {
                    panic!("unclosed group in pattern {pattern:?}");
                }
                *chars = &chars[1..];
                Node::Group(alts)
            }
            '*' | '+' | '?' | '{' => panic!("dangling quantifier {c:?} in pattern {pattern:?}"),
            c => Node::Literal(c),
        };
        seq.push(apply_quantifier(node, chars, pattern));
    }
    seq
}

fn apply_quantifier(node: Node, chars: &mut &[char], pattern: &str) -> Node {
    let (min, max) = match chars.first() {
        Some('?') => (0, 1),
        Some('*') => (0, UNBOUNDED_CAP),
        Some('+') => (1, UNBOUNDED_CAP),
        Some('{') => {
            *chars = &chars[1..];
            let close = chars
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed {{...}} in pattern {pattern:?}"));
            let body: String = chars[..close].iter().collect();
            *chars = &chars[close..];
            let parse = |s: &str| -> usize {
                s.parse()
                    .unwrap_or_else(|_| panic!("bad repetition {body:?} in pattern {pattern:?}"))
            };
            match body.split_once(',') {
                None => (parse(&body), parse(&body)),
                Some((lo, hi)) => (parse(lo), parse(hi)),
            }
        }
        _ => return node,
    };
    *chars = &chars[1..];
    Node::Repeat(Box::new(node), min, max)
}

fn parse_class(chars: &mut &[char], pattern: &str) -> Vec<(char, char)> {
    let mut ranges = Vec::new();
    loop {
        let &c = chars
            .first()
            .unwrap_or_else(|| panic!("unclosed class in pattern {pattern:?}"));
        *chars = &chars[1..];
        match c {
            ']' if !ranges.is_empty() => return ranges,
            '^' if ranges.is_empty() => panic!("negated classes unsupported: {pattern:?}"),
            '\\' => {
                let &esc = chars
                    .first()
                    .unwrap_or_else(|| panic!("trailing backslash in pattern {pattern:?}"));
                *chars = &chars[1..];
                ranges.push((esc, esc));
            }
            c => {
                // Range like `a-z` (a bare `-` before `]` is a literal).
                if chars.first() == Some(&'-') && chars.get(1).is_some_and(|&n| n != ']') {
                    let hi = chars[1];
                    assert!(c <= hi, "inverted class range in pattern {pattern:?}");
                    *chars = &chars[2..];
                    ranges.push((c, hi));
                } else {
                    ranges.push((c, c));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;
    use rand::SeedableRng;

    #[test]
    fn dot_with_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = ".{0,200}".generate(&mut rng);
            assert!(s.len() <= 200);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn bench_statement_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        let pat = "[A-Za-z][A-Za-z0-9]{0,4} = (AND|NOT|DFF|NOR|FROB)\\([A-Za-z][A-Za-z0-9]{0,4}(, [A-Za-z][A-Za-z0-9]{0,4})?\\)";
        for _ in 0..100 {
            let s = pat.generate(&mut rng);
            assert!(s.contains(" = "), "{s:?}");
            assert!(s.contains('(') && s.ends_with(')'), "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_alphabetic(), "{s:?}");
        }
    }

    #[test]
    fn classes_escapes_and_quantifiers() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let s = "# [a-z ]{0,10}".generate(&mut rng);
            assert!(s.starts_with("# "), "{s:?}");
            assert!(s.len() <= 12);
            let t = "INPUT\\([A-Za-z][A-Za-z0-9]{0,4}\\)".generate(&mut rng);
            assert!(t.starts_with("INPUT(") && t.ends_with(')'), "{t:?}");
            let u = "ab?c+".generate(&mut rng);
            assert!(u.starts_with('a') && u.contains('c'), "{u:?}");
        }
    }

    #[test]
    #[should_panic(expected = "negated")]
    fn unsupported_syntax_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = "[^a]".generate(&mut rng);
    }
}
