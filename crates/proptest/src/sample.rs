//! Sampling helpers (`prop::sample::Index`).

/// An index into a collection whose size is only known inside the test
/// body — draw one with `any::<prop::sample::Index>()` and resolve it with
/// [`Index::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    pub(crate) fn new(raw: u64) -> Self {
        Index(raw)
    }

    /// Resolves against a collection of `len` elements (`len` must be
    /// nonzero, as in the real crate).
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        (self.0 % len as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_into_range() {
        let i = Index::new(u64::MAX);
        assert!(i.index(7) < 7);
        assert_eq!(Index::new(9).index(5), 4);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_len_panics() {
        let _ = Index::new(0).index(0);
    }
}
