//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// A length specification: an exact size or a half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length is
/// drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.random_range(self.size.min..self.size.max_exclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn exact_and_ranged_lengths() {
        let mut rng = StdRng::seed_from_u64(3);
        let exact = vec(0u8..3, 64);
        assert_eq!(exact.generate(&mut rng).len(), 64);
        let ranged = vec(0u8..3, 1..5);
        for _ in 0..50 {
            let v = ranged.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|&b| b < 3));
        }
    }
}
