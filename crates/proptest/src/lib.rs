//! Minimal vendored stand-in for the `proptest` crate.
//!
//! The build environment has no crates-registry access, so the workspace
//! vendors the slice of proptest it uses: the [`Strategy`] abstraction
//! (ranges, tuples, [`strategy::Just`], `prop_map`, [`prop_oneof!`],
//! [`collection::vec`], [`sample::Index`], regex-subset string strategies)
//! and the [`proptest!`] / `prop_assert*` / [`prop_assume!`] macros.
//!
//! Differences from the real crate: no shrinking (a failing case reports
//! its deterministic case number instead of a minimized input), and string
//! strategies implement a pragmatic regex subset (literals, classes,
//! groups, alternation, `.`, `?`, `*`, `+`, `{m,n}`) sufficient for the
//! workspace's parser-fuzzing patterns. Runs are fully deterministic: the
//! RNG stream is derived from the test name, so failures reproduce.

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The `prop` namespace of the real crate (`prop::sample::Index` etc.).
pub mod prop {
    pub use crate::sample;
}

/// The conventional glob import: strategies, config, macros.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Defines deterministic randomized tests over strategy-drawn inputs.
///
/// Supports the subset of the real macro's grammar the workspace uses:
/// an optional `#![proptest_config(expr)]` header followed by `#[test]`
/// functions whose arguments are `name in strategy` patterns.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner =
                    $crate::test_runner::TestRunner::new(config, stringify!($name));
                while runner.next_case() {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, runner.rng());)*
                    // One closure per case so `prop_assume!` can bail out
                    // with a plain `return`.
                    let mut case = || -> () { $body };
                    runner.run_case(&mut case);
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// `assert!` inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its precondition does not hold.
///
/// Expands to an early `return` from the per-case closure, so it is only
/// valid inside a [`proptest!`] body (like the real macro).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
