//! Minimal vendored stand-in for the `criterion` benchmarking crate.
//!
//! The build environment has no crates-registry access, so this shim
//! provides just enough API for the workspace's `benches/` to compile and
//! run: [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is intentionally simple — each benchmark runs its warm-up
//! budget, then times `sample_size` batches within the measurement budget
//! and reports the median per-iteration wall time. No statistics, plots,
//! or baselines; the numbers are indicative, not criterion-grade.

use std::time::{Duration, Instant};

/// Top-level benchmark driver handed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            warm_up_time: Duration::from_secs(1),
            measurement_time: Duration::from_secs(3),
            _criterion: self,
        }
    }
}

/// A named group sharing sample-count and timing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up budget before timing starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the overall measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark and prints its median per-iteration time.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };

        // Warm-up: run until the budget is spent, tracking how many
        // iterations fit so the timed samples use a sensible batch size.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time {
            bencher.iters = 1;
            f(&mut bencher);
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;

        // Aim each sample at ~1/sample_size of the measurement budget.
        let target = self.measurement_time / self.sample_size as u32;
        let batch = if per_iter.is_zero() {
            1
        } else {
            (target.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };

        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        let measure_start = Instant::now();
        for _ in 0..self.sample_size {
            bencher.iters = batch;
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            samples.push(bencher.elapsed / batch as u32);
            if measure_start.elapsed() > self.measurement_time * 2 {
                break; // hard stop: never exceed twice the budget
            }
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        println!(
            "{}/{}: median {:?} over {} samples of {} iters",
            self.name,
            id,
            median,
            samples.len(),
            batch
        );
        self
    }

    /// Ends the group (a no-op here; kept for API parity).
    pub fn finish(self) {}
}

/// Times closures on behalf of one benchmark sample.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed += start.elapsed();
    }

    /// Times `routine` with per-iteration setup excluded from the timing.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }
}

/// Batch-size hint for [`Bencher::iter_batched`] (ignored by the shim).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Re-export matching the real crate's `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a benchmark group function calling each target in turn.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(5));
        let mut calls = 0u64;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
