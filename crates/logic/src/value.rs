//! The three-valued signal domain.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};

/// A three-valued logic value: `0`, `1`, or unknown (`X`).
///
/// `X` models the pessimistic "could be either" value used by conventional
/// three-valued simulation of synchronous sequential circuits. The ordering of
/// information is the flat lattice `X < {Zero, One}`: an `X` may later be
/// *refined* to a binary value, but a binary value may never change.
///
/// # Example
///
/// ```
/// use moa_logic::V3;
///
/// assert_eq!(V3::Zero & V3::X, V3::Zero); // 0 is controlling for AND
/// assert_eq!(V3::One & V3::X, V3::X);
/// assert_eq!(!V3::X, V3::X);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum V3 {
    /// Logic zero.
    Zero,
    /// Logic one.
    One,
    /// Unknown / unspecified.
    #[default]
    X,
}

impl V3 {
    /// Returns `true` if the value is binary (`Zero` or `One`).
    #[inline]
    pub fn is_specified(self) -> bool {
        !matches!(self, V3::X)
    }

    /// Returns the binary value, or `None` for `X`.
    #[inline]
    pub fn to_bool(self) -> Option<bool> {
        match self {
            V3::Zero => Some(false),
            V3::One => Some(true),
            V3::X => None,
        }
    }

    /// Converts a binary value into the corresponding `V3`.
    #[inline]
    pub fn from_bool(b: bool) -> Self {
        if b {
            V3::One
        } else {
            V3::Zero
        }
    }

    /// Returns `true` if the two values are *compatible*, i.e. not two
    /// different binary values. `X` is compatible with everything.
    #[inline]
    pub fn compatible(self, other: V3) -> bool {
        self == other || self == V3::X || other == V3::X
    }

    /// Returns `true` if the two values are specified to *opposite* binary
    /// values — the condition under which a fault-free / faulty output pair
    /// constitutes a detection.
    #[inline]
    pub fn conflicts(self, other: V3) -> bool {
        !self.compatible(other)
    }

    /// Refines `self` with `other` on the information lattice.
    ///
    /// Returns the more specified of the two values, or `None` if they are two
    /// different binary values (a conflict).
    #[inline]
    pub fn merge(self, other: V3) -> Option<V3> {
        match (self, other) {
            (V3::X, v) | (v, V3::X) => Some(v),
            (a, b) if a == b => Some(a),
            _ => None,
        }
    }

    /// Conditionally inverts a value: `X` stays `X`.
    #[inline]
    #[must_use]
    pub fn invert_if(self, invert: bool) -> V3 {
        if invert {
            !self
        } else {
            self
        }
    }

    /// The single character used in sequence displays: `'0'`, `'1'` or `'x'`.
    #[inline]
    pub fn as_char(self) -> char {
        match self {
            V3::Zero => '0',
            V3::One => '1',
            V3::X => 'x',
        }
    }

    /// Parses a single character (`0`, `1`, `x` or `X`).
    #[inline]
    pub fn from_char(c: char) -> Option<V3> {
        match c {
            '0' => Some(V3::Zero),
            '1' => Some(V3::One),
            'x' | 'X' => Some(V3::X),
            _ => None,
        }
    }
}

impl From<bool> for V3 {
    #[inline]
    fn from(b: bool) -> Self {
        V3::from_bool(b)
    }
}

impl fmt::Display for V3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_char())
    }
}

impl Not for V3 {
    type Output = V3;

    #[inline]
    fn not(self) -> V3 {
        match self {
            V3::Zero => V3::One,
            V3::One => V3::Zero,
            V3::X => V3::X,
        }
    }
}

impl BitAnd for V3 {
    type Output = V3;

    #[inline]
    fn bitand(self, rhs: V3) -> V3 {
        match (self, rhs) {
            (V3::Zero, _) | (_, V3::Zero) => V3::Zero,
            (V3::One, V3::One) => V3::One,
            _ => V3::X,
        }
    }
}

impl BitOr for V3 {
    type Output = V3;

    #[inline]
    fn bitor(self, rhs: V3) -> V3 {
        match (self, rhs) {
            (V3::One, _) | (_, V3::One) => V3::One,
            (V3::Zero, V3::Zero) => V3::Zero,
            _ => V3::X,
        }
    }
}

impl BitXor for V3 {
    type Output = V3;

    #[inline]
    fn bitxor(self, rhs: V3) -> V3 {
        match (self.to_bool(), rhs.to_bool()) {
            (Some(a), Some(b)) => V3::from_bool(a ^ b),
            _ => V3::X,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [V3; 3] = [V3::Zero, V3::One, V3::X];

    #[test]
    fn and_truth_table() {
        assert_eq!(V3::Zero & V3::Zero, V3::Zero);
        assert_eq!(V3::Zero & V3::One, V3::Zero);
        assert_eq!(V3::Zero & V3::X, V3::Zero);
        assert_eq!(V3::One & V3::One, V3::One);
        assert_eq!(V3::One & V3::X, V3::X);
        assert_eq!(V3::X & V3::X, V3::X);
    }

    #[test]
    fn or_truth_table() {
        assert_eq!(V3::One | V3::Zero, V3::One);
        assert_eq!(V3::One | V3::X, V3::One);
        assert_eq!(V3::Zero | V3::Zero, V3::Zero);
        assert_eq!(V3::Zero | V3::X, V3::X);
        assert_eq!(V3::X | V3::X, V3::X);
    }

    #[test]
    fn xor_truth_table() {
        assert_eq!(V3::Zero ^ V3::One, V3::One);
        assert_eq!(V3::One ^ V3::One, V3::Zero);
        assert_eq!(V3::One ^ V3::X, V3::X);
        assert_eq!(V3::X ^ V3::X, V3::X);
    }

    #[test]
    fn not_is_involutive_on_binary() {
        for v in ALL {
            assert_eq!(!!v, v);
        }
        assert_eq!(!V3::Zero, V3::One);
        assert_eq!(!V3::X, V3::X);
    }

    #[test]
    fn and_or_de_morgan() {
        for a in ALL {
            for b in ALL {
                assert_eq!(!(a & b), !a | !b);
                assert_eq!(!(a | b), !a & !b);
            }
        }
    }

    #[test]
    fn merge_is_commutative_and_detects_conflicts() {
        for a in ALL {
            for b in ALL {
                assert_eq!(a.merge(b), b.merge(a));
            }
        }
        assert_eq!(V3::Zero.merge(V3::One), None);
        assert_eq!(V3::X.merge(V3::One), Some(V3::One));
        assert_eq!(V3::Zero.merge(V3::Zero), Some(V3::Zero));
    }

    #[test]
    fn compatible_and_conflicts_are_complements() {
        for a in ALL {
            for b in ALL {
                assert_eq!(a.compatible(b), !a.conflicts(b));
            }
        }
        assert!(V3::Zero.conflicts(V3::One));
        assert!(!V3::X.conflicts(V3::One));
    }

    #[test]
    fn char_round_trip() {
        for v in ALL {
            assert_eq!(V3::from_char(v.as_char()), Some(v));
        }
        assert_eq!(V3::from_char('X'), Some(V3::X));
        assert_eq!(V3::from_char('?'), None);
    }

    #[test]
    fn bool_conversions() {
        assert_eq!(V3::from(true), V3::One);
        assert_eq!(V3::from(false), V3::Zero);
        assert_eq!(V3::One.to_bool(), Some(true));
        assert_eq!(V3::X.to_bool(), None);
    }

    #[test]
    fn invert_if_matches_not() {
        for v in ALL {
            assert_eq!(v.invert_if(true), !v);
            assert_eq!(v.invert_if(false), v);
        }
    }

    #[test]
    fn default_is_unknown() {
        assert_eq!(V3::default(), V3::X);
    }
}
