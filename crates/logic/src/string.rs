//! Parsing and formatting of three-valued words like `"01x"`.
//!
//! The paper presents states and output sequences as words over `{0, 1, x}`
//! (e.g. the state `x0` or the output pattern `0x1` of Table 1); these helpers
//! are used by the examples, the experiment harnesses and the test suites.

use std::fmt;

use crate::V3;

/// Error returned by [`parse_word`] for characters outside `{0, 1, x, X}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseWordError {
    position: usize,
    character: char,
}

impl ParseWordError {
    /// Byte-position independent character index of the offending character.
    pub fn position(&self) -> usize {
        self.position
    }

    /// The offending character.
    pub fn character(&self) -> char {
        self.character
    }
}

impl fmt::Display for ParseWordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid three-valued digit `{}` at position {}",
            self.character, self.position
        )
    }
}

impl std::error::Error for ParseWordError {}

/// Parses a word over `{0, 1, x}` into a vector of values.
///
/// # Errors
///
/// Returns [`ParseWordError`] if a character is not one of `0`, `1`, `x`, `X`.
///
/// # Example
///
/// ```
/// use moa_logic::{parse_word, V3};
///
/// assert_eq!(parse_word("0x1")?, vec![V3::Zero, V3::X, V3::One]);
/// # Ok::<(), moa_logic::ParseWordError>(())
/// ```
pub fn parse_word(s: &str) -> Result<Vec<V3>, ParseWordError> {
    s.chars()
        .enumerate()
        .map(|(position, character)| {
            V3::from_char(character).ok_or(ParseWordError {
                position,
                character,
            })
        })
        .collect()
}

/// Formats a slice of values as a word over `{0, 1, x}`.
///
/// # Example
///
/// ```
/// use moa_logic::{format_word, V3};
///
/// assert_eq!(format_word(&[V3::One, V3::X, V3::Zero]), "1x0");
/// ```
pub fn format_word(values: &[V3]) -> String {
    values.iter().map(|v| v.as_char()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        for word in ["", "0", "1", "x", "01x10", "xxxx"] {
            assert_eq!(format_word(&parse_word(word).unwrap()), word);
        }
    }

    #[test]
    fn upper_case_x_normalizes() {
        assert_eq!(format_word(&parse_word("0X1").unwrap()), "0x1");
    }

    #[test]
    fn error_reports_position_and_character() {
        let err = parse_word("01?x").unwrap_err();
        assert_eq!(err.position(), 2);
        assert_eq!(err.character(), '?');
        assert!(err.to_string().contains('?'));
    }
}
