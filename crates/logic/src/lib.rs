//! Three-valued logic for gate-level fault simulation.
//!
//! This crate is the logic substrate of the multiple-observation-time fault
//! simulator: it defines the three-valued signal domain ([`V3`]), the gate
//! vocabulary ([`GateKind`]), pessimistic forward evaluation ([`eval_gate`])
//! and backward justification ([`justify`]) — the two implication directions used
//! by the paper's backward-implication engine.
//!
//! # Example
//!
//! ```
//! use moa_logic::{GateKind, V3};
//!
//! // NOR(0, x) = x̄ is pessimistically X in three-valued logic …
//! assert_eq!(GateKind::Nor.eval(&[V3::Zero, V3::X]), V3::X);
//! // … but NOR(1, x) = 0 regardless of the unknown.
//! assert_eq!(GateKind::Nor.eval(&[V3::One, V3::X]), V3::Zero);
//! ```

mod eval;
mod gate;
mod justify;
mod string;
mod value;

pub use gate::{GateKind, ParseGateKindError};
pub use justify::{justify, Implication, JustifyOutcome};
pub use string::{format_word, parse_word, ParseWordError};
pub use value::V3;

pub use eval::eval_gate;
