//! Pessimistic forward evaluation of gates over three-valued inputs.

use crate::{GateKind, V3};

/// Evaluates `kind` over `inputs` in three-valued logic.
///
/// The evaluation is the standard pessimistic one: an output is `X` unless the
/// specified inputs force a binary value (a controlling value present, all
/// inputs specified, …).
///
/// # Panics
///
/// Panics if `inputs` is empty or if a unary gate receives more than one
/// input; the netlist layer validates arities at build time, so this indicates
/// a programming error.
///
/// # Example
///
/// ```
/// use moa_logic::{eval_gate, GateKind, V3};
///
/// // One controlling input decides the output even with unknowns present.
/// assert_eq!(eval_gate(GateKind::Nand, &[V3::Zero, V3::X]), V3::One);
/// assert_eq!(eval_gate(GateKind::Xor, &[V3::One, V3::X]), V3::X);
/// ```
pub fn eval_gate(kind: GateKind, inputs: &[V3]) -> V3 {
    assert!(
        kind.accepts_arity(inputs.len()),
        "gate {kind} evaluated with {} inputs",
        inputs.len()
    );
    match kind {
        GateKind::Not => !inputs[0],
        GateKind::Buf => inputs[0],
        GateKind::Xor | GateKind::Xnor => {
            let mut acc = V3::Zero;
            for &v in inputs {
                acc = acc ^ v;
            }
            acc.invert_if(kind.inverting())
        }
        GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
            let c = V3::from_bool(
                kind.controlling_value()
                    .expect("AND/OR family has a controlling value"),
            );
            let mut saw_x = false;
            for &v in inputs {
                if v == c {
                    return c.invert_if(kind.inverting());
                }
                if v == V3::X {
                    saw_x = true;
                }
            }
            if saw_x {
                V3::X
            } else {
                (!c).invert_if(kind.inverting())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: u8) -> V3 {
        match v {
            0 => V3::Zero,
            1 => V3::One,
            _ => V3::X,
        }
    }

    /// Exhaustively checks a 2-input gate against a reference closure over
    /// binary inputs, requiring the 3-valued result to be the most specified
    /// value consistent with all binary completions.
    fn check_exhaustive(kind: GateKind, reference: impl Fn(bool, bool) -> bool) {
        for i in 0..3u8 {
            for j in 0..3u8 {
                let got = eval_gate(kind, &[b(i), b(j)]);
                // Enumerate binary completions of the inputs.
                let mut results = Vec::new();
                for ci in 0..2u8 {
                    for cj in 0..2u8 {
                        if (i < 2 && ci != i) || (j < 2 && cj != j) {
                            continue;
                        }
                        results.push(reference(ci == 1, cj == 1));
                    }
                }
                let all_true = results.iter().all(|&r| r);
                let all_false = results.iter().all(|&r| !r);
                // Soundness: a specified output must agree with every completion.
                match got {
                    V3::One => assert!(all_true, "{kind} {i}{j}"),
                    V3::Zero => assert!(all_false, "{kind} {i}{j}"),
                    V3::X => {}
                }
            }
        }
    }

    #[test]
    fn two_input_gates_are_sound() {
        check_exhaustive(GateKind::And, |a, b| a && b);
        check_exhaustive(GateKind::Nand, |a, b| !(a && b));
        check_exhaustive(GateKind::Or, |a, b| a || b);
        check_exhaustive(GateKind::Nor, |a, b| !(a || b));
        check_exhaustive(GateKind::Xor, |a, b| a ^ b);
        check_exhaustive(GateKind::Xnor, |a, b| !(a ^ b));
    }

    #[test]
    fn and_family_is_exact_not_just_sound() {
        // AND with a controlling 0 is 0 even with X present.
        assert_eq!(eval_gate(GateKind::And, &[V3::X, V3::Zero, V3::X]), V3::Zero);
        assert_eq!(eval_gate(GateKind::Nand, &[V3::X, V3::Zero]), V3::One);
        assert_eq!(eval_gate(GateKind::Or, &[V3::X, V3::One]), V3::One);
        assert_eq!(eval_gate(GateKind::Nor, &[V3::One, V3::X]), V3::Zero);
        // No controlling value and an X present → X.
        assert_eq!(eval_gate(GateKind::And, &[V3::One, V3::X]), V3::X);
        assert_eq!(eval_gate(GateKind::Nor, &[V3::Zero, V3::X]), V3::X);
    }

    #[test]
    fn parity_gates() {
        assert_eq!(
            eval_gate(GateKind::Xor, &[V3::One, V3::One, V3::One]),
            V3::One
        );
        assert_eq!(eval_gate(GateKind::Xnor, &[V3::One, V3::One]), V3::One);
        assert_eq!(eval_gate(GateKind::Xor, &[V3::X, V3::Zero]), V3::X);
    }

    #[test]
    fn unary_gates() {
        assert_eq!(eval_gate(GateKind::Not, &[V3::Zero]), V3::One);
        assert_eq!(eval_gate(GateKind::Buf, &[V3::X]), V3::X);
    }

    #[test]
    fn single_input_and_or_behave_as_buffers() {
        for v in [V3::Zero, V3::One, V3::X] {
            assert_eq!(eval_gate(GateKind::And, &[v]), v);
            assert_eq!(eval_gate(GateKind::Or, &[v]), v);
            assert_eq!(eval_gate(GateKind::Nand, &[v]), !v);
            assert_eq!(eval_gate(GateKind::Nor, &[v]), !v);
        }
    }

    #[test]
    #[should_panic(expected = "evaluated with 2 inputs")]
    fn unary_gate_with_two_inputs_panics() {
        eval_gate(GateKind::Not, &[V3::Zero, V3::One]);
    }
}
