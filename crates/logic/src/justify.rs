//! Backward justification: inferring gate-input values from an output value.
//!
//! This is the outputs→inputs half of the paper's backward-implication pass.
//! Given a gate whose output is specified, [`justify`] derives the input
//! values that are *forced* by the output (and the already-specified inputs),
//! or reports a conflict when no consistent binary completion exists.

use crate::{GateKind, V3};

/// A single forced input value produced by [`justify`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Implication {
    /// Index of the input pin within the gate's input list.
    pub input: usize,
    /// The forced binary value (never `X`).
    pub value: V3,
}

/// Result of backward justification of one gate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JustifyOutcome {
    /// The output value is inconsistent with the specified inputs: no binary
    /// completion of the `X` inputs can produce it.
    Conflict,
    /// The (possibly empty) set of input values forced by the output.
    Implied(Vec<Implication>),
}

impl JustifyOutcome {
    /// Returns `true` for [`JustifyOutcome::Conflict`].
    pub fn is_conflict(&self) -> bool {
        matches!(self, JustifyOutcome::Conflict)
    }
}

/// Derives forced input values of a gate from its output value.
///
/// `output` is the current (possibly `X`) value of the gate output; `inputs`
/// are the current values of its input pins. Only refinements are returned:
/// implications are produced solely for inputs currently at `X`.
///
/// When `output` is `X` nothing can be inferred and the empty implication set
/// is returned.
///
/// # Panics
///
/// Panics if the input count is invalid for `kind` (see
/// [`GateKind::accepts_arity`]).
///
/// # Example
///
/// ```
/// use moa_logic::{justify, GateKind, Implication, JustifyOutcome, V3};
///
/// // NAND output 0 forces every input to 1.
/// let out = justify(GateKind::Nand, V3::Zero, &[V3::X, V3::X]);
/// assert_eq!(
///     out,
///     JustifyOutcome::Implied(vec![
///         Implication { input: 0, value: V3::One },
///         Implication { input: 1, value: V3::One },
///     ])
/// );
///
/// // OR output 1 with all other inputs 0 forces the last unknown to 1.
/// let out = justify(GateKind::Or, V3::One, &[V3::Zero, V3::X]);
/// assert_eq!(
///     out,
///     JustifyOutcome::Implied(vec![Implication { input: 1, value: V3::One }])
/// );
/// ```
pub fn justify(kind: GateKind, output: V3, inputs: &[V3]) -> JustifyOutcome {
    assert!(
        kind.accepts_arity(inputs.len()),
        "gate {kind} justified with {} inputs",
        inputs.len()
    );
    let Some(out) = output.to_bool() else {
        return JustifyOutcome::Implied(Vec::new());
    };

    match kind {
        GateKind::Not | GateKind::Buf => {
            let want = V3::from_bool(out).invert_if(kind.inverting());
            match inputs[0] {
                V3::X => JustifyOutcome::Implied(vec![Implication {
                    input: 0,
                    value: want,
                }]),
                v if v == want => JustifyOutcome::Implied(Vec::new()),
                _ => JustifyOutcome::Conflict,
            }
        }
        GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
            let c = kind.controlling_value().expect("controlling value");
            let cv = V3::from_bool(c);
            // Output value produced when *some* input is controlling.
            let controlled = c ^ kind.inverting();
            if out == controlled {
                justify_controlled(cv, inputs)
            } else {
                justify_noncontrolled(cv, inputs)
            }
        }
        GateKind::Xor | GateKind::Xnor => justify_parity(kind, out, inputs),
    }
}

/// Output equals the controlled value: at least one input must be at the
/// controlling value `cv`.
fn justify_controlled(cv: V3, inputs: &[V3]) -> JustifyOutcome {
    if inputs.contains(&cv) {
        return JustifyOutcome::Implied(Vec::new());
    }
    let unknowns: Vec<usize> = inputs
        .iter()
        .enumerate()
        .filter(|&(_, &v)| v == V3::X)
        .map(|(i, _)| i)
        .collect();
    match unknowns.as_slice() {
        [] => JustifyOutcome::Conflict,
        [only] => JustifyOutcome::Implied(vec![Implication {
            input: *only,
            value: cv,
        }]),
        _ => JustifyOutcome::Implied(Vec::new()),
    }
}

/// Output equals the non-controlled value: every input must be at the
/// non-controlling value `!cv`.
fn justify_noncontrolled(cv: V3, inputs: &[V3]) -> JustifyOutcome {
    let mut implied = Vec::new();
    for (i, &v) in inputs.iter().enumerate() {
        if v == cv {
            return JustifyOutcome::Conflict;
        }
        if v == V3::X {
            implied.push(Implication {
                input: i,
                value: !cv,
            });
        }
    }
    JustifyOutcome::Implied(implied)
}

/// XOR/XNOR: with at most one unknown input the parity pins it down; with all
/// inputs specified the parity must match.
fn justify_parity(kind: GateKind, out: bool, inputs: &[V3]) -> JustifyOutcome {
    let mut parity = kind.inverting() ^ out;
    let mut unknown = None;
    for (i, &v) in inputs.iter().enumerate() {
        match v.to_bool() {
            Some(b) => parity ^= b,
            None => {
                if unknown.replace(i).is_some() {
                    // Two or more unknowns: nothing is forced.
                    return JustifyOutcome::Implied(Vec::new());
                }
            }
        }
    }
    match unknown {
        Some(i) => JustifyOutcome::Implied(vec![Implication {
            input: i,
            value: V3::from_bool(parity),
        }]),
        None if !parity => JustifyOutcome::Implied(Vec::new()),
        None => JustifyOutcome::Conflict,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval_gate;

    fn implied(pairs: &[(usize, V3)]) -> JustifyOutcome {
        JustifyOutcome::Implied(
            pairs
                .iter()
                .map(|&(input, value)| Implication { input, value })
                .collect(),
        )
    }

    #[test]
    fn unknown_output_implies_nothing() {
        for kind in GateKind::ALL {
            let inputs = if kind.is_unary() {
                vec![V3::X]
            } else {
                vec![V3::X, V3::One]
            };
            assert_eq!(justify(kind, V3::X, &inputs), implied(&[]));
        }
    }

    #[test]
    fn inverter_justification() {
        assert_eq!(
            justify(GateKind::Not, V3::One, &[V3::X]),
            implied(&[(0, V3::Zero)])
        );
        assert_eq!(justify(GateKind::Not, V3::One, &[V3::Zero]), implied(&[]));
        assert!(justify(GateKind::Not, V3::One, &[V3::One]).is_conflict());
        assert_eq!(
            justify(GateKind::Buf, V3::Zero, &[V3::X]),
            implied(&[(0, V3::Zero)])
        );
    }

    #[test]
    fn and_output_one_forces_all_inputs() {
        assert_eq!(
            justify(GateKind::And, V3::One, &[V3::X, V3::X, V3::One]),
            implied(&[(0, V3::One), (1, V3::One)])
        );
        assert!(justify(GateKind::And, V3::One, &[V3::Zero, V3::X]).is_conflict());
    }

    #[test]
    fn and_output_zero_with_single_candidate() {
        // All other inputs are non-controlling, one X: it must be 0.
        assert_eq!(
            justify(GateKind::And, V3::Zero, &[V3::One, V3::X]),
            implied(&[(1, V3::Zero)])
        );
        // A controlling input already present: nothing further forced.
        assert_eq!(
            justify(GateKind::And, V3::Zero, &[V3::Zero, V3::X]),
            implied(&[])
        );
        // Two X inputs: nothing forced.
        assert_eq!(
            justify(GateKind::And, V3::Zero, &[V3::X, V3::X]),
            implied(&[])
        );
        // No X and no controlling input: conflict.
        assert!(justify(GateKind::And, V3::Zero, &[V3::One, V3::One]).is_conflict());
    }

    #[test]
    fn nor_output_zero_with_single_candidate() {
        assert_eq!(
            justify(GateKind::Nor, V3::Zero, &[V3::Zero, V3::X]),
            implied(&[(1, V3::One)])
        );
        assert_eq!(
            justify(GateKind::Nor, V3::One, &[V3::X, V3::X]),
            implied(&[(0, V3::Zero), (1, V3::Zero)])
        );
        assert!(justify(GateKind::Nor, V3::One, &[V3::One, V3::X]).is_conflict());
    }

    #[test]
    fn xor_with_one_unknown_is_pinned() {
        assert_eq!(
            justify(GateKind::Xor, V3::One, &[V3::One, V3::X]),
            implied(&[(1, V3::Zero)])
        );
        assert_eq!(
            justify(GateKind::Xnor, V3::One, &[V3::One, V3::X]),
            implied(&[(1, V3::One)])
        );
        assert_eq!(
            justify(GateKind::Xor, V3::One, &[V3::X, V3::X]),
            implied(&[])
        );
        assert!(justify(GateKind::Xor, V3::One, &[V3::One, V3::One]).is_conflict());
        assert_eq!(
            justify(GateKind::Xor, V3::Zero, &[V3::One, V3::One]),
            implied(&[])
        );
    }

    /// Justification must be sound: applying the implications and then
    /// forward-evaluating must be consistent with the requested output, for
    /// every gate kind and every 3-input value combination.
    #[test]
    fn justify_is_sound_against_eval_exhaustively() {
        let vals = [V3::Zero, V3::One, V3::X];
        for kind in GateKind::ALL {
            let arities: &[usize] = if kind.is_unary() { &[1] } else { &[1, 2, 3] };
            for &n in arities {
                let mut idx = vec![0usize; n];
                loop {
                    let inputs: Vec<V3> = idx.iter().map(|&i| vals[i]).collect();
                    for out in [V3::Zero, V3::One] {
                        match justify(kind, out, &inputs) {
                            JustifyOutcome::Conflict => {
                                // No binary completion may produce `out`.
                                assert!(
                                    !completions(&inputs)
                                        .iter()
                                        .any(|c| eval_gate(kind, c) == out),
                                    "{kind} {inputs:?} -> {out} wrongly conflicted"
                                );
                            }
                            JustifyOutcome::Implied(imps) => {
                                let mut refined = inputs.clone();
                                for imp in &imps {
                                    assert_eq!(refined[imp.input], V3::X);
                                    refined[imp.input] = imp.value;
                                }
                                // Every completion of the refined inputs that
                                // produces a binary output must produce `out`…
                                // unless no completion produces `out` at all
                                // (justify is allowed to be incomplete, not
                                // unsound): each implication must be forced.
                                for imp in &imps {
                                    let mut flipped = inputs.clone();
                                    flipped[imp.input] = !imp.value;
                                    assert!(
                                        !completions(&flipped)
                                            .iter()
                                            .any(|c| eval_gate(kind, c) == out),
                                        "{kind} {inputs:?} -> {out}: implication {imp:?} not forced"
                                    );
                                }
                            }
                        }
                    }
                    // Advance the odometer.
                    let mut k = 0;
                    loop {
                        if k == n {
                            break;
                        }
                        idx[k] += 1;
                        if idx[k] < vals.len() {
                            break;
                        }
                        idx[k] = 0;
                        k += 1;
                    }
                    if k == n {
                        break;
                    }
                }
            }
        }
    }

    /// All binary completions of a partially specified input vector.
    fn completions(inputs: &[V3]) -> Vec<Vec<V3>> {
        let mut out = vec![Vec::new()];
        for &v in inputs {
            let choices: &[V3] = match v {
                V3::X => &[V3::Zero, V3::One],
                other => {
                    for c in &mut out {
                        c.push(other);
                    }
                    continue;
                }
            };
            let mut next = Vec::with_capacity(out.len() * 2);
            for c in &out {
                for &ch in choices {
                    let mut c2 = c.clone();
                    c2.push(ch);
                    next.push(c2);
                }
            }
            out = next;
        }
        out
    }
}
