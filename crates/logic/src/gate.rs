//! The gate vocabulary shared by the netlist, the simulator and the
//! implication engine.

use std::fmt;
use std::str::FromStr;

use crate::eval::eval_gate;
use crate::V3;

/// The combinational gate kinds of the ISCAS-89 benchmark netlists.
///
/// `Not` and `Buf` take exactly one input; the remaining kinds take one or
/// more inputs (a one-input AND/OR behaves as a buffer, a one-input NAND/NOR
/// as an inverter, matching common `.bench` files).
///
/// # Example
///
/// ```
/// use moa_logic::{GateKind, V3};
///
/// let kind: GateKind = "NAND".parse()?;
/// assert_eq!(kind.eval(&[V3::One, V3::One]), V3::Zero);
/// # Ok::<(), moa_logic::ParseGateKindError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Logical AND.
    And,
    /// Inverted AND.
    Nand,
    /// Logical OR.
    Or,
    /// Inverted OR.
    Nor,
    /// Exclusive OR (odd parity).
    Xor,
    /// Inverted exclusive OR (even parity).
    Xnor,
    /// Inverter.
    Not,
    /// Buffer.
    Buf,
}

impl GateKind {
    /// All gate kinds, for exhaustive iteration in tests and generators.
    pub const ALL: [GateKind; 8] = [
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Not,
        GateKind::Buf,
    ];

    /// Evaluates the gate over three-valued inputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty, or has length ≠ 1 for [`GateKind::Not`] /
    /// [`GateKind::Buf`].
    #[inline]
    pub fn eval(self, inputs: &[V3]) -> V3 {
        eval_gate(self, inputs)
    }

    /// The controlling input value of the gate, if it has one.
    ///
    /// An input at the controlling value determines the output regardless of
    /// the other inputs (`0` for AND/NAND, `1` for OR/NOR). XOR-family gates
    /// and single-input gates have no controlling value.
    #[inline]
    pub fn controlling_value(self) -> Option<bool> {
        match self {
            GateKind::And | GateKind::Nand => Some(false),
            GateKind::Or | GateKind::Nor => Some(true),
            _ => None,
        }
    }

    /// Whether the gate inverts: the output produced when *no* input is at
    /// the controlling value is the inversion flag applied to the
    /// non-controlled result.
    #[inline]
    pub fn inverting(self) -> bool {
        matches!(
            self,
            GateKind::Nand | GateKind::Nor | GateKind::Xnor | GateKind::Not
        )
    }

    /// `true` for the single-input kinds `Not` and `Buf`.
    #[inline]
    pub fn is_unary(self) -> bool {
        matches!(self, GateKind::Not | GateKind::Buf)
    }

    /// `true` for the parity kinds `Xor` and `Xnor`.
    #[inline]
    pub fn is_parity(self) -> bool {
        matches!(self, GateKind::Xor | GateKind::Xnor)
    }

    /// Validates an input count for this gate kind.
    #[inline]
    pub fn accepts_arity(self, n: usize) -> bool {
        if self.is_unary() {
            n == 1
        } else {
            n >= 1
        }
    }

    /// The canonical upper-case name used in `.bench` files.
    pub fn name(self) -> &'static str {
        match self {
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
            GateKind::Not => "NOT",
            GateKind::Buf => "BUFF",
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown gate-kind name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseGateKindError {
    name: String,
}

impl ParseGateKindError {
    /// The offending name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for ParseGateKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown gate kind `{}`", self.name)
    }
}

impl std::error::Error for ParseGateKindError {}

impl FromStr for GateKind {
    type Err = ParseGateKindError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "AND" => Ok(GateKind::And),
            "NAND" => Ok(GateKind::Nand),
            "OR" => Ok(GateKind::Or),
            "NOR" => Ok(GateKind::Nor),
            "XOR" => Ok(GateKind::Xor),
            "XNOR" => Ok(GateKind::Xnor),
            "NOT" | "INV" => Ok(GateKind::Not),
            "BUF" | "BUFF" => Ok(GateKind::Buf),
            _ => Err(ParseGateKindError { name: s.to_owned() }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trip() {
        for kind in GateKind::ALL {
            assert_eq!(kind.name().parse::<GateKind>().unwrap(), kind);
            assert_eq!(
                kind.name().to_lowercase().parse::<GateKind>().unwrap(),
                kind
            );
        }
    }

    #[test]
    fn parse_aliases() {
        assert_eq!("INV".parse::<GateKind>().unwrap(), GateKind::Not);
        assert_eq!("BUF".parse::<GateKind>().unwrap(), GateKind::Buf);
        assert_eq!("BUFF".parse::<GateKind>().unwrap(), GateKind::Buf);
    }

    #[test]
    fn parse_error_keeps_name() {
        let err = "DFFX".parse::<GateKind>().unwrap_err();
        assert_eq!(err.name(), "DFFX");
        assert!(err.to_string().contains("DFFX"));
    }

    #[test]
    fn controlling_values() {
        assert_eq!(GateKind::And.controlling_value(), Some(false));
        assert_eq!(GateKind::Nand.controlling_value(), Some(false));
        assert_eq!(GateKind::Or.controlling_value(), Some(true));
        assert_eq!(GateKind::Nor.controlling_value(), Some(true));
        assert_eq!(GateKind::Xor.controlling_value(), None);
        assert_eq!(GateKind::Not.controlling_value(), None);
    }

    #[test]
    fn inversion_flags() {
        assert!(GateKind::Nand.inverting());
        assert!(GateKind::Nor.inverting());
        assert!(GateKind::Xnor.inverting());
        assert!(GateKind::Not.inverting());
        assert!(!GateKind::And.inverting());
        assert!(!GateKind::Buf.inverting());
    }

    #[test]
    fn arity_rules() {
        assert!(GateKind::Not.accepts_arity(1));
        assert!(!GateKind::Not.accepts_arity(2));
        assert!(GateKind::And.accepts_arity(1));
        assert!(GateKind::And.accepts_arity(5));
        assert!(!GateKind::And.accepts_arity(0));
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(GateKind::Xnor.to_string(), "XNOR");
        assert_eq!(GateKind::Buf.to_string(), "BUFF");
    }
}
