//! Property-based tests for the three-valued logic substrate.

use proptest::prelude::*;

use moa_logic::{eval_gate, justify, GateKind, JustifyOutcome, V3};

fn arb_v3() -> impl Strategy<Value = V3> {
    prop_oneof![Just(V3::Zero), Just(V3::One), Just(V3::X)]
}

fn arb_kind() -> impl Strategy<Value = GateKind> {
    prop_oneof![
        Just(GateKind::And),
        Just(GateKind::Nand),
        Just(GateKind::Or),
        Just(GateKind::Nor),
        Just(GateKind::Xor),
        Just(GateKind::Xnor),
    ]
}

/// All binary completions of a partially specified vector.
fn completions(inputs: &[V3]) -> Vec<Vec<V3>> {
    let mut out = vec![Vec::new()];
    for &v in inputs {
        let choices: Vec<V3> = match v {
            V3::X => vec![V3::Zero, V3::One],
            other => vec![other],
        };
        let mut next = Vec::with_capacity(out.len() * choices.len());
        for c in &out {
            for &ch in &choices {
                let mut c2 = c.clone();
                c2.push(ch);
                next.push(c2);
            }
        }
        out = next;
    }
    out
}

proptest! {
    /// Monotonicity of evaluation on the information lattice: refining an
    /// input never *changes* a specified output, only specifies more.
    #[test]
    fn eval_is_monotone(
        kind in arb_kind(),
        inputs in proptest::collection::vec(arb_v3(), 1..5),
        position in any::<prop::sample::Index>(),
        refined in any::<bool>(),
    ) {
        let before = eval_gate(kind, &inputs);
        let mut refined_inputs = inputs.clone();
        let i = position.index(refined_inputs.len());
        if refined_inputs[i] == V3::X {
            refined_inputs[i] = V3::from_bool(refined);
        }
        let after = eval_gate(kind, &refined_inputs);
        if before.is_specified() {
            prop_assert_eq!(before, after);
        }
    }

    /// Evaluation is exactly the consensus of the binary completions: the
    /// output is binary iff every completion agrees, except where the
    /// controlling-value shortcut makes three-valued logic *exact* — so we
    /// assert soundness (specified ⇒ all completions agree) and completeness
    /// for the AND/OR family (all agree ⇒ specified).
    #[test]
    fn eval_matches_completion_consensus(
        kind in arb_kind(),
        inputs in proptest::collection::vec(arb_v3(), 1..4),
    ) {
        let out = eval_gate(kind, &inputs);
        let results: Vec<V3> = completions(&inputs)
            .iter()
            .map(|c| eval_gate(kind, c))
            .collect();
        match out.to_bool() {
            Some(b) => prop_assert!(results.iter().all(|&r| r == V3::from_bool(b))),
            None => {
                // Three-valued logic can be pessimistic only for parity
                // gates; AND/OR-family evaluation is exact.
                if !kind.is_parity() {
                    prop_assert!(
                        results.contains(&V3::Zero)
                            && results.contains(&V3::One)
                    );
                }
            }
        }
    }

    /// Justification never invents: every implication it emits is forced
    /// (flipping it makes the requested output unreachable), and conflicts
    /// mean the output is unreachable outright.
    #[test]
    fn justify_only_emits_forced_implications(
        kind in arb_kind(),
        inputs in proptest::collection::vec(arb_v3(), 1..4),
        want in any::<bool>(),
    ) {
        let out = V3::from_bool(want);
        match justify(kind, out, &inputs) {
            JustifyOutcome::Conflict => {
                prop_assert!(
                    !completions(&inputs).iter().any(|c| eval_gate(kind, c) == out)
                );
            }
            JustifyOutcome::Implied(imps) => {
                for imp in imps {
                    prop_assert_eq!(inputs[imp.input], V3::X, "only X pins are implied");
                    let mut flipped = inputs.clone();
                    flipped[imp.input] = !imp.value;
                    prop_assert!(
                        !completions(&flipped).iter().any(|c| eval_gate(kind, c) == out),
                        "implication was not forced"
                    );
                }
            }
        }
    }

    /// Merge is the join of the information lattice: commutative, idempotent,
    /// with X as the identity.
    #[test]
    fn merge_lattice_laws(a in arb_v3(), b in arb_v3()) {
        prop_assert_eq!(a.merge(b), b.merge(a));
        prop_assert_eq!(a.merge(a), Some(a));
        prop_assert_eq!(a.merge(V3::X), Some(a));
    }

    /// De Morgan over the whole domain, any width.
    #[test]
    fn de_morgan_any_width(inputs in proptest::collection::vec(arb_v3(), 1..6)) {
        let nand = eval_gate(GateKind::Nand, &inputs);
        let negated: Vec<V3> = inputs.iter().map(|&v| !v).collect();
        let or = eval_gate(GateKind::Or, &negated);
        prop_assert_eq!(nand, or);
    }
}
