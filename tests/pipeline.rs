//! Cross-crate pipeline invariants: campaigns, statuses, determinism and the
//! relation between the baseline and the proposed procedure.

use moa_repro::circuits::suite::{entry, suite};
use moa_repro::circuits::synth::{generate, SynthSpec};
use moa_repro::circuits::teaching::resettable_toggle;
use moa_repro::core::{
    run_campaign, simulate_fault, CampaignOptions, FaultStatus, MoaOptions,
};
use moa_repro::netlist::{collapse_faults, full_fault_list};
use moa_repro::sim::{simulate, TestSequence};
use moa_repro::tpg::random_sequence;

#[test]
fn campaign_statuses_partition_the_fault_list() {
    let circuit = generate(&SynthSpec::new("part", 5, 3, 6, 60, 7));
    let seq = random_sequence(&circuit, 32, 9);
    let faults = collapse_faults(&circuit, &full_fault_list(&circuit))
        .representatives()
        .to_vec();
    let result = run_campaign(&circuit, &seq, &faults, &CampaignOptions::new());
    assert_eq!(result.statuses.len(), faults.len());
    let conventional = result
        .statuses
        .iter()
        .filter(|s| matches!(s, FaultStatus::DetectedConventional(_)))
        .count();
    let skipped = result
        .statuses
        .iter()
        .filter(|s| matches!(s, FaultStatus::SkippedConditionC))
        .count();
    let extra = result.statuses.iter().filter(|s| s.is_extra_detected()).count();
    let undetected = result
        .statuses
        .iter()
        .filter(|s| matches!(s, FaultStatus::NotDetected { .. }))
        .count();
    assert_eq!(conventional, result.conventional);
    assert_eq!(skipped, result.skipped_condition_c);
    assert_eq!(extra, result.extra);
    assert_eq!(conventional + skipped + extra + undetected, faults.len());
    assert_eq!(result.expansion_counters.len(), extra);
}

#[test]
fn campaigns_are_deterministic_across_thread_counts() {
    let circuit = generate(&SynthSpec::new("det", 5, 3, 6, 60, 11));
    let seq = random_sequence(&circuit, 32, 12);
    let faults = collapse_faults(&circuit, &full_fault_list(&circuit))
        .representatives()
        .to_vec();
    let mut reference: Option<Vec<FaultStatus>> = None;
    for threads in [1, 2, 5] {
        let result = run_campaign(
            &circuit,
            &seq,
            &faults,
            &CampaignOptions {
                threads,
                ..Default::default()
            },
        );
        match &reference {
            None => reference = Some(result.statuses),
            Some(r) => assert_eq!(r, &result.statuses, "threads = {threads}"),
        }
    }
}

#[test]
fn proposed_detects_superset_of_baseline_on_suite_sample() {
    // Deterministic check on two small suite circuits: the empirical claim
    // of the paper ("all faults identified in [4] are also identified by the
    // proposed procedure") holds on our stand-ins.
    for name in ["s208", "s298"] {
        let e = entry(name).expect("suite circuit");
        let circuit = e.build();
        let seq = random_sequence(&circuit, 48, e.spec.seed);
        let faults = moa_repro::netlist::collapse_faults(
            &circuit,
            &moa_repro::netlist::full_fault_list(&circuit),
        )
        .representatives()
        .to_vec();
        let baseline = run_campaign(&circuit, &seq, &faults, &CampaignOptions::baseline());
        let proposed = run_campaign(&circuit, &seq, &faults, &CampaignOptions::new());
        for (i, (b, p)) in baseline.statuses.iter().zip(&proposed.statuses).enumerate() {
            if b.is_detected() {
                assert!(
                    p.is_detected(),
                    "{name}: fault {i} detected by baseline but not proposed"
                );
            }
        }
    }
}

#[test]
fn n_states_limit_bounds_sequences() {
    let circuit = resettable_toggle();
    let seq = TestSequence::from_words(&["0", "0", "0", "0"]).unwrap();
    let good = simulate(&circuit, &seq, None);
    let fault = moa_repro::netlist::Fault::stem(circuit.find_net("r").unwrap(), true);
    for n_states in [2usize, 4, 16, 64] {
        let opts = MoaOptions::default().with_n_states(n_states);
        let result = simulate_fault(&circuit, &seq, &good, &fault, &opts);
        match result.status {
            FaultStatus::DetectedByExpansion { sequences } => {
                assert!(sequences <= n_states, "n_states = {n_states}");
            }
            FaultStatus::NotDetected { sequences, .. } => {
                assert!(sequences <= n_states);
            }
            _ => {}
        }
    }
}

#[test]
fn tighter_budgets_never_invent_detections() {
    // Shrinking max_implication_runs can lose detections but never add
    // unsound ones; detected counts are monotone-ish — verify subset-ness.
    let circuit = generate(&SynthSpec::new("bud", 5, 3, 6, 60, 23));
    let seq = random_sequence(&circuit, 32, 24);
    let faults = collapse_faults(&circuit, &full_fault_list(&circuit))
        .representatives()
        .to_vec();
    let small = run_campaign(
        &circuit,
        &seq,
        &faults,
        &CampaignOptions {
            moa: MoaOptions::default().with_max_implication_runs(8),
            threads: 1,
            ..Default::default()
        },
    );
    let large = run_campaign(&circuit, &seq, &faults, &CampaignOptions::new());
    for (s, l) in small.statuses.iter().zip(&large.statuses) {
        if s.is_extra_detected() {
            assert!(
                l.is_extra_detected(),
                "full budget must keep the small budget's detections"
            );
        }
    }
}

#[test]
fn suite_definitions_build_and_are_nontrivial() {
    for e in suite() {
        let c = e.build();
        assert!(c.num_gates() >= 90, "{} is substantial", e.name);
        let faults = full_fault_list(&c);
        assert!(faults.len() > c.num_gates(), "{}", e.name);
    }
}

#[test]
fn include_final_time_unit_only_adds_detections() {
    let circuit = generate(&SynthSpec::new("fin", 5, 3, 6, 60, 31));
    let seq = random_sequence(&circuit, 24, 32);
    let faults = collapse_faults(&circuit, &full_fault_list(&circuit))
        .representatives()
        .to_vec();
    let base = run_campaign(&circuit, &seq, &faults, &CampaignOptions::new());
    let with_final = run_campaign(
        &circuit,
        &seq,
        &faults,
        &CampaignOptions {
            moa: MoaOptions {
                include_final_time_unit: true,
                ..Default::default()
            },
            threads: 1,
            ..Default::default()
        },
    );
    assert!(with_final.detected_total() >= base.detected_total());
}

#[test]
fn packed_and_scalar_resimulation_agree_campaign_wide() {
    for seed in [3u64, 7, 11] {
        let circuit = generate(&SynthSpec::new(format!("pk{seed}"), 5, 3, 7, 70, seed));
        let seq = random_sequence(&circuit, 32, seed + 100);
        let faults = collapse_faults(&circuit, &full_fault_list(&circuit))
            .representatives()
            .to_vec();
        let scalar = run_campaign(&circuit, &seq, &faults, &CampaignOptions::new());
        let packed = run_campaign(
            &circuit,
            &seq,
            &faults,
            &CampaignOptions {
                moa: MoaOptions {
                    packed_resimulation: true,
                    ..Default::default()
                },
                threads: 1,
                ..Default::default()
            },
        );
        assert_eq!(scalar.statuses, packed.statuses, "seed {seed}");
    }
}

#[test]
fn differential_and_full_conventional_agree_campaign_wide() {
    for seed in [5u64, 13] {
        let circuit = generate(&SynthSpec::new(format!("df{seed}"), 5, 3, 7, 70, seed));
        let seq = random_sequence(&circuit, 32, seed + 200);
        let faults = collapse_faults(&circuit, &full_fault_list(&circuit))
            .representatives()
            .to_vec();
        let full = run_campaign(&circuit, &seq, &faults, &CampaignOptions::new());
        let differential = run_campaign(
            &circuit,
            &seq,
            &faults,
            &CampaignOptions {
                differential: true,
                threads: 1,
                ..Default::default()
            },
        );
        assert_eq!(full.statuses, differential.statuses, "seed {seed}");
    }
}

/// A tiny `N_STATES` forces aborts on faults whose candidate pairs outnumber
/// the allowed expansions; relaxing the limit resolves (some of) them.
#[test]
fn tiny_n_states_aborts_and_larger_limits_recover()  {
    let circuit = generate(&SynthSpec::new("ab", 5, 3, 7, 70, 41));
    let seq = random_sequence(&circuit, 32, 42);
    let faults = collapse_faults(&circuit, &full_fault_list(&circuit))
        .representatives()
        .to_vec();
    let tiny = run_campaign(
        &circuit,
        &seq,
        &faults,
        &CampaignOptions {
            moa: MoaOptions::default().with_n_states(2),
            threads: 1,
            ..Default::default()
        },
    );
    let full = run_campaign(&circuit, &seq, &faults, &CampaignOptions::new());
    assert!(
        tiny.aborted >= full.aborted,
        "a tighter limit aborts at least as often ({} vs {})",
        tiny.aborted,
        full.aborted
    );
    assert!(full.detected_total() >= tiny.detected_total());
}
