//! A deterministic end-to-end snapshot of a full s27 campaign: pins the
//! observable behaviour of the entire pipeline on the one circuit we share
//! with the paper, so regressions in any stage surface as a diff here.

use moa_repro::circuits::iscas::s27;
use moa_repro::core::{
    exact_moa_check, run_campaign, CampaignOptions, ExactOutcome, FaultStatus, MoaOptions,
};
use moa_repro::netlist::{collapse_faults, full_fault_list};
use moa_repro::sim::simulate;
use moa_repro::tpg::random_sequence;

#[test]
fn s27_campaign_snapshot() {
    let c = s27();
    let seq = random_sequence(&c, 32, 27);
    let faults = collapse_faults(&c, &full_fault_list(&c))
        .representatives()
        .to_vec();
    assert_eq!(faults.len(), 32, "collapsed s27 fault list");

    let baseline = run_campaign(&c, &seq, &faults, &CampaignOptions::baseline());
    let proposed = run_campaign(&c, &seq, &faults, &CampaignOptions::new());

    // The snapshot: totals must stay exactly stable across refactors.
    assert_eq!(proposed.conventional, baseline.conventional);
    let snapshot = (
        proposed.conventional,
        baseline.detected_total(),
        proposed.detected_total(),
        proposed.skipped_condition_c,
    );
    // Ground truth for the snapshot values:
    let good = simulate(&c, &seq, None);
    let exact: usize = faults
        .iter()
        .filter(|f| {
            exact_moa_check(&c, &seq, &good, f, 16).expect("3 flip-flops") == ExactOutcome::Detected
        })
        .count();
    assert!(proposed.detected_total() <= exact, "sound");
    // s27 is small and well-initialized: every exactly detectable fault is
    // already conventionally detected (this is consistent with the paper,
    // whose Table 2 starts at s208 — s27 has no expansion-recoverable
    // faults under random patterns).
    assert_eq!(
        snapshot,
        (11, 11, 11, 19),
        "s27 pipeline snapshot changed (exact restricted-MOA detectable: {exact})"
    );
    assert_eq!(exact, 11, "the procedure is complete on s27 for this sequence");

    // Every undetected fault is either condition-C-skipped or has survivors.
    for status in &proposed.statuses {
        match status {
            FaultStatus::NotDetected { undecided, .. } => assert!(*undecided > 0),
            FaultStatus::SkippedConditionC => {}
            other => assert!(other.is_detected(), "unexpected status {other:?}"),
        }
    }

    // Options equivalences on the full circuit: packed resim and depth-2
    // chaining keep the same detected set here.
    for moa in [
        MoaOptions {
            packed_resimulation: true,
            ..Default::default()
        },
        MoaOptions::default().with_backward_time_units(2),
    ] {
        let alt = run_campaign(
            &c,
            &seq,
            &faults,
            &CampaignOptions {
                moa,
                threads: 1,
                ..Default::default()
            },
        );
        assert_eq!(alt.detected_total(), proposed.detected_total());
    }
}
