//! Soundness of the fault-simulation procedures against the exhaustive
//! restricted-MOA ground truth, across teaching circuits, s27 and a family of
//! small synthetic circuits.
//!
//! Invariants:
//! - anything conventional simulation detects, the exact checker confirms,
//! - anything the baseline ([4]) claims, the exact checker confirms,
//! - anything the proposed procedure claims, the exact checker confirms,
//! - the proposed procedure never loses a conventional detection.

use moa_repro::circuits::iscas::s27;
use moa_repro::circuits::synth::{generate, SynthSpec};
use moa_repro::circuits::teaching::{
    counter, expansion_demo, figure4, resettable_toggle, shift_register,
};
use moa_repro::core::{
    exact_moa_check, run_campaign, CampaignOptions, ExactOutcome, FaultStatus,
};
use moa_repro::netlist::{collapse_faults, full_fault_list, Circuit};
use moa_repro::sim::simulate;
use moa_repro::tpg::random_sequence;

fn check_circuit(circuit: &Circuit, seq_len: usize, seed: u64) {
    let seq = random_sequence(circuit, seq_len, seed);
    let faults = collapse_faults(circuit, &full_fault_list(circuit))
        .representatives()
        .to_vec();
    let good = simulate(circuit, &seq, None);
    let baseline = run_campaign(circuit, &seq, &faults, &CampaignOptions::baseline());
    let proposed = run_campaign(circuit, &seq, &faults, &CampaignOptions::new());

    for ((fault, base_status), prop_status) in faults
        .iter()
        .zip(&baseline.statuses)
        .zip(&proposed.statuses)
    {
        let exact = exact_moa_check(circuit, &seq, &good, fault, 16)
            .expect("small circuits are enumerable");
        let exact_detected = exact == ExactOutcome::Detected;
        if base_status.is_detected() {
            assert!(
                exact_detected,
                "{}: baseline over-claims {}",
                circuit.name(),
                fault.describe(circuit)
            );
        }
        if prop_status.is_detected() {
            assert!(
                exact_detected,
                "{}: proposed over-claims {}",
                circuit.name(),
                fault.describe(circuit)
            );
        }
        if matches!(base_status, FaultStatus::DetectedConventional(_)) {
            assert!(
                matches!(prop_status, FaultStatus::DetectedConventional(_)),
                "{}: conventional detection must be identical",
                circuit.name()
            );
        }
    }
    assert!(
        proposed.detected_total() >= proposed.conventional,
        "detections only grow beyond conventional"
    );
}

#[test]
fn teaching_circuits_are_sound() {
    for circuit in [
        resettable_toggle(),
        figure4(),
        expansion_demo(),
        counter(3),
        shift_register(3),
    ] {
        check_circuit(&circuit, 24, 0xBEEF);
    }
}

#[test]
fn s27_is_sound() {
    for seed in [1, 2, 3] {
        check_circuit(&s27(), 32, seed);
    }
}

#[test]
fn small_synthetic_circuits_are_sound() {
    for seed in 0..8 {
        let spec = SynthSpec::new(format!("sound{seed}"), 4, 3, 5, 40, seed);
        check_circuit(&generate(&spec), 24, seed * 31 + 7);
    }
}

/// Synthetic circuits with dense XOR feedback (hard to initialize) — the
/// stress case for the implication engine's conflict detection.
#[test]
fn xor_heavy_circuits_are_sound() {
    for seed in 0..4 {
        let mut spec = SynthSpec::new(format!("xor{seed}"), 4, 3, 6, 50, seed);
        spec.xor_permille = 300;
        spec.init_permille = 400;
        check_circuit(&generate(&spec), 20, seed + 99);
    }
}

/// Larger implication-round counts (fixed-point iteration) must stay sound.
#[test]
fn fixed_point_rounds_are_sound() {
    use moa_repro::core::MoaOptions;
    let circuit = generate(&SynthSpec::new("fp", 4, 3, 5, 40, 17));
    let seq = random_sequence(&circuit, 24, 18);
    let faults = collapse_faults(&circuit, &full_fault_list(&circuit))
        .representatives()
        .to_vec();
    let good = simulate(&circuit, &seq, None);
    let campaign = run_campaign(
        &circuit,
        &seq,
        &faults,
        &CampaignOptions {
            moa: MoaOptions::default().with_implication_rounds(4),
            threads: 1,
            ..Default::default()
        },
    );
    for (fault, status) in faults.iter().zip(&campaign.statuses) {
        if status.is_detected() {
            let exact = exact_moa_check(&circuit, &seq, &good, fault, 16).unwrap();
            assert_eq!(exact, ExactOutcome::Detected, "{}", fault.describe(&circuit));
        }
    }
}

/// Multi-time-unit backward implications (the paper's Section-2 extension)
/// must stay sound at every depth.
#[test]
fn multi_time_unit_chaining_is_sound() {
    use moa_repro::core::MoaOptions;
    for depth in [2usize, 3] {
        for seed in 0..4 {
            let spec = SynthSpec::new(format!("chain{seed}"), 4, 3, 5, 40, seed + 400);
            let circuit = generate(&spec);
            let seq = random_sequence(&circuit, 24, seed + 401);
            let faults = collapse_faults(&circuit, &full_fault_list(&circuit))
                .representatives()
                .to_vec();
            let good = simulate(&circuit, &seq, None);
            let campaign = run_campaign(
                &circuit,
                &seq,
                &faults,
                &CampaignOptions {
                    moa: MoaOptions::default().with_backward_time_units(depth),
                    threads: 1,
                    ..Default::default()
                },
            );
            for (fault, status) in faults.iter().zip(&campaign.statuses) {
                if status.is_detected() {
                    let exact =
                        exact_moa_check(&circuit, &seq, &good, fault, 16).expect("enumerable");
                    assert_eq!(
                        exact,
                        ExactOutcome::Detected,
                        "depth {depth}: {}",
                        fault.describe(&circuit)
                    );
                }
            }
        }
    }
}
