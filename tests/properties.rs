//! Property-based tests over randomly generated circuits (proptest).

use proptest::prelude::*;

use moa_repro::circuits::synth::{generate, SynthSpec};
use moa_repro::core::imply::{FrameContext, ImplyOutcome};
use moa_repro::core::{
    audit_certificate, exact_moa_check, simulate_fault_certified, AuditOptions, BudgetMeter,
    ClaimKind, ExactOutcome, MoaOptions,
};
use moa_repro::logic::V3;
use moa_repro::netlist::{
    collapse_faults, full_fault_list, observable_nets, parse_bench, structurally_equal,
    write_bench, Circuit, Fault,
};
use moa_repro::sim::{
    compute_frame, conventional_detection, packed3_next_state, packed_next_state,
    run_packed3_frame, run_packed_frame, simulate, simulate_differential, GoodFrames, Packed3,
    TestSequence,
};
use moa_repro::tpg::random_sequence;

fn arb_spec() -> impl Strategy<Value = SynthSpec> {
    (1usize..5, 1usize..4, 1usize..7, 10usize..60, any::<u64>()).prop_map(
        |(inputs, outputs, ffs, extra_gates, seed)| {
            SynthSpec::new(
                "prop",
                inputs,
                outputs,
                ffs,
                ffs + outputs + extra_gates,
                seed,
            )
        },
    )
}

fn arb_pattern(circuit: &Circuit) -> Vec<V3> {
    // Deterministic pattern derived from the circuit size: properties below
    // draw randomness through the spec seed instead.
    (0..circuit.num_inputs())
        .map(|i| V3::from_bool(i % 2 == 0))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The synthetic generator leaves almost no dangling logic: unused gate
    /// outputs and unread inputs are absorbed into the dedicated state and
    /// observation gates, so the only unobservable nets are isolated
    /// flip-flop islands (state bits feeding only each other), which mirror
    /// the never-initialized portions of real sequential benchmarks.
    #[test]
    fn generated_circuits_are_mostly_observable(spec in arb_spec()) {
        let c = generate(&spec);
        let observable = observable_nets(&c).len();
        // Worst case: every flip-flop is an island (q + its dedicated gate).
        let island_bound = 2 * c.num_flip_flops();
        prop_assert!(
            observable + island_bound >= c.num_nets(),
            "{observable}/{} observable with {} flip-flops",
            c.num_nets(),
            c.num_flip_flops()
        );
    }

    /// The `.bench` writer/parser round-trips every generated circuit.
    #[test]
    fn bench_format_round_trips(spec in arb_spec()) {
        let c = generate(&spec);
        let text = write_bench(&c);
        let c2 = parse_bench(&text).expect("writer output parses");
        prop_assert!(structurally_equal(&c, &c2));
    }

    /// Fault collapsing partitions the full fault list and representatives
    /// are members of their own classes.
    #[test]
    fn collapsing_partitions_faults(spec in arb_spec()) {
        let c = generate(&spec);
        let full = full_fault_list(&c);
        let collapsed = collapse_faults(&c, &full);
        prop_assert!(collapsed.len() <= full.len());
        prop_assert!(!collapsed.is_empty());
        for &f in &full {
            let rep = collapsed.representative_of(f).expect("fault in a class");
            prop_assert!(collapsed.class_of(f).unwrap().contains(&f));
            prop_assert_eq!(collapsed.representative_of(rep), Some(rep));
        }
    }

    /// Implication-engine soundness against exhaustive enumeration: if
    /// asserting `Y_i = α` conflicts, no binary completion of the present
    /// state produces `Y_i = α`; if it yields refined values, every
    /// completion that produces `Y_i = α` agrees with every refined net.
    #[test]
    fn imply_is_sound_against_enumeration(
        spec in arb_spec(),
        ff_choice in any::<u32>(),
        alpha in any::<bool>(),
        rounds in 1usize..3,
    ) {
        let c = generate(&spec);
        let k = c.num_flip_flops();
        prop_assume!(k <= 6);
        let pattern = arb_pattern(&c);
        let state = vec![V3::X; k];
        let ctx = FrameContext::new(&c, &pattern, &state, None);
        let i = (ff_choice as usize) % k;
        let d_net = c.flip_flops()[i].d();
        let outcome = ctx.imply(&[(d_net, V3::from_bool(alpha))], rounds);

        // Enumerate all binary completions of the present state with the
        // 64-way packed simulator.
        let packed_pattern: Vec<bool> =
            pattern.iter().map(|v| v.to_bool().expect("binary")).collect();
        let total = 1u64 << k;
        prop_assume!(total <= 64);
        let packed_state: Vec<u64> = (0..k)
            .map(|bit| {
                let mut w = 0u64;
                for s in 0..total {
                    if s >> bit & 1 == 1 { w |= 1 << s; }
                }
                w
            })
            .collect();
        let frame = run_packed_frame(&c, &packed_pattern, &packed_state, None);
        let next = packed_next_state(&c, &frame, None);
        let valid = if total == 64 { u64::MAX } else { (1u64 << total) - 1 };
        let matching = if alpha { next[i] & valid } else { !next[i] & valid };

        match outcome {
            ImplyOutcome::Conflict => {
                prop_assert_eq!(matching, 0, "conflict must mean no completion matches");
            }
            ImplyOutcome::Values(v) => {
                // For every completion slot where Y_i = alpha, each net value
                // refined by the engine must hold.
                for net in c.net_ids() {
                    let Some(expect) = v[net].to_bool() else { continue };
                    let word = frame[net];
                    let agree = if expect { word } else { !word };
                    prop_assert_eq!(
                        matching & !agree, 0,
                        "net {} refined to {} but some matching completion disagrees",
                        c.net_name(net), v[net]
                    );
                }
            }
        }
    }

    /// Single-observation-time detection implies restricted-MOA detection:
    /// if the three-valued faulty response conflicts with the good response,
    /// every binary initial state of the faulty machine must conflict too.
    #[test]
    fn conventional_detection_implies_exact_detection(
        spec in arb_spec(),
        fault_choice in any::<u32>(),
        stuck in any::<bool>(),
        seq_seed in any::<u64>(),
    ) {
        let c = generate(&spec);
        prop_assume!(c.num_flip_flops() <= 8);
        let seq = {
            let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seq_seed);
            TestSequence::random(c.num_inputs(), 12, &mut rng)
        };
        let net = moa_repro::netlist::NetId::new((fault_choice as usize) % c.num_nets());
        let fault = Fault::stem(net, stuck);
        let good = simulate(&c, &seq, None);
        let faulty = simulate(&c, &seq, Some(&fault));
        prop_assume!(conventional_detection(&good, &faulty).is_some());
        let exact = exact_moa_check(&c, &seq, &good, &fault, 16).expect("enumerable");
        prop_assert_eq!(exact, ExactOutcome::Detected);
    }

    /// Differential (event-driven, delta-from-good) fault simulation equals
    /// full fault simulation for every stem fault of a random circuit.
    #[test]
    fn differential_simulation_equals_full(spec in arb_spec(), seq_seed in any::<u64>()) {
        let c = generate(&spec);
        let seq = {
            let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seq_seed);
            TestSequence::random(c.num_inputs(), 10, &mut rng)
        };
        let good = GoodFrames::compute(&c, &seq);
        for net in c.net_ids().step_by(3) {
            for stuck in [false, true] {
                let fault = Fault::stem(net, stuck);
                let reference = simulate(&c, &seq, Some(&fault));
                let differential = simulate_differential(&c, &seq, &good, &fault);
                prop_assert_eq!(&reference, &differential, "{}", fault.describe(&c));
            }
        }
    }

    /// The dual-rail packed simulator agrees with the scalar three-valued
    /// simulator slot by slot, for random circuits, random mixed-ternary
    /// states and random faults.
    #[test]
    fn packed3_agrees_with_scalar(
        spec in arb_spec(),
        state_trits in proptest::collection::vec(0u8..3, 64),
        fault_choice in any::<u32>(),
        stuck in any::<bool>(),
    ) {
        let c = generate(&spec);
        let k = c.num_flip_flops();
        let pattern = arb_pattern(&c);
        let vals = [V3::Zero, V3::One, V3::X];
        // Pack 16 scenarios, each state trit drawn from the pool.
        let slots = 16u32;
        let states: Vec<Vec<V3>> = (0..slots as usize)
            .map(|s| (0..k).map(|i| vals[state_trits[(s * 7 + i * 3) % 64] as usize]).collect())
            .collect();
        let packed_state: Vec<Packed3> = (0..k)
            .map(|i| {
                let mut p = Packed3::ALL_X;
                for (s, st) in states.iter().enumerate() {
                    p.set(s as u32, st[i]);
                }
                p
            })
            .collect();
        let net = moa_repro::netlist::NetId::new((fault_choice as usize) % c.num_nets());
        let fault = Fault::stem(net, stuck);
        let frame = run_packed3_frame(&c, &pattern, &packed_state, Some(&fault));
        let next = packed3_next_state(&c, &frame, Some(&fault));
        for (s, st) in states.iter().enumerate() {
            let scalar = compute_frame(&c, &pattern, st, Some(&fault));
            for net in c.net_ids() {
                prop_assert_eq!(frame.get(net).get(s as u32), scalar[net], "net {} slot {}", c.net_name(net), s);
            }
            let scalar_next = moa_repro::sim::frame_next_state(&c, &scalar, Some(&fault));
            for i in 0..k {
                prop_assert_eq!(next[i].get(s as u32), scalar_next[i]);
            }
        }
    }

    /// A detection certificate that lies about an observation is always
    /// refuted: flipping the claimed output value of any observation claim of
    /// a confirmed certificate must turn the audit verdict into `Refuted`.
    /// (The forged claim asserts the faulty machine matches the good value —
    /// no detection — so replay can never corroborate it.)
    #[test]
    fn perturbed_observation_value_always_fails_audit(spec in arb_spec(), seq_seed in any::<u64>()) {
        let c = generate(&spec);
        let seq = random_sequence(&c, 8, seq_seed);
        let good = simulate(&c, &seq, None);
        let faults = collapse_faults(&c, &full_fault_list(&c)).representatives().to_vec();
        for fault in faults.iter().take(8) {
            let (result, certificate) = simulate_fault_certified(
                &c, &seq, &good, fault, &MoaOptions::default(), None,
                &mut BudgetMeter::unlimited(),
            );
            prop_assert_eq!(result.status.is_detected(), certificate.is_some());
            let Some(certificate) = certificate else { continue };
            let options = AuditOptions::default();
            if !audit_certificate(&c, &seq, &good, fault, &certificate, &options).is_confirmed() {
                continue;
            }
            for (i, claim) in certificate.claims.iter().enumerate() {
                let ClaimKind::Observation { time, output, value } = claim.kind else {
                    continue;
                };
                let mut forged = certificate.clone();
                forged.claims[i].kind = ClaimKind::Observation { time, output, value: !value };
                let verdict = audit_certificate(&c, &seq, &good, fault, &forged, &options);
                prop_assert!(
                    verdict.is_refuted(),
                    "flipping claim {i} of {fault:?} must refute: {verdict:?}"
                );
            }
        }
    }

    /// Three-valued frame evaluation is sound: any binary completion of the
    /// present state agrees with every specified value of the X-state frame.
    #[test]
    fn three_valued_frame_is_sound(spec in arb_spec(), state_bits in any::<u64>()) {
        let c = generate(&spec);
        let k = c.num_flip_flops();
        let pattern = arb_pattern(&c);
        let x_frame = compute_frame(&c, &pattern, &vec![V3::X; k], None);
        let state: Vec<V3> = (0..k).map(|i| V3::from_bool(state_bits >> i & 1 == 1)).collect();
        let concrete = compute_frame(&c, &pattern, &state, None);
        for net in c.net_ids() {
            if x_frame[net].is_specified() {
                prop_assert_eq!(x_frame[net], concrete[net], "net {}", c.net_name(net));
            }
        }
    }
}
