//! End-to-end validation of the detection-certificate audit subsystem: every
//! detection the engine claims on the embedded circuits must survive concrete
//! witness replay, and — where the exhaustive checker applies — the audited
//! detections must be a subset of the exact restricted-MOA verdicts.

use moa_repro::circuits::iscas::s27;
use moa_repro::circuits::suite::suite;
use moa_repro::circuits::teaching::resettable_toggle;
use moa_repro::core::{
    certificate_cross_check, run_campaign, simulate_fault_certified, AuditOptions, BudgetMeter,
    CampaignAudit, CampaignOptions, MoaOptions,
};
use moa_repro::netlist::{collapse_faults, full_fault_list};
use moa_repro::sim::simulate;
use moa_repro::tpg::random_sequence;

#[test]
fn s27_audited_campaign_is_clean_and_matches_plain() {
    let c = s27();
    let seq = random_sequence(&c, 32, 27);
    let faults = collapse_faults(&c, &full_fault_list(&c))
        .representatives()
        .to_vec();
    let plain = run_campaign(&c, &seq, &faults, &CampaignOptions::new());
    let audited = run_campaign(
        &c,
        &seq,
        &faults,
        &CampaignOptions {
            audit: Some(CampaignAudit::default()),
            ..Default::default()
        },
    );
    assert_eq!(audited.audit_failed, 0, "a sound engine audits clean");
    assert_eq!(plain, audited, "a clean audit must not change any verdict");
}

#[test]
fn audited_detections_are_subset_of_exact_on_s27() {
    let c = s27();
    let seq = random_sequence(&c, 32, 27);
    let good = simulate(&c, &seq, None);
    let faults = collapse_faults(&c, &full_fault_list(&c))
        .representatives()
        .to_vec();
    let mut confirmed = 0usize;
    for fault in &faults {
        let (result, certificate) = simulate_fault_certified(
            &c,
            &seq,
            &good,
            fault,
            &MoaOptions::default(),
            None,
            &mut BudgetMeter::unlimited(),
        );
        if !result.status.is_detected() {
            assert!(certificate.is_none());
            continue;
        }
        let certificate = certificate.expect("every detection carries a certificate");
        let check = certificate_cross_check(
            &c,
            &seq,
            &good,
            fault,
            &certificate,
            &AuditOptions::default(),
            8,
        );
        // s27 has 3 flip-flops: both the audit and the exact checker run to
        // completion, so confirmation implies an exact detection.
        assert!(
            check.audit.is_confirmed(),
            "{fault:?}: {:?}",
            check.audit
        );
        assert!(check.consistent(), "{fault:?}: audited ⊄ exact");
        assert!(
            check.exact.expect("s27 is small enough").is_detected(),
            "{fault:?}: audit confirmed a detection the exact checker denies"
        );
        confirmed += 1;
    }
    assert!(confirmed > 0, "s27 must have audited detections");
}

#[test]
fn toggle_audited_campaign_is_clean() {
    let c = resettable_toggle();
    let seq = moa_repro::sim::TestSequence::from_words(&["0", "0", "0"]).unwrap();
    let faults = full_fault_list(&c);
    let audited = run_campaign(
        &c,
        &seq,
        &faults,
        &CampaignOptions {
            audit: Some(CampaignAudit::default()),
            ..Default::default()
        },
    );
    assert_eq!(audited.audit_failed, 0);
    assert!(audited.extra >= 1, "the reset-line fault stays detected");
}

#[test]
fn small_suite_circuits_audit_clean() {
    // The suite entries small enough for exhaustive replay under the default
    // 2^14 cap; the CI audit-smoke job covers the rest via `moa suite
    // --audit` (over-cap circuits audit as Inconclusive, never as failed).
    for e in suite() {
        let circuit = e.build();
        if circuit.num_flip_flops() > 10 {
            continue;
        }
        let seq = random_sequence(&circuit, e.sequence_length, e.spec.seed);
        let faults = collapse_faults(&circuit, &full_fault_list(&circuit))
            .representatives()
            .to_vec();
        let audited = run_campaign(
            &circuit,
            &seq,
            &faults,
            &CampaignOptions {
                audit: Some(CampaignAudit::default()),
                ..Default::default()
            },
        );
        assert_eq!(
            audited.audit_failed, 0,
            "{}: {} detections failed their audit",
            e.name, audited.audit_failed
        );
    }
}
