//! Multiple-observation-time-preserving test compaction: the generic
//! `compact_sequence_by` of `moa-tpg` driven by the full MOA campaign as its
//! coverage criterion.

use moa_repro::circuits::teaching::resettable_toggle;
use moa_repro::core::{run_campaign, CampaignOptions};
use moa_repro::netlist::{collapse_faults, full_fault_list};
use moa_repro::tpg::compact::{compact_sequence_by, CompactOptions};
use moa_repro::tpg::random_sequence;

#[test]
fn compaction_preserves_moa_coverage() {
    let circuit = resettable_toggle();
    let faults = collapse_faults(&circuit, &full_fault_list(&circuit))
        .representatives()
        .to_vec();
    let seq = random_sequence(&circuit, 48, 0xC0);

    let moa_coverage = |candidate: &moa_repro::sim::TestSequence| -> Vec<bool> {
        run_campaign(&circuit, candidate, &faults, &CampaignOptions::new())
            .statuses
            .iter()
            .map(moa_repro::core::FaultStatus::is_detected)
            .collect()
    };

    let before: usize = moa_coverage(&seq).iter().filter(|&&d| d).count();
    let (compacted, flags) = compact_sequence_by(&seq, &CompactOptions::default(), moa_coverage);
    let after = flags.iter().filter(|&&d| d).count();

    assert!(compacted.len() < seq.len(), "something was removed");
    assert!(after >= before, "MOA coverage preserved ({after} vs {before})");
    // The reset-line fault, detectable only under MOA, must survive.
    let r_fault_index = faults
        .iter()
        .position(|f| f.describe(&circuit) == "r stuck-at-1")
        .expect("collapsed list keeps the reset fault");
    assert!(flags[r_fault_index], "the MOA-only fault survives compaction");
}
