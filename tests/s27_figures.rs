//! Faithfulness tests: the paper's Section-2 figures, reproduced exactly on
//! the embedded ISCAS-89 s27.
//!
//! The paper writes the input pattern as (1001) in its own redrawn line
//! numbering; in the standard netlist's G0–G3 order the equivalent pattern is
//! 1011 — confirmed by the fact that all of Figure 1's, Figure 2's and
//! Figure 3's specified-value counts match exactly under it.

use moa_repro::circuits::iscas::s27;
use moa_repro::core::imply::{FrameContext, ImplyOutcome};
use moa_repro::logic::{parse_word, V3};
use moa_repro::sim::compute_frame;

const OBSERVED: [&str; 4] = ["G10", "G11", "G13", "G17"];

fn pattern() -> Vec<V3> {
    parse_word("1011").expect("valid word")
}

/// Figure 1: conventional simulation leaves all next-state variables and the
/// output unspecified.
#[test]
fn figure_1_conventional_simulation_is_all_x() {
    let c = s27();
    let frame = compute_frame(&c, &pattern(), &[V3::X, V3::X, V3::X], None);
    for name in OBSERVED {
        assert_eq!(frame[c.find_net(name).unwrap()], V3::X, "{name}");
    }
}

/// Figure 2: expanding state variables 5/6/7 (G5/G6/G7) at time 0 specifies
/// exactly 3/0/5 next-state-and-output values; variable 7 is the best.
#[test]
fn figure_2_expansion_counts() {
    let c = s27();
    let mut counts = Vec::new();
    for i in 0..3 {
        let mut count = 0;
        for alpha in [V3::Zero, V3::One] {
            let mut st = [V3::X, V3::X, V3::X];
            st[i] = alpha;
            let f = compute_frame(&c, &pattern(), &st, None);
            count += OBSERVED
                .iter()
                .filter(|o| f[c.find_net(o).unwrap()].is_specified())
                .count();
        }
        counts.push(count);
    }
    assert_eq!(counts, vec![3, 0, 5]);
}

/// Figure 2's fine print: expanding variable 7 to 1 specifies the output,
/// next-state 15 (G13) is fully specified across the expansion.
#[test]
fn figure_2_details() {
    let c = s27();
    let g13 = c.find_net("G13").unwrap();
    let g17 = c.find_net("G17").unwrap();
    for alpha in [V3::Zero, V3::One] {
        let st = [V3::X, V3::X, alpha];
        let f = compute_frame(&c, &pattern(), &st, None);
        assert!(f[g13].is_specified(), "G13 specified for both values");
        if alpha == V3::One {
            assert!(f[g17].is_specified(), "output specified when line 7 is 1");
        }
    }
}

/// Figure 3: backward implication of state variable 6 at time 1 (assert
/// Y6 = G11 at time 0) specifies 7 values — the output and one next-state
/// fully, another next-state partially.
#[test]
fn figure_3_backward_implication_counts() {
    let c = s27();
    let ctx = FrameContext::new(&c, &pattern(), &[V3::X, V3::X, V3::X], None);
    let g11 = c.find_net("G11").unwrap();
    let mut per_net = std::collections::HashMap::new();
    let mut total = 0;
    for alpha in [V3::Zero, V3::One] {
        match ctx.imply(&[(g11, alpha)], 1) {
            ImplyOutcome::Values(v) => {
                for name in OBSERVED {
                    if v[c.find_net(name).unwrap()].is_specified() {
                        *per_net.entry(name).or_insert(0) += 1;
                        total += 1;
                    }
                }
            }
            ImplyOutcome::Conflict => panic!("both values are consistent"),
        }
    }
    assert_eq!(total, 7, "the paper's seven specified values");
    // Output and G10 fully specified; G13 partially; G11 itself fully.
    assert_eq!(per_net[&"G17"], 2, "primary output fully specified");
    assert_eq!(per_net[&"G10"], 2, "one next-state fully specified");
    assert_eq!(per_net[&"G13"], 1, "one next-state partially specified");
    assert_eq!(per_net[&"G11"], 2, "the asserted variable itself");
}

/// The comparison the paper draws: 7 values from the backward implication vs
/// at most 5 from any time-0 expansion.
#[test]
fn figure_3_beats_every_time_0_expansion() {
    // Figure 2's maximum is 5 (state variable 7); Figure 3 yields 7.
    // Both counts are asserted above; this test just states the relation.
    let (figure_2_max, figure_3) = (5, 7);
    assert!(figure_3 > figure_2_max);
}
