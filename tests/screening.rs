//! Equivalence guarantees of the 64-way parallel-fault screening pre-pass.
//!
//! The packed screen exists purely as an accelerator: for every fault it must
//! report *exactly* the conventional detection (same time unit, same output)
//! that a scalar faulty-machine simulation reports, and a campaign with
//! screening enabled must be indistinguishable — status by status — from one
//! without it. These tests pin both properties across the full embedded
//! suite, across random circuits, and across checkpoint/resume.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use proptest::prelude::*;

use moa_repro::circuits::suite::suite;
use moa_repro::circuits::synth::{generate, SynthSpec};
use moa_repro::core::{
    read_checkpoint, run_campaign, CampaignAudit, CampaignOptions, CheckpointHeader,
};
use moa_repro::netlist::{collapse_faults, full_fault_list, Fault};
use moa_repro::sim::{run_conventional, screen_faults, screen_faults_wide, simulate, ScreenLanes};
use moa_repro::tpg::random_sequence;

/// The ISSUE's headline equivalence: for every representative fault of every
/// embedded suite circuit, the 64-way packed screen reports bit-identically
/// the detection (or absence) of the scalar conventional simulation.
#[test]
fn screen_matches_scalar_conventional_on_every_suite_fault() {
    for e in suite() {
        let circuit = e.build();
        let seq = random_sequence(&circuit, e.sequence_length, e.spec.seed);
        let good = simulate(&circuit, &seq, None);
        let faults = collapse_faults(&circuit, &full_fault_list(&circuit))
            .representatives()
            .to_vec();

        let outcome = screen_faults(&circuit, &seq, &good, &faults);
        assert_eq!(outcome.detections.len(), faults.len());
        assert!(outcome.gate_evaluations > 0, "{}", e.name);

        for (fault, screened) in faults.iter().zip(&outcome.detections) {
            let (scalar, _) = run_conventional(&circuit, &seq, &good, fault);
            assert_eq!(
                *screened, scalar,
                "{}: screen and scalar conventional disagree on {fault}",
                e.name
            );
        }
    }
}

/// Slot verdicts must not depend on which other faults share the word:
/// screening each fault alone equals screening them 64 at a time. (This is
/// what makes resume sound — a resumed campaign screens a different, smaller
/// batch than the original run.)
#[test]
fn screen_verdicts_are_independent_of_batch_composition() {
    let entries = suite();
    let e = &entries[0];
    let circuit = e.build();
    let seq = random_sequence(&circuit, e.sequence_length, e.spec.seed);
    let good = simulate(&circuit, &seq, None);
    let faults = collapse_faults(&circuit, &full_fault_list(&circuit))
        .representatives()
        .to_vec();

    let batched = screen_faults(&circuit, &seq, &good, &faults);
    for (i, fault) in faults.iter().enumerate() {
        let alone = screen_faults(&circuit, &seq, &good, std::slice::from_ref(fault));
        assert_eq!(
            alone.detections[0], batched.detections[i],
            "verdict for {fault} depends on its batch"
        );
    }
}

/// A screened campaign is status-for-status identical to an unscreened one on
/// every embedded circuit small enough for a debug-mode MOA campaign; the
/// bench command asserts the same equality on the full suite in release mode.
#[test]
fn screened_campaign_matches_unscreened_across_suite() {
    for e in suite() {
        let circuit = e.build();
        if circuit.num_flip_flops() > 10 {
            continue;
        }
        let seq = random_sequence(&circuit, e.sequence_length, e.spec.seed);
        let faults = collapse_faults(&circuit, &full_fault_list(&circuit))
            .representatives()
            .to_vec();
        let screened = run_campaign(&circuit, &seq, &faults, &CampaignOptions::new());
        let unscreened = run_campaign(
            &circuit,
            &seq,
            &faults,
            &CampaignOptions {
                screen: false,
                ..Default::default()
            },
        );
        assert_eq!(screened, unscreened, "{}", e.name);
    }
}

/// Screening survives a mid-campaign crash: the resumed run screens only the
/// still-pending faults and aggregates bit-identically to an uninterrupted,
/// audited campaign.
#[test]
fn screened_audited_campaign_resumes_identically_after_interruption() {
    let entries = suite();
    let e = &entries[0];
    let circuit = e.build();
    let seq = random_sequence(&circuit, e.sequence_length, e.spec.seed);
    let faults = collapse_faults(&circuit, &full_fault_list(&circuit))
        .representatives()
        .to_vec();
    let dir = std::env::temp_dir().join("moa-screening-resume-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("screened.checkpoint");
    let _ = std::fs::remove_file(&path);

    let options = || CampaignOptions {
        audit: Some(CampaignAudit::default()),
        ..Default::default()
    };
    let reference = run_campaign(&circuit, &seq, &faults, &options());
    assert_eq!(reference.audit_failed, 0);

    let killer = faults.len() / 2;
    let interrupted = catch_unwind(AssertUnwindSafe(|| {
        run_campaign(
            &circuit,
            &seq,
            &faults,
            &CampaignOptions {
                checkpoint: Some(path.clone()),
                checkpoint_every: 8,
                threads: 1,
                isolate_panics: false,
                fault_hook: Some(Arc::new(move |index, _fault: &Fault| {
                    assert!(index != killer, "simulated crash");
                })),
                ..options()
            },
        )
    }));
    assert!(interrupted.is_err(), "the campaign must have been interrupted");

    let header = CheckpointHeader {
        circuit: circuit.name().to_owned(),
        total_faults: faults.len(),
        seq_len: seq.len(),
    };
    let done = read_checkpoint(&path, &header)
        .unwrap()
        .slots
        .iter()
        .filter(|s| s.is_some())
        .count();
    assert!(done > 0 && done < faults.len(), "{done} of {}", faults.len());

    let resumed = run_campaign(
        &circuit,
        &seq,
        &faults,
        &CampaignOptions {
            checkpoint: Some(path.clone()),
            checkpoint_every: 8,
            resume: true,
            ..options()
        },
    );
    assert_eq!(reference, resumed);
}

/// The wide kernels and the thread axis are pure execution knobs: for every
/// suite circuit, every lane width at several thread counts reports
/// detections bit-identical to the 64-lane single-threaded reference (and
/// therefore, by the test above, to scalar conventional simulation).
#[test]
fn wide_and_threaded_screens_match_the_64_lane_kernel_across_suite() {
    for e in suite() {
        let circuit = e.build();
        let seq = random_sequence(&circuit, e.sequence_length, e.spec.seed);
        let good = simulate(&circuit, &seq, None);
        let faults = collapse_faults(&circuit, &full_fault_list(&circuit))
            .representatives()
            .to_vec();
        let reference = screen_faults(&circuit, &seq, &good, &faults);
        for lanes in ScreenLanes::ALL {
            for threads in [1, 4] {
                let wide = screen_faults_wide(&circuit, &seq, &good, &faults, lanes, threads);
                assert_eq!(
                    wide.detections, reference.detections,
                    "{}: lanes={lanes} threads={threads}",
                    e.name
                );
            }
        }
    }
}

/// A campaign interrupted mid-run and resumed with *different* screening
/// knobs (wider lanes, more threads) still aggregates bit-identically: the
/// screen is an accelerator, so the resumed half may run on any
/// configuration.
#[test]
fn resume_with_different_screen_knobs_is_bit_identical() {
    let entries = suite();
    let e = &entries[0];
    let circuit = e.build();
    let seq = random_sequence(&circuit, e.sequence_length, e.spec.seed);
    let faults = collapse_faults(&circuit, &full_fault_list(&circuit))
        .representatives()
        .to_vec();
    let dir = std::env::temp_dir().join("moa-screening-wide-resume-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("wide.checkpoint");
    let _ = std::fs::remove_file(&path);

    let reference = run_campaign(&circuit, &seq, &faults, &CampaignOptions::new());

    let killer = faults.len() / 2;
    let interrupted = catch_unwind(AssertUnwindSafe(|| {
        run_campaign(
            &circuit,
            &seq,
            &faults,
            &CampaignOptions {
                checkpoint: Some(path.clone()),
                checkpoint_every: 8,
                threads: 1,
                isolate_panics: false,
                fault_hook: Some(Arc::new(move |index, _fault: &Fault| {
                    assert!(index != killer, "simulated crash");
                })),
                ..Default::default()
            },
        )
    }));
    assert!(interrupted.is_err(), "the campaign must have been interrupted");

    let resumed = run_campaign(
        &circuit,
        &seq,
        &faults,
        &CampaignOptions {
            checkpoint: Some(path.clone()),
            checkpoint_every: 8,
            resume: true,
            screen_lanes: ScreenLanes::L256,
            screen_threads: 4,
            ..Default::default()
        },
    );
    assert_eq!(reference, resumed, "wide resume diverged from the 64-lane run");
}

fn arb_spec() -> impl Strategy<Value = SynthSpec> {
    (1usize..5, 1usize..4, 1usize..7, 10usize..60, any::<u64>()).prop_map(
        |(inputs, outputs, ffs, extra_gates, seed)| {
            SynthSpec::new(
                "screen-prop",
                inputs,
                outputs,
                ffs,
                ffs + outputs + extra_gates,
                seed,
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Screen/scalar equivalence holds on random circuits and random
    /// sequences, for every collapsed fault — not just the embedded suite.
    #[test]
    fn screen_matches_scalar_on_random_circuits(
        spec in arb_spec(),
        len in 1usize..40,
        seq_seed in any::<u64>(),
    ) {
        let circuit = generate(&spec);
        let seq = random_sequence(&circuit, len, seq_seed);
        let good = simulate(&circuit, &seq, None);
        let faults = collapse_faults(&circuit, &full_fault_list(&circuit))
            .representatives()
            .to_vec();
        let outcome = screen_faults(&circuit, &seq, &good, &faults);
        for (fault, screened) in faults.iter().zip(&outcome.detections) {
            let (scalar, _) = run_conventional(&circuit, &seq, &good, fault);
            prop_assert_eq!(*screened, scalar, "disagreement on {}", fault);
        }
    }

    /// Campaign equality under screening holds on random circuits too.
    #[test]
    fn screened_campaign_matches_unscreened_on_random_circuits(spec in arb_spec()) {
        let circuit = generate(&spec);
        let seq = random_sequence(&circuit, 24, spec.seed ^ 0x5eed);
        let faults = collapse_faults(&circuit, &full_fault_list(&circuit))
            .representatives()
            .to_vec();
        let screened = run_campaign(&circuit, &seq, &faults, &CampaignOptions::new());
        let unscreened = run_campaign(
            &circuit,
            &seq,
            &faults,
            &CampaignOptions { screen: false, ..Default::default() },
        );
        prop_assert_eq!(screened, unscreened);
    }

    /// The full execution-knob sweep: on random circuits, a randomly drawn
    /// lane width and thread count report screen verdicts bit-identical to
    /// both the scalar conventional simulation and the 64-lane reference
    /// kernel.
    #[test]
    fn wide_screen_matches_scalar_and_narrow_on_random_circuits(
        spec in arb_spec(),
        len in 1usize..40,
        seq_seed in any::<u64>(),
        lane_pick in 0usize..3,
        threads in 1usize..5,
    ) {
        let circuit = generate(&spec);
        let seq = random_sequence(&circuit, len, seq_seed);
        let good = simulate(&circuit, &seq, None);
        let faults = collapse_faults(&circuit, &full_fault_list(&circuit))
            .representatives()
            .to_vec();
        let lanes = ScreenLanes::ALL[lane_pick];
        let narrow = screen_faults(&circuit, &seq, &good, &faults);
        let wide = screen_faults_wide(&circuit, &seq, &good, &faults, lanes, threads);
        prop_assert_eq!(&wide.detections, &narrow.detections,
            "lanes={} threads={}", lanes, threads);
        for (fault, screened) in faults.iter().zip(&wide.detections) {
            let (scalar, _) = run_conventional(&circuit, &seq, &good, fault);
            prop_assert_eq!(*screened, scalar, "disagreement on {}", fault);
        }
    }

    /// Lane width and thread count stay verdict-neutral under a work-limit
    /// budget: the limit bounds the per-fault MOA stages, whose inputs (which
    /// faults the screen resolved, and how) are bit-identical at every
    /// screening configuration — so whole campaigns agree status for status.
    #[test]
    fn campaigns_agree_across_lanes_threads_and_work_limits(
        spec in arb_spec(),
        lane_pick in 0usize..3,
        threads in 1usize..5,
        work_limit in 0u64..50, // 0 = unlimited

    ) {
        let circuit = generate(&spec);
        let seq = random_sequence(&circuit, 24, spec.seed ^ 0x5eed);
        let faults = collapse_faults(&circuit, &full_fault_list(&circuit))
            .representatives()
            .to_vec();
        let mut budget = moa_repro::core::FaultBudget::none();
        if work_limit > 0 {
            budget = budget.with_work_limit(work_limit);
        }
        let narrow = run_campaign(&circuit, &seq, &faults, &CampaignOptions {
            budget: budget.clone(),
            ..Default::default()
        });
        let wide = run_campaign(&circuit, &seq, &faults, &CampaignOptions {
            budget,
            screen_lanes: ScreenLanes::ALL[lane_pick],
            screen_threads: threads,
            ..Default::default()
        });
        prop_assert_eq!(narrow, wide);
    }
}
