//! **moa-repro** — a from-scratch Rust reproduction of
//!
//! > I. Pomeranz and S. M. Reddy, *"Fault Simulation under the Multiple
//! > Observation Time Approach using Backward Implications"*, DAC 1997.
//!
//! This umbrella crate re-exports the workspace:
//!
//! - [`logic`] — three-valued values, gate evaluation, backward justification,
//! - [`netlist`] — sequential gate-level circuits, `.bench` format, stuck-at
//!   faults and collapsing,
//! - [`sim`] — three-valued time-frame simulation and conventional
//!   (single-observation-time) fault simulation,
//! - [`circuits`] — the embedded `s27`, teaching circuits and the synthetic
//!   benchmark suite,
//! - [`tpg`] — random and coverage-directed (HITEC stand-in) test sequences,
//! - [`core`] — the paper's procedure: backward implications, state
//!   expansion, resimulation, campaigns, and the exact restricted-MOA
//!   ground-truth checker.
//!
//! See the `examples/` directory for runnable walkthroughs (`quickstart`,
//! `s27_walkthrough`, `conflict_demo`, `expansion_table`, `campaign_report`,
//! `test_generation`) and the `moa-bench` crate for the harnesses that
//! regenerate the paper's tables and figures.
//!
//! # Example
//!
//! ```
//! use moa_repro::core::{simulate_fault, MoaOptions};
//! use moa_repro::netlist::Fault;
//! use moa_repro::circuits::teaching::resettable_toggle;
//! use moa_repro::sim::{simulate, TestSequence};
//!
//! let c = resettable_toggle();
//! let seq = TestSequence::from_words(&["0", "0", "0"])?;
//! let good = simulate(&c, &seq, None);
//! let fault = Fault::stem(c.find_net("r").unwrap(), true);
//! let result = simulate_fault(&c, &seq, &good, &fault, &MoaOptions::default());
//! assert!(result.status.is_extra_detected());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use moa_circuits as circuits;
pub use moa_core as core;
pub use moa_logic as logic;
pub use moa_netlist as netlist;
pub use moa_sim as sim;
pub use moa_tpg as tpg;
